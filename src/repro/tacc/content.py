"""MIME-typed content objects flowing through TACC pipelines.

A :class:`Content` is the unit of data the paper's workers transform: a
Web object with a URL, a MIME type, a byte payload, and free-form
metadata (distillation provenance, original size, etc.).  Content is
immutable-by-convention: workers return new Content rather than mutating
input, which is what makes them composable and restartable (BASE soft
state — any derived content can be regenerated from the original).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

#: MIME types the paper's trace analysis found dominant (Section 4.1):
#: GIF 50 %, HTML 22 %, JPEG 18 %.
MIME_GIF = "image/gif"
MIME_JPEG = "image/jpeg"
MIME_HTML = "text/html"
MIME_PLAIN = "text/plain"
MIME_OCTET = "application/octet-stream"

_EXTENSION_MIME = {
    ".gif": MIME_GIF,
    ".jpg": MIME_JPEG,
    ".jpeg": MIME_JPEG,
    ".html": MIME_HTML,
    ".htm": MIME_HTML,
    ".txt": MIME_PLAIN,
}


class ZeroPayload:
    """Lazy all-zero byte payload for synthetic simulated content.

    The cluster simulation is size-driven: it charges for ``len(data)``
    but almost never reads the bytes, yet every synthetic payload used
    to materialize ``b"\\x00" * n`` — hundreds of megabytes of
    throwaway allocations over a million-request replay.  A
    ``ZeroPayload`` answers ``len()`` (and size-preserving operations
    like repetition) without allocating; anything that genuinely needs
    byte content materializes once and caches.

    Instances compare equal to real all-zero byte strings of the same
    length, so process-pair output comparison and content equality are
    unchanged.
    """

    __slots__ = ("_size", "_data")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = int(size)
        self._data = None

    def materialize(self) -> bytes:
        if self._data is None:
            self._data = bytes(self._size)
        return self._data

    def __bytes__(self) -> bytes:
        return self.materialize()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ZeroPayload):
            return self._size == other._size
        if isinstance(other, (bytes, bytearray, memoryview)):
            return len(other) == self._size and not any(bytes(other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, slice):
            start, stop, step = key.indices(self._size)
            if step == 1:
                return ZeroPayload(max(0, stop - start))
            return ZeroPayload(len(range(start, stop, step)))
        if isinstance(key, int):
            if key < -self._size or key >= self._size:
                raise IndexError("index out of range")
            return 0
        raise TypeError(f"indices must be integers or slices, "
                        f"not {type(key).__name__}")

    def __iter__(self):
        return iter(bytes(self._size) if self._data is None
                    else self._data)

    def __mul__(self, count: int) -> "ZeroPayload":
        return ZeroPayload(self._size * max(0, int(count)))

    __rmul__ = __mul__

    def __add__(self, other: Any) -> bytes:
        return self.materialize() + bytes(other)

    def __radd__(self, other: Any) -> bytes:
        return bytes(other) + self.materialize()

    def decode(self, encoding: str = "utf-8",
               errors: str = "strict") -> str:
        return self.materialize().decode(encoding, errors)

    def __reduce__(self):
        return (ZeroPayload, (self._size,))

    def __repr__(self) -> str:
        return f"ZeroPayload({self._size})"


def zero_payload(size: int) -> ZeroPayload:
    """A lazy ``size``-byte all-zero payload (see :class:`ZeroPayload`)."""
    return ZeroPayload(size)


def guess_mime(url: str) -> str:
    """MIME type from URL extension, as the trace collector did.

    (The paper notes error pages mistaken for images "based on file name
    extension" — the spikes at the left of Figure 5 — so extension-based
    typing is faithful to the original methodology.)
    """
    lowered = url.lower().split("?", 1)[0]
    for extension, mime in _EXTENSION_MIME.items():
        if lowered.endswith(extension):
            return mime
    return MIME_OCTET


@dataclass(frozen=True)
class Content:
    """One Web object (original or derived)."""

    url: str
    mime: str
    data: bytes
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_derived(self) -> bool:
        """True if produced by a worker rather than fetched from origin."""
        return bool(self.metadata.get("derived_by"))

    def derive(self, data: bytes, mime: Optional[str] = None,
               worker: str = "?", **extra: Any) -> "Content":
        """New Content derived from this one, recording provenance."""
        metadata = dict(self.metadata)
        metadata.update(extra)
        metadata["derived_by"] = worker
        metadata["original_size"] = self.metadata.get(
            "original_size", self.size)
        return Content(
            url=self.url,
            mime=mime if mime is not None else self.mime,
            data=data,
            metadata=metadata,
        )

    def with_metadata(self, **extra: Any) -> "Content":
        metadata = dict(self.metadata)
        metadata.update(extra)
        return replace(self, metadata=metadata)

    def reduction_factor(self) -> float:
        """original_size / size — the distillation win (Figure 3)."""
        original = self.metadata.get("original_size", self.size)
        return original / self.size if self.size else float("inf")

    def __repr__(self) -> str:
        tag = " derived" if self.is_derived else ""
        return f"<Content {self.url} {self.mime} {self.size}B{tag}>"
