"""MIME-typed content objects flowing through TACC pipelines.

A :class:`Content` is the unit of data the paper's workers transform: a
Web object with a URL, a MIME type, a byte payload, and free-form
metadata (distillation provenance, original size, etc.).  Content is
immutable-by-convention: workers return new Content rather than mutating
input, which is what makes them composable and restartable (BASE soft
state — any derived content can be regenerated from the original).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

#: MIME types the paper's trace analysis found dominant (Section 4.1):
#: GIF 50 %, HTML 22 %, JPEG 18 %.
MIME_GIF = "image/gif"
MIME_JPEG = "image/jpeg"
MIME_HTML = "text/html"
MIME_PLAIN = "text/plain"
MIME_OCTET = "application/octet-stream"

_EXTENSION_MIME = {
    ".gif": MIME_GIF,
    ".jpg": MIME_JPEG,
    ".jpeg": MIME_JPEG,
    ".html": MIME_HTML,
    ".htm": MIME_HTML,
    ".txt": MIME_PLAIN,
}


def guess_mime(url: str) -> str:
    """MIME type from URL extension, as the trace collector did.

    (The paper notes error pages mistaken for images "based on file name
    extension" — the spikes at the left of Figure 5 — so extension-based
    typing is faithful to the original methodology.)
    """
    lowered = url.lower().split("?", 1)[0]
    for extension, mime in _EXTENSION_MIME.items():
        if lowered.endswith(extension):
            return mime
    return MIME_OCTET


@dataclass(frozen=True)
class Content:
    """One Web object (original or derived)."""

    url: str
    mime: str
    data: bytes
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_derived(self) -> bool:
        """True if produced by a worker rather than fetched from origin."""
        return bool(self.metadata.get("derived_by"))

    def derive(self, data: bytes, mime: Optional[str] = None,
               worker: str = "?", **extra: Any) -> "Content":
        """New Content derived from this one, recording provenance."""
        metadata = dict(self.metadata)
        metadata.update(extra)
        metadata["derived_by"] = worker
        metadata["original_size"] = self.metadata.get(
            "original_size", self.size)
        return Content(
            url=self.url,
            mime=mime if mime is not None else self.mime,
            data=data,
            metadata=metadata,
        )

    def with_metadata(self, **extra: Any) -> "Content":
        metadata = dict(self.metadata)
        metadata.update(extra)
        return replace(self, metadata=metadata)

    def reduction_factor(self) -> float:
        """original_size / size — the distillation win (Figure 3)."""
        original = self.metadata.get("original_size", self.size)
        return original / self.size if self.size else float("inf")

    def __repr__(self) -> str:
        tag = " derived" if self.is_derived else ""
        return f"<Content {self.url} {self.mime} {self.size}B{tag}>"
