"""Registry of worker types.

The manager spawns workers *by type name* ("distillers of a particular
class", Section 3.1.2), and front-end dispatch logic selects "which
worker type(s) are needed to satisfy a request" (Section 2.2.5).  The
registry is the shared namespace that makes those names meaningful: it
maps a type name to a factory producing fresh, stateless worker
instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.tacc.worker import Worker

WorkerFactory = Callable[[], Worker]


class RegistryError(Exception):
    """Unknown or duplicate worker type."""


class WorkerRegistry:
    """Name -> factory mapping for worker types."""

    def __init__(self) -> None:
        self._factories: Dict[str, WorkerFactory] = {}

    def register(self, worker_type: str, factory: WorkerFactory) -> None:
        if worker_type in self._factories:
            raise RegistryError(f"worker type {worker_type!r} already "
                                "registered")
        self._factories[worker_type] = factory

    def register_class(self, worker_class: type) -> type:
        """Register a Worker subclass under its ``worker_type``.

        Usable as a decorator::

            @registry.register_class
            class JpegDistiller(Transformer):
                worker_type = "jpeg-distiller"
        """
        self.register(worker_class.worker_type, worker_class)
        return worker_class

    def create(self, worker_type: str) -> Worker:
        try:
            factory = self._factories[worker_type]
        except KeyError:
            raise RegistryError(f"unknown worker type {worker_type!r}") \
                from None
        worker = factory()
        if not isinstance(worker, Worker):
            raise RegistryError(
                f"factory for {worker_type!r} returned {type(worker)!r}, "
                "not a Worker")
        return worker

    def __contains__(self, worker_type: str) -> bool:
        return worker_type in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def types(self) -> List[str]:
        return sorted(self._factories)
