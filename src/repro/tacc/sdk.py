"""The TACC SDK: a conformance harness for worker authors.

Section 5.4: "The programming model for TACC services is still
embryonic.  We plan to develop it into a well-defined programming
environment with an SDK, and we will encourage our colleagues to author
services of their own using our system."  This module is that SDK's
core: it checks, mechanically, the contracts the SNS layer depends on —
contracts that are otherwise only enforced by production incidents.

A worker passes the bench when it is:

* **registrable** — has a usable ``worker_type`` and constructs with no
  arguments (the manager spawns workers by type name alone);
* **stateless** — running the same request through two fresh instances,
  or twice through one instance, yields identical output (restartable
  anywhere, interchangeable with its peers);
* **MIME-honest** — output MIME matches the declared ``produces``;
* **costed** — ``work_estimate`` is non-negative, finite, and
  non-decreasing in input size (the manager's load balancing consumes
  these numbers);
* **failure-disciplined** — garbage input raises :class:`WorkerError`
  (which the front end routes around), never an arbitrary exception and
  never a hang-forever sentinel value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.tacc.content import Content
from repro.tacc.worker import TACCRequest, Worker, WorkerError


@dataclass
class CheckResult:
    """One conformance check's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass
class BenchReport:
    """All check outcomes for one worker type."""

    worker_type: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def render(self) -> str:
        lines = [f"TACC SDK conformance: {self.worker_type} — "
                 f"{'OK' if self.passed else 'NOT CONFORMANT'}"]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


class WorkerBench:
    """Conformance harness for one worker class."""

    def __init__(
        self,
        worker_class: type,
        fixtures: Sequence[TACCRequest],
        garbage: Optional[TACCRequest] = None,
    ) -> None:
        if not fixtures:
            raise ValueError("at least one fixture request is required")
        self.worker_class = worker_class
        self.fixtures = list(fixtures)
        self.garbage = garbage

    # -- individual checks ---------------------------------------------------

    def check_registrable(self) -> CheckResult:
        name = "registrable (constructs bare, has worker_type)"
        try:
            worker = self.worker_class()
        except Exception as error:
            return CheckResult(name, False,
                               f"constructor failed: {error}")
        worker_type = getattr(worker, "worker_type", "")
        if not worker_type or worker_type == "worker":
            return CheckResult(name, False,
                               f"worker_type is {worker_type!r}")
        if not isinstance(worker, Worker):
            return CheckResult(name, False, "not a Worker subclass")
        return CheckResult(name, True)

    def check_stateless(self) -> CheckResult:
        name = "stateless (two fresh instances agree; reruns agree)"
        for index, request in enumerate(self.fixtures):
            first = self.worker_class().run(request)
            second = self.worker_class().run(request)
            if first.data != second.data or first.mime != second.mime:
                return CheckResult(
                    name, False,
                    f"fixture {index}: instances disagree")
            one_instance = self.worker_class()
            again_a = one_instance.run(request)
            again_b = one_instance.run(request)
            if again_a.data != again_b.data:
                return CheckResult(
                    name, False,
                    f"fixture {index}: instance carries state between "
                    "requests")
        return CheckResult(name, True)

    def check_mime_contract(self) -> CheckResult:
        name = "MIME contract (accepts respected, produces honest)"
        worker = self.worker_class()
        for index, request in enumerate(self.fixtures):
            input_mime = request.inputs[0].mime
            if not worker.accepts_mime(input_mime):
                return CheckResult(
                    name, False,
                    f"fixture {index} has MIME {input_mime!r} the worker "
                    "does not accept — bad fixture or bad accepts")
            output = worker.run(request)
            if worker.produces is not None and \
                    output.mime != worker.produces:
                return CheckResult(
                    name, False,
                    f"fixture {index}: declared produces="
                    f"{worker.produces!r} but emitted {output.mime!r}")
        return CheckResult(name, True)

    def check_cost_model(self) -> CheckResult:
        name = "cost model (finite, non-negative, monotone in size)"
        worker = self.worker_class()
        base = self.fixtures[0]
        small = base.inputs[0]
        big = small.derive(small.data * 4 if small.data else b"x" * 4096,
                           worker="sdk-inflate")
        cost_small = worker.work_estimate(base)
        cost_big = worker.work_estimate(TACCRequest(
            inputs=[big], params=base.params, profile=base.profile))
        for value, label in ((cost_small, "small"), (cost_big, "big")):
            if not (value >= 0.0 and value == value
                    and value != float("inf")):
                return CheckResult(name, False,
                                   f"{label} estimate is {value!r}")
        if cost_big < cost_small:
            return CheckResult(
                name, False,
                f"estimate decreased with size: {cost_small} -> "
                f"{cost_big}")
        return CheckResult(name, True)

    def check_failure_discipline(self) -> CheckResult:
        name = "failure discipline (garbage input -> WorkerError)"
        if self.garbage is None:
            return CheckResult(name, True, "no garbage fixture (skipped)")
        worker = self.worker_class()
        try:
            worker.run(self.garbage)
        except WorkerError:
            return CheckResult(name, True)
        except Exception as error:
            return CheckResult(
                name, False,
                f"raised {type(error).__name__} instead of WorkerError")
        return CheckResult(
            name, True,
            "worker tolerated the garbage (acceptable: it degraded "
            "gracefully)")

    def check_simulation_fidelity(self) -> CheckResult:
        name = "simulate() size model (within 3x of real output size)"
        worker = self.worker_class()
        for index, request in enumerate(self.fixtures):
            real = worker.run(request)
            simulated = self.worker_class().simulate(request)
            if simulated.size == 0 and real.size == 0:
                continue
            ratio = max(real.size, 1) / max(simulated.size, 1)
            if not (1 / 3 <= ratio <= 3):
                return CheckResult(
                    name, False,
                    f"fixture {index}: real {real.size}B vs simulated "
                    f"{simulated.size}B")
        return CheckResult(name, True)

    # -- the whole bench -----------------------------------------------------------

    def run(self) -> BenchReport:
        worker_type = getattr(self.worker_class, "worker_type",
                              self.worker_class.__name__)
        report = BenchReport(worker_type=worker_type)
        for check in (
            self.check_registrable,
            self.check_stateless,
            self.check_mime_contract,
            self.check_cost_model,
            self.check_failure_discipline,
            self.check_simulation_fidelity,
        ):
            try:
                report.results.append(check())
            except Exception as error:  # a check itself blowing up fails it
                report.results.append(CheckResult(
                    check.__name__, False,
                    f"check crashed: {type(error).__name__}: {error}"))
        return report


def check_worker(worker_class: type, fixtures: Sequence[TACCRequest],
                 garbage: Optional[TACCRequest] = None) -> BenchReport:
    """One-call conformance check (see :class:`WorkerBench`)."""
    return WorkerBench(worker_class, fixtures, garbage).run()
