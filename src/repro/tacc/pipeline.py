"""Unix-pipeline composition of workers.

"Our initial implementation allows Unix-pipeline-like chaining of an
arbitrary number of stateless transformations and aggregations"
(Section 2.3).  A :class:`Pipeline` is an ordered list of worker type
names; it can be type-checked against a registry (each stage must accept
the MIME type the previous stage produces) and executed locally, or
handed stage-by-stage to the SNS layer for remote execution.

"Given a collection of workers that convert images between pairs of
encodings, a correctly chosen sequence of transformations can be used for
general image conversion" — :func:`plan_conversion` implements exactly
that search over the registry's accepts/produces graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.tacc.content import Content
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest


class PipelineError(Exception):
    """Composition or execution error in a worker chain."""


class Pipeline:
    """An ordered chain of worker types applied to one request."""

    def __init__(self, stages: Sequence[str]) -> None:
        if not stages:
            raise PipelineError("pipeline requires at least one stage")
        self.stages: List[str] = list(stages)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def __repr__(self) -> str:
        return "<Pipeline " + " | ".join(self.stages) + ">"

    def then(self, worker_type: str) -> "Pipeline":
        """A new pipeline with one more stage (pipelines are immutable)."""
        return Pipeline(self.stages + [worker_type])

    def validate(self, registry: WorkerRegistry,
                 input_mime: Optional[str] = None) -> None:
        """Check every stage exists and MIME types chain correctly."""
        mime = input_mime
        for worker_type in self.stages:
            if worker_type not in registry:
                raise PipelineError(f"unknown stage {worker_type!r}")
            worker = registry.create(worker_type)
            if mime is not None and not worker.accepts_mime(mime):
                raise PipelineError(
                    f"stage {worker_type!r} does not accept {mime!r}")
            if worker.produces is not None:
                mime = worker.produces

    def execute(self, registry: WorkerRegistry,
                request: TACCRequest, trace=None) -> Content:
        """Run all stages locally, threading content through the chain.

        This is the library-mode executor; under the SNS layer the front
        end performs the same walk but dispatches each stage to a remote
        worker instance chosen by lottery scheduling.  With a ``trace``
        span, each stage records an (instantaneous, sim-clock-wise)
        child span carrying its input/output sizes — the per-stage
        timing under the SNS layer lives in the dispatch/worker spans.
        """
        inputs = list(request.inputs)
        result: Optional[Content] = None
        for index, worker_type in enumerate(self.stages):
            worker = registry.create(worker_type)
            stage_request = TACCRequest(
                inputs=inputs,
                params=request.params,
                profile=request.profile,
                user_id=request.user_id,
            )
            result = worker.run(stage_request)
            if trace is not None:
                trace.record(
                    f"stage:{worker_type}", "service",
                    trace.tracer.env.now, component="pipeline",
                    stage=index,
                    in_bytes=sum(item.size for item in inputs),
                    out_bytes=result.size)
            inputs = [result]
        assert result is not None
        return result

    def work_estimate(self, registry: WorkerRegistry,
                      request: TACCRequest) -> float:
        """Total reference-CPU seconds across all stages (approximate:
        assumes stage output size equals input size)."""
        total = 0.0
        for worker_type in self.stages:
            total += registry.create(worker_type).work_estimate(request)
        return total


def plan_conversion(registry: WorkerRegistry, source_mime: str,
                    target_mime: str) -> Pipeline:
    """Shortest chain of registered transformers converting source->target.

    Breadth-first search over the accepts/produces graph.  Raises
    :class:`PipelineError` if no chain exists.
    """
    if source_mime == target_mime:
        raise PipelineError("source and target MIME types are equal")
    # Build the edge list once: worker_type -> (accepts, produces)
    edges = []
    for worker_type in registry:
        worker = registry.create(worker_type)
        if worker.produces is None:
            continue  # same-as-input workers do not convert
        edges.append((worker_type, tuple(worker.accepts), worker.produces))

    frontier = deque([(source_mime, [])])
    seen = {source_mime}
    while frontier:
        mime, path = frontier.popleft()
        for worker_type, accepts, produces in edges:
            if accepts and mime not in accepts:
                continue
            if produces in seen:
                continue
            next_path = path + [worker_type]
            if produces == target_mime:
                return Pipeline(next_path)
            seen.add(produces)
            frontier.append((produces, next_path))
    raise PipelineError(
        f"no conversion chain from {source_mime!r} to {target_mime!r}")
