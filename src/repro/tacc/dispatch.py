"""Service-specific dispatch: from request to pipeline.

"The manager stub linked to the front ends provides support for
implementing the dispatch logic that selects which worker type(s) are
needed to satisfy a request; since the dispatch logic is independent of
the core load balancing and fault tolerance mechanisms, a variety of
services can be built using the same set of workers" (Section 2.2.5).

A :class:`DispatchTable` holds ordered :class:`DispatchRule` entries;
the first matching rule yields the pipeline.  Rules match on MIME type,
URL substring, and/or minimum content size (TranSend's 1 KB distillation
threshold is a ``min_size`` rule).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.tacc.content import Content
from repro.tacc.pipeline import Pipeline


class DispatchRule:
    """One match clause and the pipeline it selects."""

    def __init__(
        self,
        pipeline: Pipeline,
        mime: Optional[str] = None,
        url_contains: Optional[str] = None,
        min_size: int = 0,
        predicate: Optional[Callable[[Content], bool]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.pipeline = pipeline
        self.mime = mime
        self.url_contains = url_contains
        self.min_size = min_size
        self.predicate = predicate
        self.name = name or " | ".join(pipeline.stages)

    def matches(self, content: Content) -> bool:
        if self.mime is not None and content.mime != self.mime:
            return False
        if (self.url_contains is not None
                and self.url_contains not in content.url):
            return False
        if content.size < self.min_size:
            return False
        if self.predicate is not None and not self.predicate(content):
            return False
        return True

    def __repr__(self) -> str:
        return f"<DispatchRule {self.name}>"


class DispatchTable:
    """Ordered rules; first match wins; optional default pipeline."""

    def __init__(self, default: Optional[Pipeline] = None) -> None:
        self.rules: List[DispatchRule] = []
        self.default = default

    def add(self, rule: DispatchRule) -> "DispatchTable":
        self.rules.append(rule)
        return self

    def add_rule(self, pipeline: Pipeline, **match) -> "DispatchTable":
        return self.add(DispatchRule(pipeline, **match))

    def select(self, content: Content,
               trace=None) -> Optional[Pipeline]:
        """Pipeline for this content, or the default, or None
        (None means pass the content through unmodified).  A ``trace``
        span gets the matched rule recorded as an annotation."""
        for rule in self.rules:
            if rule.matches(content):
                if trace is not None:
                    trace.annotate(dispatch_rule=rule.name)
                return rule.pipeline
        if trace is not None:
            trace.annotate(dispatch_rule="default" if self.default
                           else "passthrough")
        return self.default
