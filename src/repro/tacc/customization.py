"""The customization (user-profile) database: the one ACID component.

"The customization database, a traditional ACID database, maps a user
identification token (such as an IP address or cookie) to a list of
key-value pairs for each user of the service" (Section 2.3).  Everything
else in the architecture is BASE; profiles and billing are the explicit
exception ("if the service bills the user per session, the billing should
certainly be delegated to an ACID database").

TranSend used gdbm, HotBot a parallel Informix server; we implement a
small write-ahead-log key-value store with real transactional semantics:

* **Atomicity** — a transaction's operations reach the log between a
  ``begin`` and a ``commit`` record; recovery replays only committed
  transactions, so a crash mid-commit loses the whole transaction, never
  half of it.
* **Consistency** — values must be JSON-serializable; an optional
  validator hook can enforce per-service schemas.
* **Isolation** — single-writer: one open transaction at a time
  (serializable by construction, matching gdbm's whole-file lock).
* **Durability** — file-backed logs are flushed (and optionally fsynced)
  at commit; :meth:`ProfileStore.recover` rebuilds state from the log,
  ignoring any torn tail.

The paper notes "user preference reads are much more frequent than
writes, and the reads are absorbed by a write-through cache in the front
end" — :class:`WriteThroughCache` is that cache.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, IO, List, Optional, Tuple

_TOMBSTONE = "__tombstone__"


class TransactionError(Exception):
    """Illegal transaction usage (nesting, reuse after commit...)."""


class StoreCorrupt(Exception):
    """The log contains a malformed record before the final line."""


class Transaction:
    """A buffered, atomic batch of profile updates."""

    def __init__(self, store: "ProfileStore", tx_id: int) -> None:
        self._store = store
        self.tx_id = tx_id
        self._writes: List[Tuple[str, str, Any]] = []
        self._overlay: Dict[Tuple[str, str], Any] = {}
        self.state = "open"

    def _require_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction is {self.state}")

    def set(self, user_id: str, key: str, value: Any) -> None:
        self._require_open()
        self._store._validate(user_id, key, value)
        self._writes.append((user_id, key, value))
        self._overlay[(user_id, key)] = value

    def delete(self, user_id: str, key: str) -> None:
        self._require_open()
        self._writes.append((user_id, key, _TOMBSTONE))
        self._overlay[(user_id, key)] = _TOMBSTONE

    def get(self, user_id: str, key: str, default: Any = None) -> Any:
        """Read-your-writes within the transaction."""
        self._require_open()
        if (user_id, key) in self._overlay:
            value = self._overlay[(user_id, key)]
            return default if value is _TOMBSTONE else value
        return self._store.get_value(user_id, key, default)

    def commit(self) -> None:
        self._require_open()
        self._store._commit(self)
        self.state = "committed"

    def abort(self) -> None:
        self._require_open()
        self._store._abort(self)
        self.state = "aborted"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class ProfileStore:
    """WAL-backed key-value store of per-user profiles."""

    def __init__(
        self,
        log_path: Optional[str] = None,
        sync: bool = False,
        validator: Optional[Callable[[str, str, Any], None]] = None,
    ) -> None:
        self.log_path = log_path
        self.sync = sync
        self._validator = validator
        self._data: Dict[str, Dict[str, Any]] = {}
        self._next_tx = 1
        self._open_tx: Optional[Transaction] = None
        self._log: Optional[IO[str]] = None
        self.commits = 0
        self.aborts = 0
        #: bumped by every :meth:`recover`; caches compare it to drop
        #: state that predates a recovery (the recovered store may have
        #: lost a torn tail the cache already absorbed).
        self.generation = 0
        if log_path is not None:
            self.recover()
            self._log = open(log_path, "a", encoding="utf-8")

    # -- reads ---------------------------------------------------------------

    def get(self, user_id: str) -> Dict[str, Any]:
        """A *copy* of the user's whole profile (possibly empty)."""
        return dict(self._data.get(user_id, {}))

    def get_value(self, user_id: str, key: str, default: Any = None) -> Any:
        return self._data.get(user_id, {}).get(key, default)

    def users(self) -> List[str]:
        return sorted(self._data)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._data

    # -- writes ----------------------------------------------------------------

    def begin(self) -> Transaction:
        if self._open_tx is not None:
            raise TransactionError("a transaction is already open "
                                   "(single-writer store)")
        tx = Transaction(self, self._next_tx)
        self._next_tx += 1
        self._open_tx = tx
        return tx

    def set(self, user_id: str, key: str, value: Any) -> None:
        """Auto-commit single write."""
        with self.begin() as tx:
            tx.set(user_id, key, value)

    def delete(self, user_id: str, key: str) -> None:
        """Auto-commit single delete."""
        with self.begin() as tx:
            tx.delete(user_id, key)

    def _validate(self, user_id: str, key: str, value: Any) -> None:
        try:
            json.dumps(value)
        except (TypeError, ValueError) as error:
            raise TransactionError(
                f"value for {user_id}/{key} is not JSON-serializable"
            ) from error
        if self._validator is not None:
            self._validator(user_id, key, value)

    def _commit(self, tx: Transaction) -> None:
        if tx is not self._open_tx:
            raise TransactionError("commit of a non-current transaction")
        self._append({"op": "begin", "tx": tx.tx_id})
        for user_id, key, value in tx._writes:
            if value is _TOMBSTONE:
                self._append({"op": "del", "tx": tx.tx_id,
                              "user": user_id, "key": key})
            else:
                self._append({"op": "set", "tx": tx.tx_id, "user": user_id,
                              "key": key, "value": value})
        self._append({"op": "commit", "tx": tx.tx_id}, flush=True)
        self._apply(tx._writes)
        self._open_tx = None
        self.commits += 1

    def _abort(self, tx: Transaction) -> None:
        if tx is not self._open_tx:
            raise TransactionError("abort of a non-current transaction")
        self._open_tx = None
        self.aborts += 1

    def _apply(self, writes: List[Tuple[str, str, Any]]) -> None:
        for user_id, key, value in writes:
            profile = self._data.setdefault(user_id, {})
            if value is _TOMBSTONE or value == _TOMBSTONE:
                profile.pop(key, None)
                if not profile:
                    self._data.pop(user_id, None)
            else:
                profile[key] = value

    # -- the log -------------------------------------------------------------------

    def _append(self, record: Dict[str, Any], flush: bool = False) -> None:
        if self._log is None:
            return
        self._log.write(json.dumps(record) + "\n")
        if flush:
            self._log.flush()
            if self.sync:
                os.fsync(self._log.fileno())

    def recover(self) -> int:
        """Rebuild in-memory state from the log; return #committed txns.

        Only operations bracketed by matching ``begin``/``commit`` records
        are applied; a torn final line (crash mid-write) is tolerated, but
        corruption earlier in the log raises :class:`StoreCorrupt`.

        A torn tail is also sealed on disk — truncated off, or given
        its missing newline when the crash landed exactly on a record
        boundary — so records appended after recovery cannot splice
        onto torn bytes and corrupt the *next* recovery.
        """
        self._data = {}
        self.generation += 1
        if self.log_path is None or not os.path.exists(self.log_path):
            return 0
        with open(self.log_path, "r", encoding="utf-8") as log:
            lines = log.readlines()
        committed = 0
        pending: Dict[int, List[Tuple[str, str, Any]]] = {}
        highest_tx = 0
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    # torn tail from a crash: drop it and truncate it
                    # off disk
                    good = sum(len(prior.encode("utf-8"))
                               for prior in lines[:index])
                    with open(self.log_path, "r+b") as raw:
                        raw.truncate(good)
                    break
                raise StoreCorrupt(f"bad record at line {index + 1}")
            op = record.get("op")
            tx_id = record.get("tx", 0)
            highest_tx = max(highest_tx, tx_id)
            if op == "begin":
                pending[tx_id] = []
            elif op == "set" and tx_id in pending:
                pending[tx_id].append(
                    (record["user"], record["key"], record["value"]))
            elif op == "del" and tx_id in pending:
                pending[tx_id].append(
                    (record["user"], record["key"], _TOMBSTONE))
            elif op == "commit" and tx_id in pending:
                self._apply(pending.pop(tx_id))
                committed += 1
        else:
            if lines and not lines[-1].endswith("\n"):
                # crash landed exactly on a record boundary: seal the
                # missing newline so the next append starts clean
                with open(self.log_path, "a", encoding="utf-8") as raw:
                    raw.write("\n")
        self._next_tx = highest_tx + 1
        return committed

    def checkpoint(self) -> None:
        """Compact the log to a snapshot of current state."""
        if self.log_path is None:
            return
        if self._open_tx is not None:
            raise TransactionError("cannot checkpoint with an open "
                                   "transaction")
        if self._log is not None:
            self._log.close()
        temp_path = self.log_path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as log:
            tx_id = self._next_tx
            self._next_tx += 1
            log.write(json.dumps({"op": "begin", "tx": tx_id}) + "\n")
            for user_id in sorted(self._data):
                for key, value in sorted(self._data[user_id].items()):
                    log.write(json.dumps(
                        {"op": "set", "tx": tx_id, "user": user_id,
                         "key": key, "value": value}) + "\n")
            log.write(json.dumps({"op": "commit", "tx": tx_id}) + "\n")
            log.flush()
            if self.sync:
                os.fsync(log.fileno())
        os.replace(temp_path, self.log_path)
        self._log = open(self.log_path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None


class WriteThroughCache:
    """Front-end read cache over a :class:`ProfileStore`.

    Reads hit the cache; writes go through to the store *and* update the
    cache, so the cache is always coherent with respect to writes made
    through it (the production layout: one FE, one cache, one store).
    Deletes are write-through too, and the cache watches the store's
    ``generation`` stamp: a recovery may have rolled the store back past
    state this cache already absorbed (a torn-tail transaction), so all
    cached reads from before a recovery are dropped wholesale.
    """

    def __init__(self, store: ProfileStore) -> None:
        self.store = store
        self._cache: Dict[str, Dict[str, Any]] = {}
        self._generation = getattr(store, "generation", 0)
        self.hits = 0
        self.misses = 0
        self.generation_flushes = 0

    def _check_generation(self) -> None:
        generation = getattr(self.store, "generation", 0)
        if generation != self._generation:
            self._cache.clear()
            self._generation = generation
            self.generation_flushes += 1

    def get(self, user_id: str) -> Dict[str, Any]:
        self._check_generation()
        if user_id in self._cache:
            self.hits += 1
        else:
            self.misses += 1
            self._cache[user_id] = self.store.get(user_id)
        return dict(self._cache[user_id])

    def set(self, user_id: str, key: str, value: Any) -> None:
        self._check_generation()
        self.store.set(user_id, key, value)
        profile = self._cache.setdefault(user_id, {})
        profile[key] = value

    def delete(self, user_id: str, key: str) -> None:
        """Write-through delete: the cached profile must never keep
        serving a key the store has tombstoned."""
        self._check_generation()
        self.store.delete(user_id, key)
        profile = self._cache.get(user_id)
        if profile is not None:
            profile.pop(key, None)

    def invalidate(self, user_id: Optional[str] = None) -> None:
        if user_id is None:
            self._cache.clear()
        else:
            self._cache.pop(user_id, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
