"""TACC: the paper's service-programming model.

TACC stands for **T**ransformation, **A**ggregation, **C**aching, and
**C**ustomization (Section 2.3).  Services are written by composing
*stateless* worker modules — transformers operate on one data object,
aggregators collate several — in Unix-pipeline fashion, with per-user
profile data from an ACID customization database delivered automatically
alongside each request.

This package is usable standalone (workers run as plain Python callables —
see ``examples/quickstart.py``) and is also the worker code that the SNS
layer schedules across the simulated cluster.
"""

from repro.tacc.content import (
    Content,
    ZeroPayload,
    guess_mime,
    zero_payload,
)
from repro.tacc.worker import (
    Aggregator,
    TACCRequest,
    Transformer,
    Worker,
    WorkerError,
)
from repro.tacc.pipeline import Pipeline, PipelineError
from repro.tacc.registry import WorkerRegistry
from repro.tacc.dispatch import DispatchRule, DispatchTable
from repro.tacc.sdk import BenchReport, WorkerBench, check_worker
from repro.tacc.customization import (
    ProfileStore,
    StoreCorrupt,
    Transaction,
    TransactionError,
    WriteThroughCache,
)

__all__ = [
    "Aggregator",
    "BenchReport",
    "Content",
    "DispatchRule",
    "DispatchTable",
    "Pipeline",
    "PipelineError",
    "ProfileStore",
    "StoreCorrupt",
    "TACCRequest",
    "Transaction",
    "TransactionError",
    "Transformer",
    "Worker",
    "WorkerBench",
    "WorkerError",
    "WorkerRegistry",
    "WriteThroughCache",
    "ZeroPayload",
    "check_worker",
    "guess_mime",
    "zero_payload",
]
