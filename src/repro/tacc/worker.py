"""Worker base classes: the paper's stateless building blocks.

Two shapes of worker exist (Section 2.3):

* a :class:`Transformer` is "an operation on a single data object that
  changes its content" — filtering, transcoding, re-rendering,
  encryption, compression;
* an :class:`Aggregator` "involves collecting data from several objects
  and collating it in a prespecified way".

Workers must be **stateless**: the only inputs are the request's content,
parameters, and the user-profile entries delivered with the request; the
only output is derived content.  Statelessness is what lets the SNS layer
restart a crashed worker anywhere, route around it, or run many
interchangeable instances ("a worker that performs a specific kind of
data compression can run anywhere that significant CPU cycles are
available", Section 1.3).

Workers also expose a *cost model* (``work_estimate``), the reference-CPU
seconds a request will take; the simulation charges that to the hosting
node, and the manager's load metric is built from the resulting queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.tacc.content import MIME_OCTET, Content


class WorkerError(Exception):
    """A worker failed on a request (pathological input, missing param...).

    The SNS layer treats worker errors as per-request failures to route
    around (return the original content, or an error page) — never as
    reasons to take the service down.
    """


@dataclass
class TACCRequest:
    """One unit of work handed to a worker.

    ``params`` are service-supplied arguments (e.g. the distillation
    quality the front end chose); ``profile`` is the slice of the user's
    customization database delivered with the request (Section 2.3: "the
    appropriate profile information is automatically delivered to workers
    along with the input data").
    """

    inputs: List[Content]
    params: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)
    user_id: Optional[str] = None

    @property
    def content(self) -> Content:
        """The single input, for transformers."""
        if len(self.inputs) != 1:
            raise WorkerError(
                f"expected exactly one input, got {len(self.inputs)}")
        return self.inputs[0]

    def param(self, key: str, default: Any = None) -> Any:
        """Parameter lookup: explicit params override profile entries."""
        if key in self.params:
            return self.params[key]
        return self.profile.get(key, default)


class Worker:
    """Base class; subclass :class:`Transformer` or :class:`Aggregator`."""

    #: registry name of this worker type, e.g. "jpeg-distiller".
    worker_type: str = "worker"
    #: MIME types accepted as input; empty means "anything".
    accepts: Sequence[str] = ()
    #: MIME type produced, or None if same-as-input.
    produces: Optional[str] = None

    def accepts_mime(self, mime: str) -> bool:
        return not self.accepts or mime in self.accepts

    def work_estimate(self, request: TACCRequest) -> float:
        """Reference-CPU seconds this request will cost.

        Default: proportional to total input size at the paper's measured
        GIF-distiller slope of ~8 ms/KB (Section 4.3).  Subclasses with
        calibrated models override this.
        """
        total_bytes = sum(content.size for content in request.inputs)
        return 0.008 * (total_bytes / 1024.0)

    def run(self, request: TACCRequest) -> Content:
        raise NotImplementedError

    # -- end-to-end health surface (repro.recovery) --------------------------

    def probe_request(self) -> TACCRequest:
        """A tiny synthetic request the supervision layer uses for health
        probes.  Deliberately small (64 bytes) so the probe's nominal
        service time is negligible next to the probe timeout; only a
        gray-failed worker (hung, zombie, inflated, corrupting) turns it
        into a failure signal."""
        probe = Content(url="probe://health", mime=MIME_OCTET,
                        data=b"\x00" * 64, metadata={"probe": True})
        return TACCRequest(inputs=[probe])

    def corrupt_result(self, content: Content) -> Content:
        """What this worker's output looks like when its output path is
        corrupting: the bytes ship, but flagged invalid so end-to-end
        validation catches them."""
        return content.with_metadata(output_valid=False)

    def validate_result(self, content: Content) -> bool:
        """End-to-end output validation, the detector of last resort for
        corrupt-output gray failures."""
        return content.metadata.get("output_valid", True) is not False

    def simulate(self, request: TACCRequest) -> Content:
        """Produce a size-accurate result without real computation.

        The cluster simulation processes hundreds of thousands of
        requests; distillers override this with their calibrated size
        models so experiments do not pay for real pixel work.  The
        default falls back to :meth:`run` (real execution).
        """
        return self.run(request)


class Transformer(Worker):
    """A worker over exactly one input object."""

    def run(self, request: TACCRequest) -> Content:
        return self.transform(request.content, request)

    def transform(self, content: Content, request: TACCRequest) -> Content:
        raise NotImplementedError


class Aggregator(Worker):
    """A worker that collates several input objects into one."""

    def run(self, request: TACCRequest) -> Content:
        if not request.inputs:
            raise WorkerError("aggregator requires at least one input")
        return self.aggregate(list(request.inputs), request)

    def aggregate(self, inputs: List[Content],
                  request: TACCRequest) -> Content:
        raise NotImplementedError


class IdentityWorker(Transformer):
    """Pass-through worker ("data for which no distiller exists is passed
    unmodified to the user", Section 4.1).  Also handy in tests."""

    worker_type = "identity"

    def work_estimate(self, request: TACCRequest) -> float:
        return 0.0

    def transform(self, content: Content, request: TACCRequest) -> Content:
        return content
