"""A synthetic raster-image codec with GIF-like and JPEG-like encodings.

We cannot ship jpeg-6a or real Web images, but the distillation pipeline
needs *real* bytes whose size responds to scaling and quality the way the
paper's images did.  This module provides:

* :class:`SyntheticImage` — a width x height x uint8 grayscale raster;
* a **GIF-like encoding**: lossless zlib over the raw raster (palette
  images compress losslessly; they are bigger per pixel of useful
  content, which is why TranSend converted GIF to JPEG);
* a **JPEG-like encoding**: quantization (driven by a 1-100 quality
  knob) before zlib — lossy, much smaller, and with the right
  size-vs-quality response (coarser quantization -> fewer distinct
  symbols -> smaller deflate output);
* :func:`generate_photo` — smooth random fields that compress like
  photographs rather than like noise or like constants.

Wire format (both encodings)::

    magic(4) | codec(1) | width(4) | height(4) | quality(1) | zlib payload
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

import numpy as np

from repro.sim.rng import Stream

MAGIC = b"SIMG"
CODEC_GIF = 1
CODEC_JPEG = 2
_HEADER = struct.Struct(">4sBIIB")


class ImageFormatError(Exception):
    """Malformed image bytes (the 'pathological input data' that
    'occasionally causes a distiller to crash')."""


class SyntheticImage:
    """A grayscale raster with GIF-like / JPEG-like serializations."""

    def __init__(self, pixels: np.ndarray) -> None:
        if pixels.ndim != 2 or pixels.dtype != np.uint8:
            raise ValueError("pixels must be a 2-D uint8 array")
        if pixels.size == 0:
            raise ValueError("image must be non-empty")
        self.pixels = pixels

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    # -- encodings -----------------------------------------------------------

    def encode_gif(self) -> bytes:
        """Lossless 'GIF': zlib at a palette-like (low) compression
        level, so GIF bytes are larger than JPEG bytes for the same
        content — the property TranSend exploited."""
        payload = zlib.compress(self.pixels.tobytes(), level=2)
        header = _HEADER.pack(MAGIC, CODEC_GIF, self.width, self.height, 0)
        return header + payload

    def encode_jpeg(self, quality: int = 75) -> bytes:
        """Lossy 'JPEG': quantize then deflate.

        The quantization step runs from 2 at quality 100 (near-lossless)
        to ~32 at quality 1, so the size/quality curve is steep at low
        qualities, like real JPEG, and even high-quality JPEG beats the
        lossless GIF encoding (the property TranSend exploited).
        """
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        # Calibrated against Figure 3: scale 2 + quality 25 turns a
        # ~10 KB GIF into ~1.5 KB (a 6.4x reduction here vs the paper's
        # 6.7x).
        step = max(2, int(2 + (100 - quality) * 0.05))
        quantized = (self.pixels // step) * step
        payload = zlib.compress(quantized.astype(np.uint8).tobytes(),
                                level=9)
        header = _HEADER.pack(MAGIC, CODEC_JPEG, self.width, self.height,
                              quality)
        return header + payload

    @classmethod
    def decode(cls, data: bytes) -> Tuple["SyntheticImage", int, int]:
        """Parse bytes -> (image, codec, quality).

        Raises :class:`ImageFormatError` on anything malformed.
        """
        if len(data) < _HEADER.size:
            raise ImageFormatError("truncated header")
        magic, codec, width, height, quality = _HEADER.unpack(
            data[:_HEADER.size])
        if magic != MAGIC:
            raise ImageFormatError(f"bad magic {magic!r}")
        if codec not in (CODEC_GIF, CODEC_JPEG):
            raise ImageFormatError(f"unknown codec {codec}")
        if width == 0 or height == 0 or width * height > 64_000_000:
            raise ImageFormatError(f"absurd dimensions {width}x{height}")
        try:
            raw = zlib.decompress(data[_HEADER.size:])
        except zlib.error as error:
            raise ImageFormatError("corrupt payload") from error
        if len(raw) != width * height:
            raise ImageFormatError(
                f"payload is {len(raw)} bytes, expected {width * height}")
        pixels = np.frombuffer(raw, dtype=np.uint8).reshape(height, width)
        return cls(pixels.copy()), codec, quality

    # -- transformations ---------------------------------------------------------

    def scaled(self, factor: int) -> "SyntheticImage":
        """Downscale by an integer factor in each dimension via block
        averaging (the paper's 'scaling this JPEG image by a factor of 2
        in each dimension')."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return SyntheticImage(self.pixels.copy())
        factor_y = min(factor, self.height)
        factor_x = min(factor, self.width)
        height = self.height // factor_y
        width = self.width // factor_x
        trimmed = self.pixels[: height * factor_y, : width * factor_x]
        blocks = trimmed.reshape(height, factor_y, width, factor_x)
        averaged = blocks.mean(axis=(1, 3))
        return SyntheticImage(averaged.astype(np.uint8))

    def low_pass(self, radius: int = 1) -> "SyntheticImage":
        """Box-filter smoothing (the 'low-pass filter' tuning images for
        slow links); smoother rasters also deflate smaller."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if radius == 0:
            return SyntheticImage(self.pixels.copy())
        acc = self.pixels.astype(np.float64)
        out = np.copy(acc)
        count = np.ones_like(acc)
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                if dy == 0 and dx == 0:
                    continue
                shifted = np.roll(np.roll(acc, dy, axis=0), dx, axis=1)
                out += shifted
                count += 1
        return SyntheticImage((out / count).astype(np.uint8))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SyntheticImage)
                and np.array_equal(self.pixels, other.pixels))

    def __repr__(self) -> str:
        return f"<SyntheticImage {self.width}x{self.height}>"


def generate_photo(rng: Stream, width: int = 160,
                   height: int = 120) -> SyntheticImage:
    """A smooth random field that compresses like a photograph.

    Construction: a coarse random grid bilinearly upsampled to full
    resolution, plus mild pixel noise.  Deflate finds structure (like
    real image codecs do on photos) but cannot collapse it to nothing.
    """
    coarse_w = max(2, width // 16)
    coarse_h = max(2, height // 16)
    coarse = np.array([
        [rng.uniform(0, 255) for _ in range(coarse_w)]
        for _ in range(coarse_h)
    ])
    # bilinear upsample to (height, width)
    ys = np.linspace(0, coarse_h - 1, height)
    xs = np.linspace(0, coarse_w - 1, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, coarse_h - 1)
    x1 = np.minimum(x0 + 1, coarse_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    upsampled = (
        coarse[np.ix_(y0, x0)] * (1 - wy) * (1 - wx)
        + coarse[np.ix_(y1, x0)] * wy * (1 - wx)
        + coarse[np.ix_(y0, x1)] * (1 - wy) * wx
        + coarse[np.ix_(y1, x1)] * wy * wx
    )
    noise = np.array([
        [rng.gauss(0, 6.0) for _ in range(width)] for _ in range(height)
    ])
    pixels = np.clip(upsampled + noise, 0, 255).astype(np.uint8)
    return SyntheticImage(pixels)


def photo_sized_for(rng: Stream, target_gif_bytes: int,
                    max_iterations: int = 8) -> SyntheticImage:
    """A photo whose GIF encoding is roughly ``target_gif_bytes``.

    Used by the service layer to materialize trace records (which carry
    only a size) into distillable content.
    """
    if target_gif_bytes < 64:
        raise ValueError("target too small for an image")
    # Start from the empirical bytes-per-pixel of this codec (~0.5) and
    # refine geometrically.
    pixels_needed = target_gif_bytes * 2
    aspect = 4.0 / 3.0
    for _ in range(max_iterations):
        height = max(8, int((pixels_needed / aspect) ** 0.5))
        width = max(8, int(height * aspect))
        image = generate_photo(rng, width, height)
        actual = len(image.encode_gif())
        if 0.7 * target_gif_bytes <= actual <= 1.4 * target_gif_bytes:
            return image
        pixels_needed = int(pixels_needed * target_gif_bytes / actual)
    return image
