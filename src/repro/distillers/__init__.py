"""Datatype-specific distillers: TranSend's lossy-compression workers.

TranSend shipped three distillers (Section 3.1.6), each built in an
afternoon from off-the-shelf code:

1. scaling and low-pass filtering of JPEG images (jpeg-6a);
2. GIF-to-JPEG conversion followed by JPEG degradation (chosen because
   "the JPEG representation is smaller and faster to operate on for most
   images");
3. a Perl HTML "munger" that marks up inline image references, adds
   links to originals, and injects a preferences toolbar.

We reproduce all three as *real* transformations over a synthetic image
codec (:mod:`repro.distillers.images`) and real HTML strings — the
Figure 3 headline (10 KB JPEG -> ~1.5 KB at scale 2, quality 25) is an
actual measured byte count here, not a constant.  Each distiller also
carries the calibrated latency model from Section 4.3 (≈8 ms per KB of
input for images, much cheaper for HTML) used by the cluster simulation.
"""

from repro.distillers.images import (
    ImageFormatError,
    SyntheticImage,
    generate_photo,
)
from repro.distillers.base import Distiller, DistillerLatencyModel
from repro.distillers.jpeg import JpegDistiller
from repro.distillers.gif import GifDistiller
from repro.distillers.html import HtmlMunger

__all__ = [
    "Distiller",
    "DistillerLatencyModel",
    "GifDistiller",
    "HtmlMunger",
    "ImageFormatError",
    "JpegDistiller",
    "SyntheticImage",
    "generate_photo",
]
