"""Distiller base class and the Section 4.3 latency model.

"For the GIF distiller, there is an approximately linear relationship
between distillation time and input size, although a large variation in
distillation time is observed for any particular data size.  The slope of
this relationship is approximately 8 milliseconds per kilobyte of input."

:class:`DistillerLatencyModel` captures exactly that: a fixed overhead, a
per-kilobyte slope, and a log-normal noise multiplier for the observed
variation.  ``mean(size)`` feeds capacity planning (how many requests/sec
a distiller can absorb — the paper's ≈23 req/s at 10 KB inputs includes
queueing; the raw service rate here is higher); ``sample(rng, size)`` is
what the simulated worker actually charges the node per request.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.rng import Stream
from repro.tacc.content import Content, zero_payload
from repro.tacc.worker import TACCRequest, Transformer


class DistillerLatencyModel:
    """latency = (fixed + slope * input_kb) * lognormal-noise."""

    def __init__(self, slope_s_per_kb: float, fixed_s: float = 0.005,
                 noise_sigma: float = 0.45) -> None:
        if slope_s_per_kb < 0 or fixed_s < 0:
            raise ValueError("latency parameters must be non-negative")
        self.slope_s_per_kb = slope_s_per_kb
        self.fixed_s = fixed_s
        self.noise_sigma = noise_sigma

    def mean(self, size_bytes: int) -> float:
        return self.fixed_s + self.slope_s_per_kb * (size_bytes / 1024.0)

    def sample(self, rng: Stream, size_bytes: int) -> float:
        noise = rng.lognormal(-self.noise_sigma ** 2 / 2.0,
                              self.noise_sigma)
        return self.mean(size_bytes) * noise


#: Calibrated slopes.  GIF is the paper's measured 8 ms/KB (Figure 7);
#: JPEG skips the GIF-decode step and is calibrated so one distiller
#: sustains the ~23 requests/second on 10 KB inputs that Table 2
#: measures (0.008 s + 0.0035 s/KB * 10 KB = 43 ms per request); the
#: HTML munger "is far more efficient" than the image distillers.
GIF_SLOPE_S_PER_KB = 0.008
JPEG_SLOPE_S_PER_KB = 0.0035
HTML_SLOPE_S_PER_KB = 0.0004
JPEG_FIXED_S = 0.008


def predicted_image_reduction(scale: int, quality: int,
                              codec_bonus: float = 1.0) -> float:
    """Size-reduction factor of the image distillers' real codec.

    Calibrated against :mod:`repro.distillers.images`: scaling divides
    pixels by ``scale**2`` and quantization at quality q adds roughly a
    ``1 + (100 - q) * 0.008`` entropy win; converting from the less
    efficient GIF coding adds ``codec_bonus``.
    """
    quality_gain = 1.0 + max(0, 100 - quality) * 0.008
    return max(1.0, scale * scale * quality_gain * codec_bonus)


class Distiller(Transformer):
    """A transformation worker with a calibrated latency model."""

    latency_model = DistillerLatencyModel(GIF_SLOPE_S_PER_KB)
    #: extra size win when the input codec is less efficient than the
    #: output codec (GIF -> JPEG conversion); 1.0 for same-codec.
    codec_bonus = 1.0
    simulated_mime: str = ""

    def work_estimate(self, request: TACCRequest) -> float:
        total = sum(content.size for content in request.inputs)
        return self.latency_model.mean(total)

    def work_sample(self, rng: Stream, request: TACCRequest) -> float:
        total = sum(content.size for content in request.inputs)
        return self.latency_model.sample(rng, total)

    def simulate(self, request: TACCRequest) -> Content:
        """Size-model execution: derive content of the predicted size
        without touching pixels (used by the cluster simulation)."""
        content = request.content
        scale = int(request.param("scale", 2))
        quality = int(request.param("quality", 25))
        reduction = predicted_image_reduction(scale, quality,
                                              self.codec_bonus)
        predicted = max(64, int(content.size / reduction))
        return content.derive(
            zero_payload(predicted),
            mime=self.simulated_mime or self.produces or content.mime,
            worker=self.worker_type,
            scale=scale,
            quality=quality,
            simulated=True,
        )
