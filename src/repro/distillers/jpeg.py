"""JPEG distiller: scaling and low-pass filtering of JPEG images.

The Figure 3 headline transformation: "Scaling this JPEG image by a
factor of 2 in each dimension and reducing JPEG quality to 25 results in
a size reduction from 10 KB to 1.5 KB."  Parameters come from the user's
customization profile via the request (``scale``, ``quality``,
``low_pass_radius``), which is how one worker serves many services with
different settings (Section 2.3's image-compression example).
"""

from __future__ import annotations

from repro.distillers.base import (
    Distiller,
    DistillerLatencyModel,
    JPEG_FIXED_S,
    JPEG_SLOPE_S_PER_KB,
)
from repro.distillers.images import (
    CODEC_JPEG,
    ImageFormatError,
    SyntheticImage,
)
from repro.tacc.content import MIME_JPEG, Content
from repro.tacc.worker import TACCRequest, WorkerError

DEFAULT_SCALE = 2
DEFAULT_QUALITY = 25


class JpegDistiller(Distiller):
    """Scale + low-pass + requantize a JPEG."""

    worker_type = "jpeg-distiller"
    accepts = (MIME_JPEG,)
    produces = MIME_JPEG
    latency_model = DistillerLatencyModel(JPEG_SLOPE_S_PER_KB,
                                          fixed_s=JPEG_FIXED_S)

    def transform(self, content: Content, request: TACCRequest) -> Content:
        scale = int(request.param("scale", DEFAULT_SCALE))
        quality = int(request.param("quality", DEFAULT_QUALITY))
        radius = int(request.param("low_pass_radius", 0))
        try:
            image, codec, _ = SyntheticImage.decode(content.data)
        except ImageFormatError as error:
            raise WorkerError(f"undecodable JPEG {content.url}: "
                              f"{error}") from error
        if codec != CODEC_JPEG:
            raise WorkerError(
                f"{content.url} is not JPEG-coded (codec {codec})")
        distilled = image.scaled(scale)
        if radius > 0:
            distilled = distilled.low_pass(radius)
        data = distilled.encode_jpeg(quality)
        return content.derive(
            data,
            mime=MIME_JPEG,
            worker=self.worker_type,
            scale=scale,
            quality=quality,
        )
