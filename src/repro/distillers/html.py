"""The HTML "munger" distiller.

"A Perl HTML 'munger' that marks up inline image references with
distillation preferences, adds extra links next to distilled images so
that users can retrieve the original content, and adds a 'toolbar'
(Figure 4) to each page that allows users to control various aspects of
TranSend's operation.  The user interface for TranSend is thus controlled
by the HTML distiller, under the direction of the user preferences from
the front end."

This is real string surgery over real HTML, not a size model: image tags
gain a ``[original]`` retrieval link and a distillation-parameters query
string, and the toolbar is injected after ``<body>`` (or prepended).
"""

from __future__ import annotations

import re

from repro.distillers.base import (
    Distiller,
    DistillerLatencyModel,
    HTML_SLOPE_S_PER_KB,
)
from repro.tacc.content import MIME_HTML, Content, zero_payload
from repro.tacc.worker import TACCRequest, WorkerError

_IMG_TAG = re.compile(r"<img\b[^>]*?\bsrc\s*=\s*[\"']([^\"']+)[\"'][^>]*>",
                      re.IGNORECASE)
_BODY_TAG = re.compile(r"<body\b[^>]*>", re.IGNORECASE)

TOOLBAR_TEMPLATE = (
    '<div class="transend-toolbar">'
    "TranSend: quality={quality} scale={scale} "
    '[<a href="/transend/prefs?user={user}">preferences</a>] '
    '[<a href="/transend/off">original page</a>]'
    "</div>"
)


class HtmlMunger(Distiller):
    """Marks up image references and injects the preferences toolbar."""

    worker_type = "html-munger"
    accepts = (MIME_HTML,)
    produces = MIME_HTML
    latency_model = DistillerLatencyModel(HTML_SLOPE_S_PER_KB,
                                          fixed_s=0.001)

    def simulate(self, request: TACCRequest) -> Content:
        """Size model: munging grows pages slightly (toolbar + links)."""
        content = request.content
        predicted = int(content.size * 1.04) + len(TOOLBAR_TEMPLATE)
        return content.derive(
            zero_payload(predicted),
            mime=MIME_HTML,
            worker=self.worker_type,
            simulated=True,
        )

    def transform(self, content: Content, request: TACCRequest) -> Content:
        try:
            html = content.data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WorkerError(
                f"{content.url} is not decodable HTML") from error
        quality = request.param("quality", 25)
        scale = request.param("scale", 2)
        user = request.user_id or "anonymous"

        def mark_image(match: "re.Match[str]") -> str:
            source = match.group(1)
            separator = "&" if "?" in source else "?"
            distill_src = (f"{source}{separator}transend-quality={quality}"
                           f"&transend-scale={scale}")
            original_link = (f' <a href="{source}?transend=off">'
                             "[original]</a>")
            return (match.group(0).replace(source, distill_src)
                    + original_link)

        munged, image_count = _IMG_TAG.subn(mark_image, html)
        toolbar = TOOLBAR_TEMPLATE.format(quality=quality, scale=scale,
                                          user=user)
        if _BODY_TAG.search(munged):
            munged = _BODY_TAG.sub(
                lambda match: match.group(0) + toolbar, munged, count=1)
        else:
            munged = toolbar + munged
        return content.derive(
            munged.encode("utf-8"),
            mime=MIME_HTML,
            worker=self.worker_type,
            images_marked=image_count,
        )
