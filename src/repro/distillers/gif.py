"""GIF distiller: GIF-to-JPEG conversion followed by JPEG degradation.

"We chose this approach after discovering that the JPEG representation is
smaller and faster to operate on for most images, and produces
aesthetically superior results" (Section 3.1.6, footnote 3).  The GIF
distiller carries the paper's measured 8 ms/KB latency slope
(Section 4.3, Figure 7).
"""

from __future__ import annotations

from repro.distillers.base import (
    Distiller,
    DistillerLatencyModel,
    GIF_SLOPE_S_PER_KB,
)
from repro.distillers.images import (
    CODEC_GIF,
    ImageFormatError,
    SyntheticImage,
)
from repro.tacc.content import MIME_GIF, MIME_JPEG, Content
from repro.tacc.worker import TACCRequest, WorkerError

DEFAULT_SCALE = 2
DEFAULT_QUALITY = 25


class GifDistiller(Distiller):
    """Decode GIF, scale, re-encode as degraded JPEG."""

    worker_type = "gif-distiller"
    accepts = (MIME_GIF,)
    produces = MIME_JPEG
    latency_model = DistillerLatencyModel(GIF_SLOPE_S_PER_KB)
    codec_bonus = 1.2  # GIF coding is less efficient than JPEG

    def transform(self, content: Content, request: TACCRequest) -> Content:
        scale = int(request.param("scale", DEFAULT_SCALE))
        quality = int(request.param("quality", DEFAULT_QUALITY))
        try:
            image, codec, _ = SyntheticImage.decode(content.data)
        except ImageFormatError as error:
            raise WorkerError(f"undecodable GIF {content.url}: "
                              f"{error}") from error
        if codec != CODEC_GIF:
            raise WorkerError(
                f"{content.url} is not GIF-coded (codec {codec})")
        distilled = image.scaled(scale)
        data = distilled.encode_jpeg(quality)
        return content.derive(
            data,
            mime=MIME_JPEG,
            worker=self.worker_type,
            scale=scale,
            quality=quality,
        )
