"""SNS layer configuration.

Every tunable named in the paper lives here with its paper-derived
default: the spawn threshold *H* ("when the average crosses a
configurable threshold H, the manager spawns a new distiller"), the
damping interval *D* ("the spawning mechanism is disabled for D
seconds"), beacon and load-report periods ("a load announcement packet
for the manager every half a second"), the front-end thread pool ("the
production TranSend runs with a single front-end of about 400 threads"),
and the per-connection front-end overhead that makes a 100 Mb/s segment
top out near 70 requests/second (Section 4.6, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SNSConfig:
    """Knobs for the manager, stubs, and front ends."""

    # -- soft-state refresh --------------------------------------------------
    #: manager beacon period on the well-known multicast channel.
    beacon_interval_s: float = 0.5
    #: worker stub load-report period ("every half a second").
    report_interval_s: float = 0.5
    #: beacons a manager stub may miss before declaring the manager dead
    #: and exercising its process-peer duty to restart it.
    beacon_loss_tolerance: int = 6
    #: seconds without a load report before the manager presumes a
    #: worker dead (timeouts as the backup failure detector).
    worker_timeout_s: float = 5.0

    # -- spawn / reap policy --------------------------------------------------
    #: threshold H: spawn when a type's average queue length crosses it.
    spawn_threshold: float = 10.0
    #: damping D: seconds the spawner is disabled after each spawn.
    spawn_damping_s: float = 15.0
    #: reap a worker when the type's average queue stays below this...
    reap_threshold: float = 0.5
    #: ...for this long, and more than min_workers_per_type remain.
    reap_after_s: float = 60.0
    min_workers_per_type: int = 1
    #: seconds a busy reap victim gets to drain (queued work is moved to
    #: peers, the in-service request runs out) before it is killed anyway.
    reap_drain_timeout_s: float = 10.0
    #: recruit overflow-pool nodes when the dedicated pool is exhausted.
    use_overflow_pool: bool = True

    # -- load balancing ----------------------------------------------------------
    #: "centralized" (the paper's design: the manager aggregates load
    #: and beacons hints) or "distributed" (the Section 2.2.2
    #: alternative the paper argues against: every worker multicasts its
    #: own load to every front end).  The manager still exists in
    #: distributed mode for spawning and process-peer duties; it just
    #: plays no part in balancing.
    balancing: str = "centralized"
    #: load metric (Section 3.1.2, footnote 2): "queue" counts waiting
    #: requests; "weighted-cost" weights each queued item by its
    #: expected cost in seconds — with it, spawn_threshold is literally
    #: "the greatest delay the user is willing to tolerate", in seconds.
    load_metric: str = "queue"
    #: exponential moving average weight for queue-length reports.
    load_ewma_alpha: float = 0.3
    #: manager stubs extrapolate queue deltas between reports (the
    #: Section 4.5 oscillation fix); disable for the ablation.
    estimate_queue_deltas: bool = True
    #: lottery-scheduling weight exponent: weight = 1/(1+queue)^gamma.
    lottery_gamma: float = 2.0
    #: worker-selection policy at the manager stubs (repro.balance).
    #: Base names: lottery (the paper's default), round-robin,
    #: least-outstanding, p2c, ewma, weighted, hash-bounded; append
    #: "+eject" for passive outlier ejection (e.g. "ewma+eject").
    routing_policy: str = "lottery"
    #: EWMA weight for policy-side latency observations (the ewma
    #: policy and the outlier ejector; distinct from the manager's
    #: load_ewma_alpha so tuning one never skews the other).
    policy_ewma_alpha: float = 0.3
    #: "weighted" policy: traffic fraction routed to the canary (the
    #: most recently spawned worker).
    policy_canary_fraction: float = 0.1
    #: "hash-bounded" policy: a worker may carry at most this multiple
    #: of the mean in-flight load before the request walks the ring.
    policy_hash_bound: float = 1.25
    #: "hash-bounded" policy: virtual nodes per worker on the ring.
    policy_hash_replicas: int = 50
    #: "+eject" wrapper: eject when a worker's observed-latency EWMA
    #: exceeds this multiple of the peer median...
    outlier_latency_ratio: float = 3.0
    #: ...judged only after this many local latency samples...
    outlier_min_samples: int = 8
    #: ...and only while at least this many peers are in play
    #: (peer-relative by construction: global slowness ejects nobody).
    outlier_min_peers: int = 3
    #: "+eject" wrapper: timeouts within outlier_window_s that eject a
    #: worker (unless timeouts are cluster-wide).
    outlier_timeout_threshold: int = 3
    outlier_window_s: float = 10.0
    #: first ejection duration; doubles per repeat offence up to the
    #: max.  Re-admission is probationary (history cleared).
    outlier_ejection_s: float = 5.0
    outlier_max_ejection_s: float = 60.0
    #: per-dispatch timeout before the front end retries elsewhere.
    dispatch_timeout_s: float = 8.0
    #: dispatch attempts before falling back to the original content.
    dispatch_attempts: int = 2
    #: per-request dispatch deadline; ``None`` means the full budget
    #: (``dispatch_attempts * dispatch_timeout_s``).  The deadline is
    #: propagated into each WorkEnvelope so downstream stages can shed
    #: work the client has already given up on.
    dispatch_deadline_s: Optional[float] = None
    #: retry backoff: first-retry delay, growth factor, and cap.  The
    #: delay is jittered ±50% by ``dispatch_backoff_jitter`` from a
    #: dedicated seeded stream, so lossy-regime retries neither
    #: synchronize into retry storms nor perturb other streams.
    dispatch_backoff_base_s: float = 0.05
    dispatch_backoff_factor: float = 2.0
    dispatch_backoff_cap_s: float = 2.0
    #: jitter fraction: each backoff delay is scaled by a deterministic
    #: uniform draw in [1 - j/2, 1 + j/2].
    dispatch_backoff_jitter: float = 0.5

    # -- front ends -----------------------------------------------------------------
    #: thread-pool size ("about 400 threads").
    frontend_threads: int = 400
    #: per-request TCP/kernel overhead at the front end; 14 ms gives the
    #: ~70 req/s per-FE ceiling measured in Section 4.6.
    frontend_connection_overhead_s: float = 0.014
    #: request/response header bytes charged to the FE access link on
    #: top of content bytes.
    request_overhead_bytes: int = 400

    #: load-shedding admission control: when set, a front end whose
    #: thread pool is exhausted *and* whose netstack backlog exceeds
    #: this many seconds refuses new requests immediately ("shed")
    #: instead of queueing them toward certain timeout.  ``None``
    #: disables shedding (the paper's original behaviour).
    admission_max_backlog_s: Optional[float] = None
    #: shedding hysteresis: once shedding starts it continues until the
    #: netstack backlog falls back *below this* (< admission_max_
    #: backlog_s), instead of flapping on/off around the single
    #: threshold.  ``None`` keeps the legacy single-threshold switch.
    admission_exit_backlog_s: Optional[float] = None

    # -- overload-amplification guards (repro.degrade.guards) ----------------
    #: retry budget: each first dispatch attempt earns this many retry
    #: tokens (capped at ``retry_budget_cap``); each retry spends one.
    #: Caps retry traffic to a fraction of fresh requests so timeouts
    #: cannot snowball into retry storms.  ``None`` = unlimited retries
    #: (the legacy behaviour).
    retry_budget_ratio: Optional[float] = None
    retry_budget_cap: float = 20.0
    #: origin circuit breaker: consecutive failures (errors or fetches
    #: slower than ``origin_breaker_slow_s``) before the breaker opens;
    #: ``None`` disables the breaker.  While open, origin fetches fail
    #: fast; after ``origin_breaker_cooldown_s`` one half-open probe
    #: tests the origin again.
    origin_breaker_failures: Optional[int] = None
    origin_breaker_cooldown_s: float = 10.0
    origin_breaker_slow_s: float = 2.0

    # -- brownout controller (repro.degrade.controller) ----------------------
    #: control-loop sampling period.
    degrade_tick_s: float = 0.5
    #: pressure at/above which the ladder escalates one level per tick.
    degrade_enter_pressure: float = 1.0
    #: pressure at/below which ticks count as calm (de-escalation).
    degrade_exit_pressure: float = 0.5
    #: consecutive calm ticks required before stepping down one level.
    degrade_dwell_ticks: int = 2
    #: minimum ticks between successive escalations (spawn-damping
    #: analogue: one congested sample cannot slam the ladder to the top).
    degrade_hold_ticks: int = 2
    #: signal targets: worst per-worker queue delay (seconds), busiest
    #: front end's thread occupancy, and per-tick shed ratio.  Each
    #: signal normalized by its target; pressure is the max.
    degrade_queue_target_s: float = 1.0
    degrade_util_target: float = 0.9
    degrade_shed_target: float = 0.05
    #: highest ladder level the controller may reach (operators can pin
    #: the ladder below priority-admission/deadline-shed).
    degrade_max_level: int = 5
    #: deadline-shed level: assumed client deadline for the
    #: probabilistic can-this-still-make-it admission estimate.
    degrade_deadline_s: float = 8.0
    #: serve-stale level: result freshness horizon (always servable)
    #: and the extended stale horizon (servable only while degraded).
    degrade_fresh_ttl_s: float = 2.0
    degrade_stale_ttl_s: float = 90.0

    # -- workers ----------------------------------------------------------------------
    #: worker stub queue capacity; beyond this, submissions are refused
    #: (the stub "accepts and queues requests on behalf of the
    #: distiller").
    worker_queue_capacity: int = 200
    #: when True, worker stubs drop queued requests whose propagated
    #: deadline has already passed (the client gave up; executing the
    #: work would only add queueing delay for live requests).
    shed_expired_requests: bool = False

    # -- consensus-replicated manager (the partition-tolerant variant) -------
    #: manager replicas when the fabric runs the consensus backend.
    consensus_replicas: int = 3
    #: leader lease: a leader whose last committed entry is older than
    #: this stops beaconing and refusing work (it may be in a minority).
    consensus_lease_s: float = 2.0
    #: period of the leader's no-op "tick" commits that renew the lease.
    consensus_tick_s: float = 0.5
    #: how long a follower waits after the lease lapses before standing
    #: for election...
    consensus_election_timeout_s: float = 1.0
    #: ...staggered per replica index so candidates do not collide
    #: (deterministic — no randomized election timers needed).
    consensus_election_stagger_s: float = 0.3
    #: soft-state backend only: a deposed manager that hears a beacon
    #: with a higher incarnation kills itself instead of beaconing
    #: forever from the minority side of a healed partition.
    manager_self_deposition: bool = False

    # -- caching ------------------------------------------------------------------------
    #: distillation threshold: content under 1 KB is passed unmodified.
    distillation_threshold_bytes: int = 1024
    #: store distilled results in the virtual cache.
    cache_distilled: bool = True

    def validate(self) -> "SNSConfig":
        if self.beacon_interval_s <= 0 or self.report_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.spawn_threshold <= 0:
            raise ValueError("spawn threshold must be positive")
        if self.spawn_damping_s < 0:
            raise ValueError("spawn damping must be non-negative")
        if self.reap_drain_timeout_s < 0:
            raise ValueError("reap drain timeout must be non-negative")
        if not 0 < self.load_ewma_alpha <= 1:
            raise ValueError("EWMA alpha must be in (0, 1]")
        if self.load_metric not in ("queue", "weighted-cost"):
            raise ValueError(
                f"unknown load metric {self.load_metric!r}")
        if self.balancing not in ("centralized", "distributed"):
            raise ValueError(
                f"unknown balancing mode {self.balancing!r}")
        if self.dispatch_attempts < 1:
            raise ValueError("need at least one dispatch attempt")
        # late import: repro.balance typing never depends on config, but
        # importing it at module top would be a cycle risk for callers
        from repro.balance import parse_policy_spec
        parse_policy_spec(self.routing_policy)  # raises PolicyError
        if not 0 < self.policy_ewma_alpha <= 1:
            raise ValueError("policy EWMA alpha must be in (0, 1]")
        if not 0.0 < self.policy_canary_fraction < 1.0:
            raise ValueError("canary fraction must be in (0, 1)")
        if self.policy_hash_bound < 1.0:
            raise ValueError("hash load bound must be >= 1")
        if self.policy_hash_replicas < 1:
            raise ValueError("hash ring needs >= 1 replica per worker")
        if self.outlier_latency_ratio <= 1.0:
            raise ValueError("outlier latency ratio must be > 1")
        if self.outlier_min_samples < 1 or self.outlier_min_peers < 2:
            raise ValueError(
                "outlier ejection needs >= 1 sample and >= 2 peers")
        if self.outlier_timeout_threshold < 1:
            raise ValueError("outlier timeout threshold must be >= 1")
        if self.outlier_window_s <= 0 or self.outlier_ejection_s <= 0:
            raise ValueError("outlier windows must be positive")
        if self.outlier_max_ejection_s < self.outlier_ejection_s:
            raise ValueError(
                "max ejection must be >= the base ejection duration")
        if self.dispatch_deadline_s is not None \
                and self.dispatch_deadline_s <= 0:
            raise ValueError("dispatch deadline must be positive")
        if self.dispatch_backoff_base_s < 0 \
                or self.dispatch_backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.dispatch_backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.dispatch_backoff_jitter <= 1.0:
            raise ValueError("backoff jitter must be in [0, 1]")
        if self.admission_max_backlog_s is not None \
                and self.admission_max_backlog_s < 0:
            raise ValueError("admission backlog must be non-negative")
        if self.admission_exit_backlog_s is not None:
            if self.admission_max_backlog_s is None:
                raise ValueError(
                    "admission exit threshold needs admission_max_"
                    "backlog_s set")
            if not 0 <= self.admission_exit_backlog_s \
                    <= self.admission_max_backlog_s:
                raise ValueError(
                    "admission exit threshold must be in [0, enter]")
        if self.retry_budget_ratio is not None \
                and self.retry_budget_ratio < 0:
            raise ValueError("retry budget ratio must be non-negative")
        if self.retry_budget_cap < 1:
            raise ValueError("retry budget cap must be >= 1")
        if self.origin_breaker_failures is not None \
                and self.origin_breaker_failures < 1:
            raise ValueError("breaker failure threshold must be >= 1")
        if self.origin_breaker_cooldown_s <= 0 \
                or self.origin_breaker_slow_s <= 0:
            raise ValueError(
                "breaker cooldown and slow budget must be positive")
        if self.degrade_tick_s <= 0:
            raise ValueError("degrade tick must be positive")
        if not 0 <= self.degrade_exit_pressure \
                < self.degrade_enter_pressure:
            raise ValueError(
                "need 0 <= exit pressure < enter pressure")
        if self.degrade_dwell_ticks < 1 or self.degrade_hold_ticks < 0:
            raise ValueError(
                "degrade dwell must be >= 1 and hold >= 0 ticks")
        if self.degrade_queue_target_s <= 0 \
                or self.degrade_util_target <= 0 \
                or self.degrade_shed_target <= 0:
            raise ValueError("degrade signal targets must be positive")
        if not 0 <= self.degrade_max_level <= 5:
            raise ValueError("degrade max level must be in [0, 5]")
        if self.degrade_deadline_s <= 0:
            raise ValueError("degrade deadline must be positive")
        if self.degrade_fresh_ttl_s <= 0 \
                or self.degrade_stale_ttl_s < self.degrade_fresh_ttl_s:
            raise ValueError(
                "need 0 < fresh TTL <= stale TTL")
        if self.frontend_threads < 1:
            raise ValueError("front end needs at least one thread")
        if self.consensus_replicas < 1 or self.consensus_replicas % 2 == 0:
            raise ValueError("consensus needs an odd replica count")
        if self.consensus_lease_s <= 0 or self.consensus_tick_s <= 0:
            raise ValueError("consensus lease and tick must be positive")
        if self.consensus_election_timeout_s <= 0:
            raise ValueError("election timeout must be positive")
        if self.consensus_election_stagger_s < 0:
            raise ValueError("election stagger must be non-negative")
        return self
