"""SNS protocol messages.

All coordination state in the SNS layer is *soft*: it lives in these
messages and in caches of them, never on disk.  Beacons and load reports
are periodically refreshed, so any component can crash and rebuild its
view "typically by listening to multicasts from other components"
(Section 2.2.4).

Because this is an in-process simulation, messages carry direct object
references (e.g. a worker stub) where a real deployment would carry
host:port addresses; the *timing* of every message still crosses the
simulated SAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Well-known multicast group names (the "level of indirection" that
#: relieves components of having to locate each other, Section 3.1.2).
BEACON_GROUP = "sns.manager.beacons"
MONITOR_GROUP = "sns.monitor.reports"
#: used only by the *distributed* balancing ablation (Section 2.2.2):
#: workers announce their own load to every front end, manager-free.
WORKER_ANNOUNCE_GROUP = "sns.worker.announcements"
#: Paxos traffic between manager replicas (consensus backend only).
#: Rides the same unreliable multicast as the beacons — the protocol,
#: not the transport, provides the reliability.
CONSENSUS_GROUP = "sns.manager.consensus"

#: Nominal wire sizes (bytes) used for SAN accounting.
BEACON_BYTES = 512
REPORT_BYTES = 96
REGISTER_BYTES = 160
CONSENSUS_BYTES = 224


@dataclass
class LoadReport:
    """Periodic worker -> manager load announcement.

    "Distiller load is characterized in terms of the queue length at the
    distiller, optionally weighted by the expected cost of distilling
    each item" (Section 3.1.2, footnote 2).
    """

    worker_name: str
    worker_type: str
    node_name: str
    queue_length: int
    weighted_load: float
    sent_at: float
    #: worker-measured EWMA of wall-clock service time (queue wait
    #: excluded); 0.0 until the first request completes.  Latency-aware
    #: routing policies use it as a cold-start prior.
    service_ewma_s: float = 0.0


@dataclass
class WorkerAdvert:
    """One worker's entry in a manager beacon: location plus the
    manager's smoothed view of its load."""

    worker_name: str
    worker_type: str
    node_name: str
    stub: Any
    queue_avg: float
    last_report_at: float
    #: relayed from the worker's load reports (see LoadReport).
    service_ewma_s: float = 0.0


@dataclass
class ManagerBeacon:
    """Manager's periodic multicast: existence + load-balancing hints.

    ``incarnation`` distinguishes a restarted manager from the one that
    crashed, so workers know to re-register.
    """

    manager_id: str
    incarnation: int
    manager: Any
    sent_at: float
    adverts: Dict[str, WorkerAdvert] = field(default_factory=dict)
    #: consensus backend only: absolute sim time through which the
    #: sending leader holds the majority lease.  Stubs must not route on
    #: these hints past this time (they stall instead); ``None`` means
    #: the soft-state manager, which promises no staleness bound.
    lease_until: Optional[float] = None

    def adverts_of_type(self, worker_type: str) -> Dict[str, WorkerAdvert]:
        return {
            name: advert for name, advert in self.adverts.items()
            if advert.worker_type == worker_type
        }


@dataclass
class RegisterWorker:
    """Worker -> manager registration (on startup or new-manager beacon)."""

    worker_name: str
    worker_type: str
    node_name: str
    stub: Any


@dataclass
class RegisterFrontEnd:
    """Front end -> manager registration, recruiting the manager as the
    front end's process peer."""

    frontend_name: str
    node_name: str
    frontend: Any


@dataclass
class MonitorReport:
    """Component -> monitor state report (multicast, best-effort)."""

    component: str
    kind: str
    sent_at: float
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class WorkEnvelope:
    """One request handed to a worker stub.

    ``reply`` is succeeded with the worker's result Content or failed
    with the worker's error; the sender guards it with a timeout (stale
    hints may route to a dead worker — "the request will time out and
    another worker will be chosen").
    """

    request_id: int
    tacc_request: Any
    reply: Any
    submitted_at: float
    input_bytes: int
    expected_cost_s: float = 0.0
    #: absolute deadline propagated from the dispatching front end;
    #: ``None`` means unbounded.  Stages past the deadline may shed the
    #: request — the client has already fallen back.
    deadline_at: Optional[float] = None
    #: causal trace context (a repro.obs Span) threaded across the SAN
    #: hop; ``None`` when tracing is off or the request is unsampled.
    trace: Optional[Any] = None
    #: request priority class ("interactive" or "batch"): carried so
    #: downstream stages can favour interactive work under overload.
    priority: str = "interactive"
    #: set by the receiving stub when the envelope joins its queue, so
    #: the service loop can close the queueing span.
    enqueued_at: Optional[float] = None
