"""The front end: the SNS's interface to the outside world.

"Front Ends provide the interface to the SNS as seen by the outside
world ... They 'shepherd' incoming requests by matching them up with the
appropriate user profile from the customization database, and queueing
them for service by one or more workers" (Section 2.1).  The front end
owns all control flow — workers stay simple — so "the behavior of the
service as a whole [is] defined almost entirely in the front end"; the
service-specific part is delegated to a *service logic* object with a
``handle(frontend, record)`` process generator (the Service layer).

Infrastructure modelled here, per the paper's measurements:

* a **thread pool** (~400 threads in production) bounding concurrent
  requests;
* a per-request **connection overhead** through the front end's network
  stack — the serial resource that tops a front end out near 70
  requests/second on 100 Mb/s Ethernet (Section 4.6, footnote 5: "TCP
  connection setup and processing overhead is the dominating factor");
* byte accounting on the front end's **access link**, so response
  traffic can genuinely saturate a slow segment;
* an embedded :class:`~repro.core.manager_stub.ManagerStub`, plus the
  process-peer duty: "The front end detects and restarts a crashed
  manager."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.manager_stub import ManagerStub
from repro.core.messages import (
    BEACON_GROUP,
    REPORT_BYTES,
    ManagerBeacon,
    RegisterFrontEnd,
)
from repro.sim.cluster import Cluster
from repro.sim.network import Link
from repro.sim.node import Node
from repro.sim.transport import Channel, ChannelClosed


@dataclass
class Response:
    """What the front end hands back to a client."""

    status: str                 # "ok" | "fallback" | "degraded" | "error"
    path: str                   # e.g. "cache-hit", "distilled", "original"
    content: Any = None
    size_bytes: int = 0
    detail: str = ""
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status != "error"


class FrontEnd(Component):
    """HTTP interface + request shepherd + process peer of the manager."""

    kind = "frontend"

    def __init__(
        self,
        cluster: Cluster,
        node: Node,
        name: str,
        config: SNSConfig,
        service: Any,
        fabric: Any,
        access_link: Optional[Link] = None,
    ) -> None:
        super().__init__(cluster, node, name)
        self.config = config
        self.service = service
        self.fabric = fabric
        self.access_link = access_link
        self.stub = ManagerStub(
            cluster, config, name,
            cluster.streams.stream(f"lottery:{name}"), node=node)
        # the kernel/TCP serial resource: capacity 1/overhead requests/s
        self.netstack = Link(
            cluster.env, f"{name}.netstack",
            bandwidth_bps=1.0 / config.frontend_connection_overhead_s,
            latency_s=0.0)
        self.threads = cluster.env.queue()
        for index in range(config.frontend_threads):
            self.threads.put_nowait(index)
        self._manager_endpoint = None
        #: the service span of the request currently *starting* its
        #: handle() generator; service logics read it before their first
        #: yield (safe: generator start-up is atomic in the cooperative
        #: kernel).  None whenever tracing is off or unsampled.
        self.current_trace = None
        #: brownout controller (repro.degrade), wired by the fabric;
        #: None = no degradation ladder on this front end.
        self.degradation = None
        #: hysteresis state for _should_shed: True while a shedding
        #: episode is in progress (admission_exit_backlog_s mode).
        self._shedding = False
        self._shed_rng = cluster.streams.stream(f"degrade:shed:{name}")
        # counters
        self.requests_received = 0
        self.responses_sent = 0
        self.fallbacks = 0
        self.errors = 0
        self.shed = 0
        #: degraded (reduced-harvest) replies: answered, but below full
        #: fidelity/freshness — the BASE trade, counted apart from
        #: fallbacks and errors.
        self.degraded = 0
        #: sheds by reason, under the degradation ladder's top rungs.
        self.shed_priority = 0
        self.shed_deadline = 0

    # -- client entry ------------------------------------------------------------

    def submit(self, record: Any):
        """Accept one client request; returns the reply event.

        A dead front end returns an event that never fires — clients
        (or their client-side balancing script) time out and try another
        front end.
        """
        reply = self.env.event()
        if not self.alive:
            return reply
        self.requests_received += 1
        # skip the ingress-span machinery entirely when tracing is off:
        # submit() runs once per request, so the guard lives here
        span = self._ingress_span() if self.env.tracer is not None else None
        if self._should_shed():
            # load-shedding admission control: a fast "busy" answer
            # costs nothing, while queueing toward certain timeout
            # burns a thread and netstack time better spent on
            # requests that can still meet their deadline
            self.shed += 1
            self.errors += 1
            if span is not None:
                span.annotate(shed=True).finish()
            reply.succeed(Response(
                status="error", path="shed",
                detail="admission control: front end saturated"))
            return reply
        shed_path = self._ladder_shed(record)
        if shed_path is not None:
            self.shed += 1
            self.errors += 1
            if span is not None:
                span.annotate(shed=True, shed_path=shed_path).finish()
            reply.succeed(Response(
                status="error", path=shed_path,
                detail="admission control: degraded service"))
            return reply
        self.spawn(self._handle(record, reply, span))
        return reply

    def _ingress_span(self):
        """The front end's span for a newly accepted request.

        Consumes a synchronous hand-off from an instrumented client
        (the playback engine) when one is pending; otherwise — tracer
        installed but nobody upstream opened a root — this front end is
        the ingress and opens the root itself.  Returns None when
        tracing is off or this request is unsampled.
        """
        tracer = self.env.tracer
        if tracer is None:
            return None
        pending = tracer.take_pending()
        if tracer.was_handed_off(pending):
            if pending is None:
                return None  # sampled out upstream
            return pending.child("frontend", "service",
                                 component=self.name)
        return tracer.open_trace("frontend", category="service",
                                 component=self.name)

    def _should_shed(self) -> bool:
        max_backlog = self.config.admission_max_backlog_s
        if max_backlog is None:
            return False
        exit_backlog = self.config.admission_exit_backlog_s
        if exit_backlog is None:
            # legacy single-threshold switch: flaps around the
            # threshold as each shed relieves exactly the backlog that
            # caused it
            if self.threads.length > 0:
                return False  # a thread is free: admit
            return self.netstack.backlog_s > max_backlog
        # hysteresis: enter shedding above max_backlog, keep shedding
        # until the backlog falls to the (lower) exit threshold
        if self._shedding:
            if self.netstack.backlog_s <= exit_backlog:
                self._shedding = False
        elif self.threads.length == 0 \
                and self.netstack.backlog_s > max_backlog:
            self._shedding = True
        return self._shedding

    def _ladder_shed(self, record: Any):
        """Top-rung admission control (degradation levels 4 and 5);
        returns the shed path name, or None to admit."""
        controller = self.degradation
        if controller is None:
            return None
        if controller.priority_admission_active \
                and getattr(record, "priority",
                            "interactive") != "interactive":
            self.shed_priority += 1
            return "shed-priority"
        if controller.deadline_shed_active:
            # can this request still meet its deadline?  Estimate its
            # wait as the netstack backlog plus half the deadline when
            # no thread is free (thread wait is unobservable up front);
            # shed probabilistically as the estimate crosses half the
            # deadline, so the cutoff has no hard edge to oscillate on.
            deadline = self.config.degrade_deadline_s
            estimate = self.netstack.backlog_s
            if self.threads.length == 0:
                estimate += deadline / 2.0
            excess = estimate - deadline / 2.0
            if excess > 0:
                probability = min(1.0, excess / deadline)
                if self._shed_rng.random() < probability:
                    self.shed_deadline += 1
                    return "shed-deadline"
        return None

    def _handle(self, record: Any, reply, span=None):
        # connection setup through the kernel: the per-request serial cost
        mark = self.env.now
        yield self.env.timeout(self.netstack.reserve(1.0))
        if self.access_link is not None:
            yield self.env.timeout(self.access_link.reserve(
                self.config.request_overhead_bytes))
        if span is not None:
            span.record("netstack", "network", mark)
            mark = self.env.now
        thread = yield self.threads.get()
        if span is not None:
            span.record("thread-wait", "queueing", mark)
            service_span = span.child("service", "service")
        else:
            service_span = None
        # always (re)set — an unsampled request must not start its
        # handle() generator under a stale sampled context
        self.current_trace = service_span
        try:
            response = yield from self.service.handle(self, record)
        except Exception as error:  # service bug: error page, not a crash
            response = Response(status="error", path="exception",
                                detail=f"{type(error).__name__}: {error}")
        finally:
            self.threads.put_nowait(thread)
            self.current_trace = None
        if service_span is not None:
            service_span.finish()
            mark = self.env.now
        if response.status == "fallback":
            self.fallbacks += 1
        elif response.status == "degraded":
            self.degraded += 1
        elif response.status == "error":
            self.errors += 1
        # ship the response back out the access link
        if self.access_link is not None:
            out_bytes = response.size_bytes + \
                self.config.request_overhead_bytes
            yield self.env.timeout(self.access_link.reserve(out_bytes))
        if span is not None:
            if self.access_link is not None:
                span.record("access-link-out", "network", mark,
                            bytes=response.size_bytes)
            if response.annotations:
                span.annotate(**response.annotations)
            span.annotate(status=response.status,
                          path=response.path).finish()
        if self.alive and not reply.triggered:
            self.responses_sent += 1
            reply.succeed(response)

    @property
    def active_requests(self) -> int:
        return self.config.frontend_threads - self.threads.length

    def is_saturated(self) -> bool:
        """The Table 2 'FE Ethernet' saturation signal."""
        if self.netstack.utilization() >= 0.9:
            return True
        return (self.access_link is not None
                and self.access_link.utilization() >= 0.9)

    # -- processes -------------------------------------------------------------------

    def _start_processes(self) -> None:
        self.spawn(self._beacon_listener())
        # Maintenance ticks ride the kernel's coalesced periodic timers:
        # every front end shares one heap event per beacon interval
        # instead of owning a watchdog timeout plus a heartbeat timeout.
        self._watchdog_timer = self.every(
            self.config.beacon_interval_s, self._watchdog_check)
        self.every(self.config.report_interval_s, self._send_heartbeat)
        if self.config.balancing == "distributed":
            self.spawn(self._announcement_listener())

    def _announcement_listener(self):
        """Distributed-balancing mode: consume the workers' own load
        announcements (Section 2.2.2's road not taken)."""
        from repro.core.messages import WORKER_ANNOUNCE_GROUP
        subscription = self.cluster.multicast.group(
            WORKER_ANNOUNCE_GROUP).subscribe(self.name)
        try:
            while True:
                advert = yield subscription.get()
                self.stub.observe_worker_advert(advert)
        finally:
            subscription.cancel()

    def _beacon_listener(self):
        subscription = self.cluster.multicast.group(BEACON_GROUP).subscribe(
            self.name)
        try:
            while True:
                beacon: ManagerBeacon = yield subscription.get()
                is_new_manager = self.stub.observe_beacon(beacon)
                if is_new_manager:
                    yield from self._register_with_manager(beacon)
        finally:
            subscription.cancel()

    def _register_with_manager(self, beacon: ManagerBeacon):
        channel = yield from Channel.connect(
            self.env, self.cluster.network, self.name, beacon.manager_id)
        if not self.alive:
            channel.close()
            return
        registration = RegisterFrontEnd(
            frontend_name=self.name,
            node_name=self.node.name,
            frontend=self,
        )
        if beacon.manager.accept_frontend(registration, channel.b):
            if self._manager_endpoint is not None:
                self._manager_endpoint.channel.close()
            self._manager_endpoint = channel.a
        else:
            channel.close()

    def _send_heartbeat(self) -> None:
        endpoint = self._manager_endpoint
        if endpoint is None:
            return
        try:
            endpoint.send({"heartbeat": self.name,
                           "active": self.active_requests},
                          size_bytes=REPORT_BYTES)
        except ChannelClosed:
            self._manager_endpoint = None

    def _watchdog_check(self) -> None:
        """Process-peer duty: restart the manager when its beacons stop.

        "The front end detects and restarts a crashed manager."
        """
        tolerance_s = (self.config.beacon_loss_tolerance
                       * self.config.beacon_interval_s)
        if self.stub.last_beacon_at is None:
            return  # never heard one; the fabric boots the first
        if self.stub.beacon_age() > tolerance_s:
            self.fabric.restart_manager(requested_by=self.name)
            # give the new manager a chance to start beaconing before
            # checking again (the skipped ticks keep the old cadence:
            # tolerance is a whole number of beacon intervals)
            self._watchdog_timer.defer(tolerance_s)

    # -- crash ------------------------------------------------------------------------------

    def _on_crash(self) -> None:
        if self._manager_endpoint is not None:
            self._manager_endpoint.channel.close()
            self._manager_endpoint = None
