"""The system monitor (Section 3.1.7), minus the Tk canvas.

"Components of the system report state information to the monitor using
a multicast group ... The monitor can page or email the system operator
if a serious error occurs, for example, if it stops receiving reports
from some component."

This monitor records everything it hears — which makes it the data
source for Figure 8's queue-length-over-time series — raises
:class:`Alert` records on component silence, and renders an ASCII status
panel in place of the original Tcl/Tk visualization (the information
content is the same; see DESIGN.md "Out of scope").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.messages import BEACON_GROUP, MONITOR_GROUP, ManagerBeacon
from repro.sim.cluster import Cluster
from repro.sim.node import Node


@dataclass
class Alert:
    """An operator page/email."""

    time: float
    severity: str        # "page" (serious) or "notice"
    component: str
    message: str


@dataclass
class QueueSample:
    """One worker's queue average at one beacon time (Figure 8 data)."""

    time: float
    worker_name: str
    worker_type: str
    queue_avg: float


class Monitor(Component):
    """Listens to everything; alerts on silence; keeps time series."""

    kind = "monitor"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 config: SNSConfig,
                 on_alert: Optional[Callable[[Alert], None]] = None,
                 silence_threshold_s: float = 5.0) -> None:
        super().__init__(cluster, node, name)
        self.config = config
        self.on_alert = on_alert
        self.silence_threshold_s = silence_threshold_s
        self.last_seen: Dict[str, float] = {}
        self._silenced: Dict[str, bool] = {}
        #: components under planned maintenance (hot upgrade): their
        #: silence is expected and must not page the operator.
        self._maintenance: set = set()
        self.alerts: List[Alert] = []
        self.queue_series: List[QueueSample] = []
        self.worker_counts: List[Tuple[float, int]] = []
        self.beacons_heard = 0

    def _start_processes(self) -> None:
        self.spawn(self._beacon_listener())
        self.spawn(self._report_listener())
        self.every(1.0, self._silence_check)

    def _beacon_listener(self):
        subscription = self.cluster.multicast.group(BEACON_GROUP).subscribe(
            self.name)
        try:
            while True:
                beacon: ManagerBeacon = yield subscription.get()
                self.beacons_heard += 1
                self._mark_seen(beacon.manager_id)
                self.worker_counts.append(
                    (self.env.now, len(beacon.adverts)))
                for advert in beacon.adverts.values():
                    self._mark_seen(advert.worker_name)
                    self.queue_series.append(QueueSample(
                        time=self.env.now,
                        worker_name=advert.worker_name,
                        worker_type=advert.worker_type,
                        queue_avg=advert.queue_avg,
                    ))
        finally:
            subscription.cancel()

    def _report_listener(self):
        subscription = self.cluster.multicast.group(MONITOR_GROUP).subscribe(
            self.name)
        try:
            while True:
                report = yield subscription.get()
                self._mark_seen(report.component)
        finally:
            subscription.cancel()

    def _mark_seen(self, component: str) -> None:
        self.last_seen[component] = self.env.now
        if self._silenced.pop(component, None):
            self._raise_alert("notice", component, "reporting again")

    def set_maintenance(self, component: str, on: bool) -> None:
        """Mark a component as deliberately disabled (hot upgrade,
        Section 2.1); suppresses silence pages until cleared."""
        if on:
            self._maintenance.add(component)
        else:
            self._maintenance.discard(component)
            # restart the silence clock so the component gets the full
            # grace period to come back
            if component in self.last_seen:
                self.last_seen[component] = self.env.now

    def _silence_check(self) -> None:
        for component, seen_at in list(self.last_seen.items()):
            if component in self._maintenance:
                continue
            silent_for = self.env.now - seen_at
            if silent_for > self.silence_threshold_s and \
                    not self._silenced.get(component):
                self._silenced[component] = True
                self._raise_alert(
                    "page", component,
                    f"no reports for {silent_for:.1f}s")

    def _raise_alert(self, severity: str, component: str,
                     message: str) -> None:
        alert = Alert(self.env.now, severity, component, message)
        self.alerts.append(alert)
        if self.on_alert is not None:
            self.on_alert(alert)

    # -- queries -----------------------------------------------------------------

    def pages(self) -> List[Alert]:
        return [alert for alert in self.alerts if alert.severity == "page"]

    def queue_series_for(self, worker_name: str) -> List[Tuple[float, float]]:
        return [(sample.time, sample.queue_avg)
                for sample in self.queue_series
                if sample.worker_name == worker_name]

    def worker_names(self) -> List[str]:
        return sorted({sample.worker_name for sample in self.queue_series})

    def render(self) -> str:
        """ASCII status panel (the Tk display's information content)."""
        lines = [f"=== SNS monitor @ t={self.env.now:.1f}s ==="]
        for component in sorted(self.last_seen):
            age = self.env.now - self.last_seen[component]
            if component in self._maintenance:
                marker = "mm"  # planned maintenance (hot upgrade)
            elif self._silenced.get(component):
                marker = "!!"
            else:
                marker = "ok"
            lines.append(f"  [{marker}] {component:<28} "
                         f"last seen {age:5.1f}s ago")
        lines.append(f"  alerts: {len(self.pages())} pages, "
                     f"{len(self.alerts)} total")
        return "\n".join(lines)
