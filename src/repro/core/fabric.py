"""The SNS fabric: assembly, naming, and restart factories.

The fabric is the deployment glue the paper leaves implicit: it knows how
to create component *processes* (manager, front ends, workers, monitor)
on nodes, which is what the process-peer mechanisms invoke when they
restart a crashed peer.  It also implements the client side: the
"client-side JavaScript" (Section 3.1.2) that balances requests across
front ends and masks transient front end failures is
:meth:`SNSFabric.submit`'s round-robin over live front ends.

The fabric itself holds no protocol state — all coordination remains
soft state inside the components — it is only a factory plus population
bookkeeping for experiments to inspect.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.core.config import SNSConfig
from repro.core.frontend import FrontEnd
from repro.core.manager import Manager, SPAWN_DELAY_S
from repro.core.monitor import Monitor
from repro.core.worker_stub import WorkerStub
from repro.sim.cluster import Cluster
from repro.sim.network import MBPS
from repro.sim.node import Node
from repro.tacc.registry import WorkerRegistry


class FabricError(Exception):
    """Assembly errors: no nodes, unknown types, double boot."""


class SNSFabric:
    """Factories + population bookkeeping for one SNS installation."""

    def __init__(
        self,
        cluster: Cluster,
        registry: WorkerRegistry,
        config: SNSConfig,
        service: Any,
        execute_real: bool = False,
        frontend_link_bandwidth_bps: float = 100 * MBPS,
        manager_backend: str = "soft",
    ) -> None:
        if manager_backend not in ("soft", "consensus"):
            raise FabricError(
                f"unknown manager backend {manager_backend!r}")
        self.cluster = cluster
        self.registry = registry
        self.config = config.validate()
        self.service = service
        self.execute_real = execute_real
        self.frontend_link_bandwidth_bps = frontend_link_bandwidth_bps
        #: "soft" = the paper's single soft-state manager; "consensus" =
        #: three Paxos-replicated manager replicas with a leader lease.
        self.manager_backend = manager_backend

        self.manager: Optional[Manager] = None
        #: consensus backend: the replica group (``manager`` then tracks
        #: whichever replica currently leads).
        self.manager_group: Optional[Any] = None
        #: soft backend: managers deposed for being alive but
        #: SAN-partitioned away from their peers — they keep running
        #: (and beaconing a stale view) until they heal and hear their
        #: successor, which is exactly the split-brain the consensus
        #: backend exists to rule out.
        self.deposed_managers: List[Manager] = []
        #: hot standby when the manager runs in process-pair mode.
        self.secondary: Optional[Any] = None
        self.monitor: Optional[Monitor] = None
        self.frontends: Dict[str, FrontEnd] = {}
        self.workers: Dict[str, WorkerStub] = {}
        self._incarnation = itertools.count(1)
        self._worker_seq: Dict[str, itertools.count] = {}
        self._frontend_seq = itertools.count()
        self._manager_restart_pending = False
        self._client_rr = 0
        self.manager_restarts = 0
        #: process-peer front-end restarts executed (the manager's side
        #: of "restarts it on another node"), mirroring manager_restarts.
        self.frontend_restarts = 0
        #: self-healing supervision layer (repro.recovery); opt-in.
        self.supervisor: Optional[Any] = None
        #: profile storage, when the deployment carries one: the store
        #: facade the service reads, and — for the dstore backend — the
        #: BrickCluster behind it (chaos and supervision reach bricks
        #: through here).
        self.profile_store: Optional[Any] = None
        self.profile_bricks: Optional[Any] = None
        #: brownout controller (repro.degrade); opt-in via
        #: :meth:`start_degradation`.
        self.degradation: Optional[Any] = None

    # -- placement helpers ---------------------------------------------------

    def _place(self, node: Optional[Node]) -> Node:
        if node is not None:
            if not node.up:
                raise FabricError(f"node {node.name} is down")
            return node
        free = self.cluster.free_node()
        return free if free is not None else \
            self.cluster.least_loaded_node()

    # -- manager ------------------------------------------------------------------

    def start_manager(self, node: Optional[Node] = None,
                      process_pair: bool = False) -> Manager:
        """Start the manager — soft-state-only (the paper's final
        design) or with a process-pair hot standby (the prototype design
        of Section 3.1.3, kept for the ablation)."""
        if self.manager_backend == "consensus":
            raise FabricError(
                "consensus backend: use start_manager_group()")
        if self.manager is not None and self.manager.alive:
            raise FabricError("a manager is already running")
        node = self._place(node)
        incarnation = next(self._incarnation)
        if process_pair:
            from repro.core.process_pair import MirroredManager
            manager = MirroredManager(
                self.cluster, node, f"manager.{incarnation}",
                self.config, self, incarnation)
        else:
            manager = Manager(self.cluster, node,
                              f"manager.{incarnation}",
                              self.config, self, incarnation)
        manager.start()
        self.manager = manager
        if process_pair:
            self._start_secondary(manager)
        return manager

    def _start_secondary(self, primary) -> None:
        from repro.core.process_pair import SecondaryManager
        node = self._place(None)
        secondary = SecondaryManager(
            self.cluster, node,
            f"{primary.name}.secondary", self.config, self)
        secondary.start()
        primary.attach_secondary(secondary)
        self.secondary = secondary

    def promote_secondary(self, node: Node, state) -> Manager:
        """Process-pair takeover: a new primary with the mirrored state,
        beaconing immediately; a fresh secondary re-pairs with it."""
        from repro.core.process_pair import seed_manager_state
        if self.manager is not None and self.manager.alive:
            return self.manager  # raced with another recovery path
        self._manager_restart_pending = True
        try:
            manager = self.start_manager(
                node if node.up else None, process_pair=True)
            seed_manager_state(manager, state)
            self.manager_restarts += 1
            return manager
        finally:
            self._manager_restart_pending = False

    def restart_manager(self, requested_by: str = "?") -> bool:
        """Process-peer entry point: a front end noticed beacon silence.

        Idempotent under races — if several front ends notice at once,
        one restart happens ("one of its peers restarts it").
        """
        if self._manager_restart_pending:
            return False
        if self.manager_backend == "consensus":
            # replica elections are the failover mechanism; a front end
            # cannot (and must not) fork a fourth manager
            return False
        if self.manager is not None and self.manager.alive:
            if not self._manager_unreachable_from(requested_by):
                return False
            # the manager is alive but on the far side of a SAN
            # partition: to this front end it is indistinguishable from
            # dead.  Depose it — it keeps running, and keeps beaconing a
            # stale view to anyone who can still hear it — and start a
            # successor on the requester's side.  This *is* split brain;
            # the soft-state design accepts it, the wrong-decision
            # counters measure it.
            self.deposed_managers.append(self.manager)
            self.manager = None
        self._manager_restart_pending = True
        self.manager_restarts += 1
        self.cluster.env.process(self._manager_restart(requested_by))
        return True

    def _manager_unreachable_from(self, requester_name: str) -> bool:
        partitions = self.cluster.network.partitions
        if partitions is None or self.manager is None:
            return False
        requester_node = self.cluster.locate_node(requester_name)
        if requester_node is None:
            return False
        return not partitions.node_reachable(requester_node,
                                             self.manager.node.name)

    def _manager_restart(self, requested_by: str = "?"):
        yield self.cluster.env.timeout(SPAWN_DELAY_S)
        try:
            if self.manager is not None and self.manager.alive:
                return  # a process-pair promotion won the race
            # restart on the old node if it survived, else relocate
            # ("on a different node if necessary")
            requester_node = self.cluster.locate_node(requested_by)
            node = None
            if self.manager is not None and self.manager.node.up:
                node = self.manager.node
                if requester_node is not None and not \
                        self.cluster._placeable(node, requester_node):
                    node = None  # old node is across the partition
            self.manager = None
            if node is None and requester_node is not None:
                node = self.cluster.free_node(
                    reachable_from=requester_node)
                if node is None:
                    node = self.cluster.least_loaded_node(
                        reachable_from=requester_node)
            self.start_manager(node)
        finally:
            self._manager_restart_pending = False

    # -- consensus backend ---------------------------------------------------

    def start_manager_group(self,
                            nodes: Optional[List[Node]] = None) -> Any:
        """Boot the consensus-replicated manager: one replica per node,
        on ``config.consensus_replicas`` distinct nodes.

        SAN partitions are first-class here, so the cluster's partition
        state is installed up front (idempotent, and free when no
        partition is ever declared).
        """
        from repro.consensus.replica import ReplicatedManagerGroup
        if self.manager_backend != "consensus":
            raise FabricError("soft backend: use start_manager()")
        if self.manager_group is not None:
            raise FabricError("a manager group is already running")
        self.cluster.install_partitions()
        count = self.config.consensus_replicas
        if nodes is None:
            nodes = [node for node in self.cluster.dedicated_nodes
                     if node.up][:count]
        if len(nodes) < count:
            raise FabricError(
                f"need {count} up nodes for consensus replicas")
        group = ReplicatedManagerGroup(self.cluster, self.config, self,
                                       nodes)
        group.start()
        self.manager_group = group
        return group

    # -- front ends ------------------------------------------------------------------

    def start_frontend(self, node: Optional[Node] = None,
                       name: Optional[str] = None) -> FrontEnd:
        node = self._place(node)
        if name is None:
            name = f"fe{next(self._frontend_seq)}"
        link_name = f"{name}.eth"
        link = self.cluster.network.access_links.get(link_name)
        if link is None:
            link = self.cluster.add_access_link(
                link_name, self.frontend_link_bandwidth_bps)
        frontend = FrontEnd(self.cluster, node, name, self.config,
                            self.service, self, access_link=link)
        frontend.start()
        self.frontends[name] = frontend
        if self.supervisor is not None and self.supervisor.alive:
            frontend.stub.on_worker_timeout = \
                self.supervisor.note_rpc_timeout
        if self.degradation is not None:
            frontend.degradation = self.degradation
        return frontend

    def restart_frontend(self, name: str, node_name: str) -> None:
        """Process-peer entry point for the manager."""
        self.cluster.env.process(self._frontend_restart(name, node_name))

    def _frontend_restart(self, name: str, node_name: str):
        yield self.cluster.env.timeout(SPAWN_DELAY_S)
        current = self.frontends.get(name)
        if current is not None and current.alive:
            return  # already back (raced restarts)
        node = self.cluster.nodes.get(node_name)
        if node is None or not node.up:
            node = self._place(None)
        self.frontend_restarts += 1
        self.start_frontend(node, name)

    # -- workers -------------------------------------------------------------------------

    def spawn_worker(self, worker_type: str,
                     node: Optional[Node] = None,
                     execute_real: Optional[bool] = None) -> WorkerStub:
        """Create and start one worker process (manager spawn path)."""
        if worker_type not in self.registry:
            raise FabricError(f"unknown worker type {worker_type!r}")
        node = self._place(node)
        sequence = self._worker_seq.setdefault(worker_type,
                                               itertools.count(1))
        name = f"{worker_type}.{next(sequence)}"
        stub = WorkerStub(
            self.cluster, node, name,
            self.registry.create(worker_type), self.config,
            execute_real=self.execute_real if execute_real is None
            else execute_real,
            on_overflow_node=node.overflow,
        )
        stub.start()
        self.workers[name] = stub
        return stub

    def alive_workers(self,
                      worker_type: Optional[str] = None) -> List[WorkerStub]:
        return [
            stub for stub in self.workers.values()
            if stub.alive and (worker_type is None
                               or stub.worker_type == worker_type)
        ]

    def brick_population(self) -> Dict[str, Any]:
        """Current brick incarnations by name (empty without dstore);
        the supervisor probes these alongside workers."""
        if self.profile_bricks is None:
            return {}
        return self.profile_bricks.population()

    # -- monitor ---------------------------------------------------------------------------

    def start_monitor(self, node: Optional[Node] = None,
                      **kwargs) -> Monitor:
        node = self._place(node)
        monitor = Monitor(self.cluster, node, "monitor", self.config,
                          **kwargs)
        monitor.start()
        self.monitor = monitor
        return monitor

    # -- supervision (repro.recovery) ---------------------------------------

    def start_supervisor(self, policy: Any = None, ledger: Any = None,
                         node: Optional[Node] = None) -> Any:
        """Start the gray-failure supervision layer (opt-in).

        Placed on the manager's node by default — like the monitor, the
        supervisor must not consume a free node or worker placement in
        fault-free runs would differ from unsupervised ones.  Wires the
        RPC-timeout detector into every live front end's manager stub
        (and, via :meth:`start_frontend`, every future one).
        """
        from repro.recovery.supervisor import Supervisor
        if self.supervisor is not None and self.supervisor.alive:
            raise FabricError("a supervisor is already running")
        if node is None:
            if self.manager is not None and self.manager.node.up:
                node = self.manager.node
            else:
                node = self._place(None)
        supervisor = Supervisor(self.cluster, node, "supervisor",
                                self.config, self, policy=policy,
                                ledger=ledger)
        supervisor.start()
        self.supervisor = supervisor
        for frontend in self.frontends.values():
            frontend.stub.on_worker_timeout = supervisor.note_rpc_timeout
        return supervisor

    # -- graceful degradation (repro.degrade) --------------------------------

    def start_degradation(self, signals: Any = None) -> Any:
        """Start the brownout controller (opt-in) and wire it into
        every component that reads the ladder: live front ends (and,
        via :meth:`start_frontend`, every future one), the service
        logic, and the profile store (for the relaxed-reads level)."""
        from repro.degrade.controller import DegradationController
        if self.degradation is not None:
            raise FabricError("a degradation controller is already "
                              "running")
        controller = DegradationController(self.cluster, self.config,
                                           self, signals=signals)
        self.degradation = controller
        for frontend in self.frontends.values():
            frontend.degradation = controller
        if hasattr(self.service, "degradation"):
            self.service.degradation = controller
        if self.profile_store is not None \
                and hasattr(self.profile_store, "degradation"):
            self.profile_store.degradation = controller
        controller.start()
        return controller

    # -- client side ------------------------------------------------------------------------

    def alive_frontends(self) -> List[FrontEnd]:
        return [fe for fe in self.frontends.values() if fe.alive]

    def submit(self, record: Any):
        """Client entry: round-robin over live front ends.

        This is the paper's client-side balancing ("Client-side
        JavaScript support balances load across multiple front ends and
        masks transient front end failures").
        """
        frontends = self.alive_frontends()
        if not frontends:
            # nobody home: the request hangs until the client times out
            return self.cluster.env.event()
        frontends.sort(key=lambda fe: fe.name)
        self._client_rr = (self._client_rr + 1) % len(frontends)
        return frontends[self._client_rr].submit(record)

    # -- convenience assembly ------------------------------------------------------------------

    def boot(self, n_frontends: int = 1,
             initial_workers: Optional[Dict[str, int]] = None,
             with_monitor: bool = True) -> "SNSFabric":
        """Start a minimal instance: manager + front ends (+ workers).

        Mirrors the Section 4.6 bootstrap: "Begin with a minimal
        instance of the system: one front end, one distiller, the
        manager, and some fixed number of cache partitions."
        """
        if self.manager_backend == "consensus":
            if self.manager_group is None:
                self.start_manager_group()
        elif self.manager is None:
            self.start_manager()
        if with_monitor and self.monitor is None:
            if self.manager is not None:
                monitor_node = self.manager.node
            else:
                # consensus boot: no election has run yet (time has not
                # advanced); co-locate with replica 0, the bootstrap
                # candidate
                monitor_node = self.manager_group.replicas[0].node
            self.start_monitor(node=monitor_node)
        for _ in range(n_frontends):
            self.start_frontend()
        for worker_type, count in (initial_workers or {}).items():
            for _ in range(count):
                self.spawn_worker(worker_type)
        return self
