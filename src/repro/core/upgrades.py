"""Hot upgrades: rolling node maintenance with the service up.

"A natural extension of this capability is to temporarily disable a
subset of nodes and then upgrade them in place ('hot upgrade').  Such
capabilities are essential for network services, whose users have come
to expect 24-hour uptime" (Section 1.2).  The monitor correspondingly
supports "temporary disabling of system components for hot upgrades"
(Section 2.1) — see :meth:`repro.core.monitor.Monitor.set_maintenance`.

The coordinator deliberately does nothing clever: it kills whatever runs
on the node, marks the node down for the upgrade window, and brings the
node back.  Everything else — respawned workers, a restarted manager, a
restarted front end — is the ordinary process-peer machinery doing its
ordinary job.  That is the paper's point: hot upgrade is free once crash
recovery is free.

This is also the mechanism behind HotBot's February 1997 cluster move
("by moving half of the cluster at a time"), demonstrated for the SNS
stack by :meth:`HotUpgrade.rolling`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.fabric import SNSFabric
from repro.sim.node import Node


class HotUpgrade:
    """Drain-upgrade-restore coordinator over an SNS fabric."""

    def __init__(self, fabric: SNSFabric, hold_s: float = 5.0,
                 settle_s: float = 5.0) -> None:
        if hold_s <= 0:
            raise ValueError("hold time must be positive")
        self.fabric = fabric
        self.hold_s = hold_s
        self.settle_s = settle_s
        self.log: List[Tuple[float, str]] = []

    @property
    def env(self):
        return self.fabric.cluster.env

    def _note(self, message: str) -> None:
        self.log.append((self.env.now, message))

    def components_on(self, node: Node) -> List[Any]:
        """Fabric-managed components currently hosted on ``node``."""
        components: List[Any] = [
            stub for stub in self.fabric.workers.values()
            if stub.alive and stub.node is node
        ]
        components.extend(
            frontend for frontend in self.fabric.frontends.values()
            if frontend.alive and frontend.node is node
        )
        manager = self.fabric.manager
        if manager is not None and manager.alive and manager.node is node:
            components.append(manager)
        monitor = self.fabric.monitor
        if monitor is not None and monitor.alive and monitor.node is node:
            components.append(monitor)
        return components

    def upgrade_node(self, node: Node):
        """Process generator: take one node out, upgrade, bring it back.

        The monitor (if any) is told the node's components are in
        maintenance so the operator is not paged about the silence.
        """
        monitor = self.fabric.monitor
        victims = self.components_on(node)
        names = [component.name for component in victims]
        self._note(f"upgrading {node.name}: disabling {names or 'nothing'}")
        if monitor is not None and monitor.alive:
            for name in names:
                monitor.set_maintenance(name, True)
        for component in victims:
            component.kill()
        node.crash()
        yield self.env.timeout(self.hold_s)   # flash the new software
        node.restart()
        self._note(f"{node.name} back in service")
        if monitor is not None and monitor.alive:
            for name in names:
                monitor.set_maintenance(name, False)
        yield self.env.timeout(self.settle_s)  # let peers re-converge

    def rolling(self, nodes: Optional[List[Node]] = None):
        """Process generator: upgrade every given node, one at a time.

        Defaults to all dedicated nodes.  One node at a time is the
        conservative schedule; HotBot's move used half the cluster at a
        time, which callers get by passing two node batches to two
        sequential ``rolling`` calls.
        """
        if nodes is None:
            nodes = list(self.fabric.cluster.dedicated_nodes)
        for node in nodes:
            yield from self.upgrade_node(node)
        self._note(f"rolling upgrade complete: {len(nodes)} nodes")
