"""The manager stub: load-balancing hints cached at each front end.

"The manager stub (at the front end) caches the information in these
beacons and uses lottery scheduling to select a distiller for each
request.  The cached information provides a backup so that the system can
continue to operate (using slightly stale load data) even if the manager
crashes" (Section 3.1.2).

The stub also carries the Section 4.5 oscillation fix: "we changed the
manager stub to keep a running estimate of the change in distiller queue
lengths between successive reports; these estimates were sufficient to
eliminate the oscillations."  :class:`AdvertState` holds that estimate —
a per-worker queue slope extrapolated between beacons, plus a count of
requests this front end itself dispatched since the last report.  Both
corrections are gated by ``config.estimate_queue_deltas`` so the
benchmark suite can reproduce the oscillation as an ablation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.balance import build_policy, request_key
from repro.core.config import SNSConfig
from repro.core.messages import ManagerBeacon, WorkEnvelope, WorkerAdvert
from repro.sim.cluster import Cluster
from repro.sim.rng import Stream
from repro.tacc.worker import WorkerError


class DispatchError(Exception):
    """No worker could serve the request within the dispatch budget.

    The front end catches this and falls back in a service-specific way
    (TranSend returns the original content — BASE approximate answers).
    """


class AdvertState:
    """The stub's (stale) view of one worker, with delta estimation."""

    def __init__(self, advert: WorkerAdvert, now: float) -> None:
        self.advert = advert
        self.queue_avg = advert.queue_avg
        self.received_at = now
        self.prev_queue_avg: Optional[float] = None
        self.prev_received_at: Optional[float] = None
        self.sent_since_report = 0

    def refresh(self, advert: WorkerAdvert, now: float) -> None:
        if advert.last_report_at != self.advert.last_report_at:
            # a genuinely newer load sample
            self.prev_queue_avg = self.queue_avg
            self.prev_received_at = self.received_at
            self.queue_avg = advert.queue_avg
            self.received_at = now
            self.sent_since_report = 0
        self.advert = advert

    def effective_queue(self, now: float, estimate_deltas: bool) -> float:
        """The queue length the lottery should believe right now."""
        value = self.queue_avg
        if estimate_deltas:
            if (self.prev_received_at is not None
                    and self.received_at > self.prev_received_at):
                slope = ((self.queue_avg - self.prev_queue_avg)
                         / (self.received_at - self.prev_received_at))
                value += slope * (now - self.received_at)
            value += self.sent_since_report
        return max(0.0, value)


class ManagerStub:
    """Beacon cache + pluggable worker selection + dispatch engine.

    Selection is delegated to a :mod:`repro.balance` policy
    (``config.routing_policy``); the default reproduces the paper's
    lottery scheduling exactly.
    """

    def __init__(self, cluster: Cluster, config: SNSConfig, owner_name: str,
                 rng: Stream, node: Optional[Any] = None) -> None:
        self.cluster = cluster
        self.config = config
        self.owner_name = owner_name
        #: the node hosting the owning front end, when known: lets the
        #: stub notice that a hint or the manager itself sits on the far
        #: side of a SAN partition.
        self.node = node
        self.rng = rng
        #: dedicated stream for retry-backoff jitter: deterministic per
        #: seed+owner, and drawing from it never perturbs the lottery.
        self.backoff_rng = cluster.streams.stream(
            f"backoff:{owner_name}")
        #: pluggable worker-selection policy (repro.balance).  The
        #: default, "lottery", reproduces the paper's lottery draw
        #: byte-for-byte; every policy draws only from ``self.rng`` (or
        #: nothing), so the stream discipline is unchanged.
        self.policy = build_policy(config.routing_policy, config,
                                   self.rng)
        #: retry budget (repro.degrade.guards.RetryBudget): retries
        #: capped to a fraction of fresh requests; ``None`` = the legacy
        #: unlimited-retry behaviour.
        self.retry_budget: Optional[Any] = None
        if config.retry_budget_ratio is not None:
            from repro.degrade.guards import RetryBudget
            self.retry_budget = RetryBudget(config.retry_budget_ratio,
                                            config.retry_budget_cap)
        self.manager: Optional[Any] = None
        self.manager_incarnation: Optional[int] = None
        #: supervision hook: called with the worker name on every
        #: dispatch timeout, so the recovery layer can kill-and-restart
        #: hung workers ("the RPC call times out and the distiller is
        #: restarted", Section 4.5).  None when no supervisor is wired.
        self.on_worker_timeout: Optional[Any] = None
        self.last_beacon_at: Optional[float] = None
        #: absolute time through which the current hints are covered by
        #: a leader lease (consensus beacons only); ``None`` = no bound.
        self.lease_until: Optional[float] = None
        self.adverts: Dict[str, AdvertState] = {}
        self._next_request_id = 0
        # counters
        self.dispatches = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_errors = 0
        self.deadline_expiries = 0
        self.backoff_waits = 0
        #: beacons refused for carrying an incarnation lower than one
        #: already seen (a partitioned-then-healed old manager).
        self.stale_beacons_rejected = 0
        #: dispatches routed on a view staler than the consensus
        #: staleness bound (``consensus_lease_s``).  The soft backend
        #: racks these up during partitions — it has no bound; the
        #: consensus stub stalls instead, so it stays at zero.
        self.wrong_decisions = 0
        #: pick() refusals because the leader lease had lapsed.
        self.lease_stalls = 0
        #: submits that crossed an active SAN partition to a worker the
        #: front end could not actually reach (accounting only; the
        #: dispatch timeout does the recovering).
        self.partition_misroutes = 0
        #: cumulative seconds dispatches spent waiting with no usable
        #: hint, and the longest beacon silence observed (the uniform
        #: failover-latency measure across manager backends).
        self.stall_s = 0.0
        self.beacon_gap_max_s = 0.0

    @property
    def retry_budget_denials(self) -> int:
        return 0 if self.retry_budget is None \
            else self.retry_budget.denials

    # -- beacon intake -----------------------------------------------------------

    def observe_beacon(self, beacon: ManagerBeacon) -> bool:
        """Update caches from a manager beacon; returns True when this is
        a new manager incarnation (the front end must re-register).

        Beacons with an incarnation *lower* than one already seen are
        rejected outright: a manager that was partitioned away and
        healed back keeps beaconing its old incarnation, and letting it
        roll the stub's view back would resurrect dead hints and
        re-register the front end with a deposed manager.
        """
        now = self.cluster.env.now
        if (self.manager_incarnation is not None
                and beacon.incarnation < self.manager_incarnation):
            self.stale_beacons_rejected += 1
            return False
        if self.last_beacon_at is not None:
            self.beacon_gap_max_s = max(self.beacon_gap_max_s,
                                        now - self.last_beacon_at)
        self.last_beacon_at = now
        new_incarnation = beacon.incarnation != self.manager_incarnation
        self.manager = beacon.manager
        self.manager_incarnation = beacon.incarnation
        self.lease_until = beacon.lease_until
        if self.config.balancing == "distributed":
            # balancing state comes from the workers' own announcements;
            # the beacon is only manager discovery here
            return new_incarnation
        # "The manager reports distiller failures to the manager stubs,
        # which update their caches of where distillers are running."
        for name in list(self.adverts):
            if name not in beacon.adverts:
                del self.adverts[name]
                self.policy.on_worker_removed(name)
        for name, advert in beacon.adverts.items():
            if name in self.adverts:
                self.adverts[name].refresh(advert, now)
            else:
                self.adverts[name] = AdvertState(advert, now)
        return new_incarnation

    def observe_worker_advert(self, advert: WorkerAdvert) -> None:
        """Distributed-mode intake: one worker's self-announcement."""
        now = self.cluster.env.now
        name = advert.worker_name
        if name in self.adverts:
            self.adverts[name].refresh(advert, now)
        else:
            self.adverts[name] = AdvertState(advert, now)

    def beacon_age(self) -> float:
        if self.last_beacon_at is None:
            return float("inf")
        return self.cluster.env.now - self.last_beacon_at

    # -- worker selection -----------------------------------------------------------

    def candidates(self, worker_type: str) -> List[AdvertState]:
        if self.config.balancing == "distributed":
            # nobody curates the cache for us: expire silent workers
            deadline = self.cluster.env.now - self.config.worker_timeout_s
            for name in list(self.adverts):
                if self.adverts[name].received_at < deadline:
                    del self.adverts[name]
                    self.policy.on_worker_removed(name)
        return [state for state in self.adverts.values()
                if state.advert.worker_type == worker_type]

    def hints_usable(self, now: float) -> bool:
        """Is the cached view inside its staleness bound?  Soft-state
        beacons carry no bound (always usable, however stale); a
        consensus leader's hints expire with its lease."""
        return self.lease_until is None or now <= self.lease_until

    def pick(self, worker_type: str,
             key: Optional[str] = None) -> Optional[AdvertState]:
        """Select a worker via the configured routing policy (the
        default is the paper's lottery over possibly-stale hints)."""
        now = self.cluster.env.now
        if not self.hints_usable(now):
            # the lease lapsed: routing on these hints would be a
            # minority-view decision, so stall until a live leader
            # beacons again
            self.lease_stalls += 1
            return None
        candidates = self.candidates(worker_type)
        if not candidates:
            return None
        return self.policy.select(candidates, now, key)

    # -- dispatch -------------------------------------------------------------------------

    def _backoff_delay(self, retry_number: int) -> float:
        """Exponential backoff with deterministic jitter for retry n>=1.

        Base doubles (``dispatch_backoff_factor``) per retry up to the
        cap; the jitter draw comes from :attr:`backoff_rng`, so delays
        are reproducible per seed yet desynchronized across front ends
        (no retry storms when a whole lossy window times out at once).
        The cap is applied *after* the jitter multiply: it is a hard
        ceiling on the wait, not on the pre-jitter base (an up-jittered
        delay must never exceed ``dispatch_backoff_cap_s``).
        """
        config = self.config
        delay = (config.dispatch_backoff_base_s
                 * config.dispatch_backoff_factor ** (retry_number - 1))
        jitter = config.dispatch_backoff_jitter
        if jitter > 0 and delay > 0:
            delay *= 1.0 + jitter * (self.backoff_rng.random() - 0.5)
        return min(config.dispatch_backoff_cap_s, delay)

    def dispatch(self, tacc_request: Any, worker_type: str,
                 input_bytes: int, expected_cost_s: float = 0.0,
                 deadline_s: Optional[float] = None,
                 trace: Optional[Any] = None,
                 priority: str = "interactive"):
        """Process generator: route one request to a worker of the type.

        Retries with fresh lottery draws on refusal or timeout, pausing
        for exponentially backed-off, jittered delays between retries;
        asks the manager (spawning on demand) when no hint exists.  The
        whole dispatch respects a per-request deadline (``deadline_s``,
        defaulting to ``config.dispatch_deadline_s`` or the full
        attempts × timeout budget) which is propagated into each
        :class:`WorkEnvelope` so downstream stages can shed expired
        work.  Raises :class:`DispatchError` when the attempt budget or
        the deadline is exhausted, or the worker's own
        :class:`WorkerError` for pathological input (which would fail
        anywhere — no point retrying).
        """
        env = self.cluster.env
        config = self.config
        self.dispatches += 1
        if self.retry_budget is not None:
            self.retry_budget.earn()
        if deadline_s is None:
            deadline_s = config.dispatch_deadline_s
        if deadline_s is None:
            deadline_s = config.dispatch_attempts * \
                config.dispatch_timeout_s
        deadline_at = env.now + deadline_s
        key = (request_key(tacc_request)
               if self.policy.needs_key else None)
        span = None
        if trace is not None:
            span = trace.child("dispatch", "queueing",
                               component=self.owner_name)
            span.annotate(worker_type=worker_type)
        try:
            for attempt in range(config.dispatch_attempts):
                if attempt > 0:
                    if self.retry_budget is not None \
                            and not self.retry_budget.try_spend():
                        # budget exhausted: a retry storm is exactly
                        # what would follow — fail over to the
                        # caller's fallback instead
                        raise DispatchError(
                            f"retry budget exhausted for "
                            f"{worker_type!r}")
                    self.retries += 1
                    backoff = self._backoff_delay(attempt)
                    if backoff > 0:
                        if env.now + backoff >= deadline_at:
                            self.deadline_expiries += 1
                            raise DispatchError(
                                f"deadline exhausted for {worker_type!r}")
                        self.backoff_waits += 1
                        mark = env.now
                        yield env.timeout(backoff)
                        if span is not None:
                            span.record("backoff", "queueing", mark,
                                        attempt=attempt)
                remaining = deadline_at - env.now
                if remaining <= 0:
                    self.deadline_expiries += 1
                    raise DispatchError(
                        f"deadline exhausted for {worker_type!r}")
                state = self.pick(worker_type, key)
                if state is None:
                    state = yield from self._wait_for_worker(
                        worker_type, deadline_at, key)
                    if state is None:
                        raise DispatchError(
                            f"no {worker_type!r} worker available")
                self._next_request_id += 1
                envelope = WorkEnvelope(
                    request_id=self._next_request_id,
                    tacc_request=tacc_request,
                    reply=env.event(),
                    submitted_at=env.now,
                    input_bytes=input_bytes,
                    expected_cost_s=expected_cost_s,
                    deadline_at=deadline_at,
                    trace=span,
                    priority=priority,
                )
                # ship the input across the SAN
                mark = env.now
                yield env.timeout(
                    self.cluster.network.transfer_delay(input_bytes))
                if span is not None:
                    span.record("san-transfer", "network", mark,
                                bytes=input_bytes)
                if deadline_at - env.now <= 0.0:
                    # the SAN transfer ate the last of the deadline: a
                    # zero-budget reply timer would fire instantly and
                    # masquerade as a worker timeout — popping a healthy
                    # worker's advert and telling the supervisor to kill
                    # it.  This is a deadline expiry, nothing more.
                    self.deadline_expiries += 1
                    raise DispatchError(
                        f"deadline exhausted for {worker_type!r}")
                worker_name = state.advert.worker_name
                if not self._account_submit(state):
                    # not partition-blocked: the submit actually arrives
                    if not state.advert.stub.submit(envelope):
                        # queue full: connection refused, try another
                        # worker now
                        self.adverts.pop(worker_name, None)
                        self.policy.on_worker_removed(worker_name)
                        continue
                state.sent_since_report += 1
                self.policy.on_submit(worker_name, env.now)
                timer = env.timeout(max(0.0, min(
                    config.dispatch_timeout_s, deadline_at - env.now)))
                try:
                    outcome = yield env.any_of([envelope.reply, timer])
                except WorkerError as error:
                    self.worker_errors += 1
                    self.policy.on_reply(worker_name, env.now,
                                         env.now - envelope.submitted_at)
                    raise
                if envelope.reply in outcome:
                    self.policy.on_reply(worker_name, env.now,
                                         env.now - envelope.submitted_at)
                    if span is not None:
                        span.annotate(
                            attempts=attempt + 1,
                            worker=worker_name)
                    return outcome[envelope.reply]
                # "if a request is sent to a worker that no longer exists,
                # the request will time out and another worker will be
                # chosen."
                self.timeouts += 1
                self.policy.on_timeout(worker_name, env.now)
                self.adverts.pop(worker_name, None)
                self.policy.on_worker_removed(worker_name)
                if self.on_worker_timeout is not None:
                    self.on_worker_timeout(worker_name)
            raise DispatchError(
                f"dispatch budget exhausted for {worker_type!r}")
        except BaseException as error:
            if span is not None:
                span.annotate(error=type(error).__name__)
            raise
        finally:
            if span is not None:
                span.finish()

    def _account_submit(self, state: AdvertState) -> bool:
        """Classify one imminent submit; True when a SAN partition
        blackholes it (the caller must not deliver — the dispatch
        timeout does the recovering).

        ``wrong_decisions`` counts routing on a view staler than the
        consensus staleness bound — the decision a lease-holding leader
        would never have let happen.  ``partition_misroutes`` counts
        submits that cross an active SAN partition to a worker the front
        end cannot actually reach.
        """
        now = self.cluster.env.now
        if (self.lease_until is None and self.last_beacon_at is not None
                and now - self.last_beacon_at
                > self.config.consensus_lease_s):
            self.wrong_decisions += 1
        partitions = self.cluster.network.partitions
        if (partitions is not None and self.node is not None
                and not partitions.node_reachable(
                    self.node.name, state.advert.node_name)):
            self.partition_misroutes += 1
            return True
        return False

    def _manager_reachable(self, manager: Any) -> bool:
        """Can this front end talk to the manager right now?  Direct
        locate-worker calls must not pretend to cross a partition."""
        partitions = self.cluster.network.partitions
        if partitions is None or self.node is None:
            return True
        manager_node = getattr(manager, "node", None)
        if manager_node is None:
            return True
        return partitions.node_reachable(self.node.name,
                                         manager_node.name)

    def _wait_for_worker(self, worker_type: str,
                         deadline_at: Optional[float] = None,
                         key: Optional[str] = None):
        """No cached hint: ask the manager (triggering an on-demand
        spawn) and poll until an advert appears or the budget runs out.

        Each poll sleep is clamped to the remaining budget: a full
        ``beacon_interval_s`` step from just inside the deadline would
        overshoot it by up to one interval, silently stretching the
        per-dispatch deadline the caller was promised.
        """
        env = self.cluster.env
        started_at = env.now
        deadline = env.now + self.config.dispatch_timeout_s
        if deadline_at is not None:
            deadline = min(deadline, deadline_at)
        try:
            while env.now < deadline:
                manager = self.manager
                if manager is not None \
                        and self._manager_reachable(manager):
                    advert = manager.request_worker(worker_type)
                    if advert is not None:
                        now = env.now
                        name = advert.worker_name
                        if name in self.adverts:
                            self.adverts[name].refresh(advert, now)
                        else:
                            self.adverts[name] = AdvertState(advert, now)
                        return self.adverts[name]
                yield env.timeout(min(self.config.beacon_interval_s,
                                      deadline - env.now))
                state = self.pick(worker_type, key)
                if state is not None:
                    return state
            return None
        finally:
            self.stall_s += env.now - started_at
