"""The SNS layer: the paper's primary contribution.

"SNS: Scalable Network Service support — incremental and absolute
scalability, worker load balancing and overflow management, front-end
availability, fault tolerance mechanisms, system monitoring and logging"
(Figure 2).

Assembly order for a new service (see ``examples/``):

1. build a :class:`~repro.sim.cluster.Cluster`;
2. register worker types in a
   :class:`~repro.tacc.registry.WorkerRegistry`;
3. write the service logic (an object with a
   ``handle(frontend, record)`` process generator returning a
   :class:`~repro.core.frontend.Response`);
4. wire them with an :class:`~repro.core.fabric.SNSFabric` and
   ``boot()``.

Scalability, load balancing, fault tolerance, bursts, and monitoring
come from this layer; the service author writes only workers and
dispatch logic.
"""

from repro.core.config import SNSConfig
from repro.core.component import Component
from repro.core.fabric import FabricError, SNSFabric
from repro.core.frontend import FrontEnd, Response
from repro.core.manager import Manager
from repro.core.manager_stub import DispatchError, ManagerStub
from repro.core.monitor import Alert, Monitor
from repro.core.upgrades import HotUpgrade
from repro.core.worker_stub import WorkerStub
from repro.core.messages import (
    BEACON_GROUP,
    MONITOR_GROUP,
    LoadReport,
    ManagerBeacon,
    MonitorReport,
    WorkEnvelope,
    WorkerAdvert,
)

__all__ = [
    "Alert",
    "BEACON_GROUP",
    "Component",
    "DispatchError",
    "FabricError",
    "FrontEnd",
    "HotUpgrade",
    "LoadReport",
    "MONITOR_GROUP",
    "Manager",
    "ManagerBeacon",
    "ManagerStub",
    "Monitor",
    "MonitorReport",
    "Response",
    "SNSConfig",
    "SNSFabric",
    "WorkEnvelope",
    "WorkerAdvert",
    "WorkerStub",
]
