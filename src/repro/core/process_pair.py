"""Process-pair fault tolerance for the manager: the road not taken.

"In the original prototype for the manager, information about distillers
was kept as hard state ... Resilience against crashes was via
process-pair fault tolerance, as in [Tandem]: the primary manager
process was mirrored by a secondary whose role was to maintain a current
copy of the primary's state, and take over the primary's tasks if it
detects that the primary has failed.  In this scenario, crash recovery
is seamless, since all state in the secondary process is up-to-date.

"However, by moving entirely to BASE semantics, we were able to simplify
the manager greatly and increase our confidence in its correctness."
(Section 3.1.3)

This module implements the discarded design so the trade can be
*measured* (see ``benchmarks/test_bench_processpair.py``): a
:class:`SecondaryManager` mirrors the primary's worker table from
per-beacon state snapshots, treats those snapshots as heartbeats, and on
primary silence promotes itself — a new manager that starts beaconing
immediately *with the mirrored adverts*, so front ends never lose their
hints.  The costs are exactly the ones the paper cites: a continuous
mirroring message stream, a second dedicated process, and more moving
parts in the recovery path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.manager import Manager, WorkerInfo
from repro.core.messages import RegisterWorker, WorkerAdvert
from repro.sim.cluster import Cluster
from repro.sim.node import Node

#: bytes per mirrored snapshot: header + per-worker entry.
MIRROR_HEADER_BYTES = 96
MIRROR_ENTRY_BYTES = 64


class MirroredManager(Manager):
    """A manager that ships a state snapshot to its secondary every
    beacon period (hard-state mirroring over the SAN)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.secondary: Optional["SecondaryManager"] = None
        self.mirror_messages = 0
        self.mirror_bytes = 0

    def attach_secondary(self, secondary: "SecondaryManager") -> None:
        self.secondary = secondary

    def _publish_beacon(self) -> None:
        # interleave mirroring with the normal beacon cadence: every
        # tick after the first, ship the snapshot just before the new
        # beacon goes out (the order the old wrapped generator produced)
        if self.beacons_sent > 0:
            self._mirror_to_secondary()
        super()._publish_beacon()

    def _mirror_to_secondary(self) -> None:
        secondary = self.secondary
        if secondary is None or not secondary.alive or not self.alive:
            return
        snapshot = self._build_adverts()
        size = (MIRROR_HEADER_BYTES
                + MIRROR_ENTRY_BYTES * len(snapshot))
        delay = self.cluster.network.transfer_delay(size)
        self.mirror_messages += 1
        self.mirror_bytes += size
        self.spawn(self._deliver_mirror(secondary, snapshot, delay))

    def _deliver_mirror(self, secondary, snapshot, delay):
        yield self.env.timeout(delay)
        if secondary.alive:
            secondary.receive_snapshot(snapshot, self.env.now)


class SecondaryManager(Component):
    """The hot standby: mirrors state, detects silence, takes over."""

    kind = "manager-secondary"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 config: SNSConfig, fabric: Any,
                 silence_intervals: int = 3) -> None:
        super().__init__(cluster, node, name)
        self.config = config
        self.fabric = fabric
        self.silence_intervals = silence_intervals
        self.mirror: Dict[str, WorkerAdvert] = {}
        self.last_snapshot_at: Optional[float] = None
        self.snapshots_received = 0
        self.promoted = False

    def receive_snapshot(self, snapshot: Dict[str, WorkerAdvert],
                         now: float) -> None:
        if not self.alive:
            return
        self.mirror = dict(snapshot)
        self.last_snapshot_at = now
        self.snapshots_received += 1

    def _start_processes(self) -> None:
        self.every(self.config.beacon_interval_s, self._watch_check)

    def _watch_check(self) -> None:
        interval = self.config.beacon_interval_s
        if self.last_snapshot_at is None:
            return  # primary not up yet
        silence = self.env.now - self.last_snapshot_at
        if silence > self.silence_intervals * interval:
            self._promote()  # kill()s this component: the timer dies too

    def _promote(self) -> None:
        """Take over the primary's duties with the mirrored state."""
        self.promoted = True
        state = dict(self.mirror)
        self.kill()  # this component's life ends; a primary is born
        self.fabric.promote_secondary(self.node, state)


def seed_manager_state(manager: Manager,
                       snapshot: Dict[str, WorkerAdvert]) -> int:
    """Pre-populate a fresh manager with mirrored worker state.

    Seeded entries have no live connection (``endpoint=None``): the
    takeover manager balances on them immediately, and each worker's
    re-registration (triggered by the new incarnation's first beacon)
    swaps in a connected entry.  Until then the timeout detector guards
    against mirrored entries for workers that died with the primary.
    """
    now = manager.env.now
    seeded = 0
    for advert in snapshot.values():
        registration = RegisterWorker(
            worker_name=advert.worker_name,
            worker_type=advert.worker_type,
            node_name=advert.node_name,
            stub=advert.stub,
        )
        info = WorkerInfo(registration, endpoint=None, now=now)
        info.queue_avg = advert.queue_avg
        manager.workers[info.name] = info
        seeded += 1
    return seeded
