"""Base class for SNS components (manager, front ends, worker stubs).

A component is a named simulation process pinned to a node.  Its life
cycle is deliberately crash-oriented: ``kill()`` models SIGKILL — the
main loop is interrupted mid-whatever, channels break, queue contents
evaporate — because the whole point of the SNS design is that peers
recover from exactly that, with no clean-shutdown cooperation from the
victim (Section 3.1.3).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment, Interrupt, PeriodicHandle, Process
from repro.sim.node import Node


class Component:
    """A named, killable process hosted on a cluster node."""

    kind = "component"

    def __init__(self, cluster: Cluster, node: Node, name: str) -> None:
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.node = node
        self.name = name
        self.alive = False
        self.started_at: Optional[float] = None
        self.killed_at: Optional[float] = None
        self._procs: List[Process] = []
        self._timers: List[PeriodicHandle] = []
        self._on_death: List[Callable[["Component"], None]] = []

    # -- life cycle ----------------------------------------------------------

    def start(self) -> "Component":
        if self.alive:
            raise RuntimeError(f"{self.name} already started")
        self.alive = True
        self.started_at = self.env.now
        self.node.attach(self.name)
        self._start_processes()
        return self

    def _start_processes(self) -> None:
        """Subclasses spawn their loops here via :meth:`spawn`."""
        raise NotImplementedError

    def spawn(self, generator) -> Process:
        """Track a sub-process so kill() can interrupt it."""
        if len(self._procs) > 64:
            self._procs = [p for p in self._procs if p.is_alive]
        process = self.env.process(self._guard(generator))
        self._procs.append(process)
        return process

    def _guard(self, generator):
        """Absorb the Interrupt a kill throws so component death never
        crashes the simulation itself."""
        try:
            yield from generator
        except Interrupt:
            pass

    def every(self, period: float, callback: Callable[[], None], *,
              first_delay: Optional[float] = None) -> PeriodicHandle:
        """Register a coalesced periodic callback, cancelled on kill().

        The timer analogue of :meth:`spawn`: maintenance work that used
        to be a ``while True: yield timeout(period)`` process becomes a
        yield-free callback on the environment's shared periodic buckets
        (:meth:`repro.sim.kernel.Environment.periodic`), so N nodes with
        the same report interval cost one heap event per interval
        instead of N.  The callback never runs after the component dies:
        kill() cancels the handle, and a defensive liveness check guards
        the same-tick race where the bucket fires before a kill lands.
        """
        def _tick() -> None:
            if self.alive:
                callback()

        handle = self.env.periodic(period, _tick, first_delay=first_delay)
        self._timers.append(handle)
        return handle

    def kill(self) -> None:
        """Crash the component (SIGKILL semantics)."""
        if not self.alive:
            return
        self.alive = False
        self.killed_at = self.env.now
        self.node.detach(self.name)
        for process in self._procs:
            # A component may kill itself from inside one of its own
            # processes (e.g. a standby promoting itself); that frame
            # simply returns after the kill, so skip interrupting it.
            if process.is_alive and process is not self.env.active_process:
                process.interrupt(f"{self.name} killed")
        self._procs.clear()
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self._on_crash()
        for callback in self._on_death:
            callback(self)

    def _on_crash(self) -> None:
        """Subclasses break channels / drop queues here."""

    def on_death(self, callback: Callable[["Component"], None]) -> None:
        """Register a supervisor-side hook (used by the fabric to track
        populations; *not* a failure detector — components in the system
        detect failures only through broken connections, lost beacons,
        and timeouts)."""
        self._on_death.append(callback)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<{type(self).__name__} {self.name} on {self.node.name} " \
               f"{state}>"
