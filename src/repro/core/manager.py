"""The centralized, fault-tolerant load-balancing manager.

"For internal load balancing, TranSend uses a centralized manager whose
responsibilities include tracking the location of distillers, spawning
new distillers on demand, balancing load across distillers of the same
class, and providing the assurance of fault tolerance and system tuning"
(Section 3.1.2).

Everything the manager knows is **soft state** (Section 3.1.3):

* workers register over a connection they open after hearing the
  manager's multicast beacon; a broken connection *is* the failure
  detector;
* load views are exponentially-weighted moving averages of the stubs'
  periodic queue-length reports; report silence beyond
  ``worker_timeout_s`` is the backup failure detector;
* the beacon the manager multicasts every ``beacon_interval_s`` carries
  its identity, incarnation, and per-worker load hints — everything a
  front end needs, so a freshly restarted manager reconstructs the whole
  picture from re-registrations within a beacon period or two, with no
  crash-recovery protocol at all.

Spawning implements Section 4.5's policy: when a worker class's average
queue length crosses the threshold *H*, spawn a new worker of that class
on an unused node (recruiting the overflow pool when the dedicated pool
is exhausted), then disable spawning for *D* seconds to let the system
stabilize.  Reaping releases workers — overflow nodes first — when load
subsides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.messages import (
    BEACON_BYTES,
    BEACON_GROUP,
    MONITOR_GROUP,
    LoadReport,
    ManagerBeacon,
    MonitorReport,
    RegisterFrontEnd,
    RegisterWorker,
    WorkerAdvert,
)
from repro.sim.cluster import Cluster
from repro.sim.node import Node
from repro.sim.transport import ChannelClosed, Endpoint

#: Seconds to fork+exec+initialize a worker process on a node.
SPAWN_DELAY_S = 1.0


@dataclass
class SpawnFailure:
    """One failed worker spawn, with enough context for chaos reports
    to attribute capacity loss (rather than an anonymous counter)."""

    time: float
    worker_type: str
    node_name: str
    reason: str       # "node-down" | "manager-dead" | exception type
    detail: str = ""

    def __repr__(self) -> str:
        return (f"<SpawnFailure {self.worker_type} on {self.node_name} "
                f"@ {self.time:.2f}s: {self.reason}"
                + (f" ({self.detail})" if self.detail else "") + ">")


class WorkerInfo:
    """Manager-side soft state about one registered worker."""

    def __init__(self, registration: RegisterWorker, endpoint: Endpoint,
                 now: float) -> None:
        self.name = registration.worker_name
        self.worker_type = registration.worker_type
        self.node_name = registration.node_name
        self.stub = registration.stub
        self.endpoint = endpoint
        self.queue_avg = 0.0
        self.last_queue = 0
        self.last_report_at = now
        self.registered_at = now
        self.service_ewma_s = 0.0

    def update(self, report: LoadReport, alpha: float,
               load_metric: str = "queue") -> None:
        value = (report.weighted_load if load_metric == "weighted-cost"
                 else report.queue_length)
        self.queue_avg = alpha * value + (1.0 - alpha) * self.queue_avg
        self.last_queue = report.queue_length
        self.last_report_at = report.sent_at
        # already smoothed at the worker: relay, don't re-smooth
        self.service_ewma_s = report.service_ewma_s


class FrontEndInfo:
    """Manager-side soft state about one registered front end."""

    def __init__(self, registration: RegisterFrontEnd,
                 endpoint: Endpoint, now: float) -> None:
        self.name = registration.frontend_name
        self.node_name = registration.node_name
        self.frontend = registration.frontend
        self.endpoint = endpoint
        self.last_heartbeat_at = now


class Manager(Component):
    """Tracks workers, balances load, spawns/reaps, restarts front ends."""

    kind = "manager"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 config: SNSConfig, fabric: Any, incarnation: int) -> None:
        super().__init__(cluster, node, name)
        self.config = config
        self.fabric = fabric
        self.incarnation = incarnation
        self.workers: Dict[str, WorkerInfo] = {}
        self.frontends: Dict[str, FrontEndInfo] = {}
        self._last_spawn_at: Dict[str, float] = {}
        self._low_load_since: Dict[str, Optional[float]] = {}
        self._spawns_in_flight: Dict[str, int] = {}
        # counters for reporting
        self.beacons_sent = 0
        self.reports_received = 0
        self.spawns = 0
        self.spawn_failures = 0
        self.spawn_failure_log: List[SpawnFailure] = []
        self.reaps = 0
        #: queued requests moved to a peer while draining a reap victim,
        #: and those that could not be (lost to the sender's timeout).
        self.reap_redispatches = 0
        self.reap_drops = 0
        #: names being drained for reaping: their re-registration is
        #: refused (the victim's stub would otherwise re-register the
        #: moment we close its endpoint and undo the reap).
        self._reaping: set = set()
        self.worker_failures_detected = 0
        self.frontend_restarts = 0
        self.self_depositions = 0
        self._beacon_subscription = None

    # -- processes ------------------------------------------------------------

    def _start_processes(self) -> None:
        # Body-first beacon then sleep-first policy: both share the
        # beacon-interval periodic bucket, beacon first — the same
        # within-tick order the two process loops produced.
        self._beacon_group = self.cluster.multicast.group(BEACON_GROUP)
        self._monitor_group = self.cluster.multicast.group(MONITOR_GROUP)
        self.every(self.config.beacon_interval_s, self._publish_beacon,
                   first_delay=0)
        self.every(self.config.beacon_interval_s, self._policy_tick)
        if self.config.manager_self_deposition:
            self.spawn(self._deposition_loop())

    def _deposition_loop(self):
        """Split-brain damage control for the soft-state manager: if a
        beacon with a *higher* incarnation arrives, a successor was
        started while we were unreachable — step down (kill self) rather
        than keep multicasting a stale view.  This is best-effort (the
        beacon has to get through), which is exactly the soft-state
        story; the consensus backend replaces it with leases.
        """
        self._beacon_subscription = self.cluster.multicast.group(
            BEACON_GROUP).subscribe(self.name)
        while True:
            beacon = yield self._beacon_subscription.get()
            if (isinstance(beacon, ManagerBeacon)
                    and beacon.manager is not self
                    and beacon.incarnation > self.incarnation):
                self.self_depositions += 1
                self.kill()
                return

    def _publish_beacon(self) -> None:
        beacon = ManagerBeacon(
            manager_id=self.name,
            incarnation=self.incarnation,
            manager=self,
            sent_at=self.env.now,
            adverts=self._build_adverts(),
        )
        self._beacon_group.publish(
            beacon, size_bytes=BEACON_BYTES, sender=self.name)
        self._monitor_group.publish(MonitorReport(
            component=self.name,
            kind="manager",
            sent_at=self.env.now,
            payload={
                "workers": len(self.workers),
                "frontends": len(self.frontends),
                "incarnation": self.incarnation,
            },
        ), sender=self.name)
        self.beacons_sent += 1

    def _build_adverts(self) -> Dict[str, WorkerAdvert]:
        return {
            info.name: WorkerAdvert(
                worker_name=info.name,
                worker_type=info.worker_type,
                node_name=info.node_name,
                stub=info.stub,
                queue_avg=info.queue_avg,
                last_report_at=info.last_report_at,
                service_ewma_s=info.service_ewma_s,
            )
            for info in self.workers.values()
        }

    def _policy_tick(self) -> None:
        self._expire_silent_workers()
        self._spawn_check()
        self._reap_check()

    # -- registration and report intake -------------------------------------------

    def accept_worker(self, registration: RegisterWorker,
                      endpoint: Endpoint) -> bool:
        """Called (over the network) by a worker stub's register path."""
        if not self.alive or registration.worker_name in self._reaping:
            return False
        info = WorkerInfo(registration, endpoint, self.env.now)
        self.workers[info.name] = info
        self._spawns_in_flight[info.worker_type] = max(
            0, self._spawns_in_flight.get(info.worker_type, 0) - 1)
        self.spawn(self._worker_recv_loop(info))
        return True

    def accept_frontend(self, registration: RegisterFrontEnd,
                        endpoint: Endpoint) -> bool:
        if not self.alive:
            return False
        info = FrontEndInfo(registration, endpoint, self.env.now)
        self.frontends[info.name] = info
        self.spawn(self._frontend_recv_loop(info))
        return True

    def _worker_recv_loop(self, info: WorkerInfo):
        while True:
            try:
                report = yield info.endpoint.recv()
            except ChannelClosed:
                self._worker_died(info)
                return
            if isinstance(report, LoadReport):
                self.reports_received += 1
                info.update(report, self.config.load_ewma_alpha,
                            self.config.load_metric)

    def _frontend_recv_loop(self, info: FrontEndInfo):
        while True:
            try:
                heartbeat = yield info.endpoint.recv()
            except ChannelClosed:
                self._frontend_died(info)
                return
            info.last_heartbeat_at = self.env.now

    # -- failure handling -----------------------------------------------------------

    def _worker_died(self, info: WorkerInfo) -> None:
        """A worker's connection broke: remove it and react to the load
        shift immediately (Figure 8(b): 'The manager immediately reacted
        and started up a new distiller')."""
        if self.workers.get(info.name) is not info:
            return
        del self.workers[info.name]
        self.worker_failures_detected += 1
        if self.alive:
            self._spawn_check()

    def _expire_silent_workers(self) -> None:
        """Timeouts as the backup failure detector (Section 2.2.4)."""
        deadline = self.env.now - self.config.worker_timeout_s
        for info in list(self.workers.values()):
            if info.last_report_at < deadline:
                if info.endpoint is not None:
                    info.endpoint.channel.close()
                if info.name in self.workers:
                    del self.workers[info.name]
                    self.worker_failures_detected += 1

    def _frontend_died(self, info: FrontEndInfo) -> None:
        """Process-peer duty: 'The manager detects and restarts a
        crashed front end.'"""
        if self.frontends.get(info.name) is not info:
            return
        del self.frontends[info.name]
        if self.alive:
            self.frontend_restarts += 1
            self.fabric.restart_frontend(info.name, info.node_name)

    # -- locate / on-demand spawn -----------------------------------------------------

    def workers_of_type(self, worker_type: str) -> List[WorkerInfo]:
        return [info for info in self.workers.values()
                if info.worker_type == worker_type]

    def request_worker(self, worker_type: str) -> Optional[WorkerAdvert]:
        """A manager stub asks for a worker of a type it has no hint for.

        Returns the least-loaded worker, or None after initiating an
        on-demand spawn ("the manager ... locates an appropriate
        distiller, spawning a new one if necessary") — the caller waits
        for a beacon and retries.
        """
        if not self.alive:
            return None
        candidates = self.workers_of_type(worker_type)
        if candidates:
            best = min(candidates, key=lambda info: info.queue_avg)
            return WorkerAdvert(
                worker_name=best.name,
                worker_type=best.worker_type,
                node_name=best.node_name,
                stub=best.stub,
                queue_avg=best.queue_avg,
                last_report_at=best.last_report_at,
                service_ewma_s=best.service_ewma_s,
            )
        if self._spawns_in_flight.get(worker_type, 0) == 0:
            self._spawn_worker(worker_type)
        return None

    # -- spawn / reap policy --------------------------------------------------------------

    def _average_queue(self, worker_type: str) -> Optional[float]:
        infos = self.workers_of_type(worker_type)
        if not infos:
            return None
        return sum(info.queue_avg for info in infos) / len(infos)

    def _known_types(self) -> List[str]:
        return sorted({info.worker_type for info in self.workers.values()})

    def _spawn_check(self) -> None:
        for worker_type in self._known_types():
            average = self._average_queue(worker_type)
            if average is None or average < self.config.spawn_threshold:
                continue
            last = self._last_spawn_at.get(worker_type)
            if last is not None and \
                    self.env.now - last < self.config.spawn_damping_s:
                continue
            if self._spawns_in_flight.get(worker_type, 0) > 0:
                continue
            self._spawn_worker(worker_type)

    def _spawn_worker(self, worker_type: str) -> bool:
        node = self.cluster.free_node(
            include_overflow=self.config.use_overflow_pool,
            reachable_from=self.node.name)
        if node is None:
            node = self._node_with_headroom()
            if node is None:
                return False
        self._last_spawn_at[worker_type] = self.env.now
        self._spawns_in_flight[worker_type] = \
            self._spawns_in_flight.get(worker_type, 0) + 1
        self.spawns += 1
        self.spawn(self._spawn_after_delay(worker_type, node))
        return True

    def _node_with_headroom(self) -> Optional[Node]:
        """Fallback placement when no node is completely free: co-locate
        on the least-loaded up node (but never on the manager's own)."""
        candidates = [
            node for node in self.cluster.dedicated_nodes
            if node.up and node is not self.node
            and self.cluster._placeable(node, self.node.name)
        ]
        if self.config.use_overflow_pool:
            candidates += [
                n for n in self.cluster.overflow_nodes
                if n.up and self.cluster._placeable(n, self.node.name)
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: len(n.components))

    def _spawn_after_delay(self, worker_type: str, node: Node):
        yield self.env.timeout(SPAWN_DELAY_S)
        if not self.alive or not node.up:
            self._spawns_in_flight[worker_type] = max(
                0, self._spawns_in_flight.get(worker_type, 0) - 1)
            self._record_spawn_failure(
                worker_type, node,
                "node-down" if self.alive else "manager-dead")
            return
        try:
            self.fabric.spawn_worker(worker_type, node)
        except Exception as error:
            # exec failure (missing binary, bad node): give up on this
            # attempt; the policy loop will retry if load persists.
            self._spawns_in_flight[worker_type] = max(
                0, self._spawns_in_flight.get(worker_type, 0) - 1)
            self._record_spawn_failure(worker_type, node,
                                       type(error).__name__, str(error))

    def _record_spawn_failure(self, worker_type: str, node: Node,
                              reason: str, detail: str = "") -> None:
        self.spawn_failures += 1
        self.spawn_failure_log.append(SpawnFailure(
            time=self.env.now, worker_type=worker_type,
            node_name=node.name, reason=reason, detail=detail))

    def _reap_check(self) -> None:
        for worker_type in self._known_types():
            infos = self.workers_of_type(worker_type)
            if len(infos) <= self.config.min_workers_per_type:
                self._low_load_since[worker_type] = None
                continue
            average = self._average_queue(worker_type)
            if average is None or average > self.config.reap_threshold:
                self._low_load_since[worker_type] = None
                continue
            since = self._low_load_since.get(worker_type)
            if since is None:
                self._low_load_since[worker_type] = self.env.now
                continue
            if self.env.now - since < self.config.reap_after_s:
                continue
            self._reap_one(infos)
            self._low_load_since[worker_type] = None

    def _reap_one(self, infos: List[WorkerInfo]) -> None:
        """Release the emptiest worker, preferring overflow nodes
        ("Once the burst subsides, the distillers may be reaped").

        Prefers a victim with nothing in flight; a busy victim is taken
        out of rotation immediately but killed only after its accepted
        work has been drained — queued requests are re-dispatched to
        same-type peers rather than silently dropped.
        """
        def preference(info: WorkerInfo):
            node = self.cluster.nodes.get(info.node_name)
            on_overflow = bool(node and node.overflow)
            stub = info.stub
            draining = bool(stub is not None and stub.alive
                            and stub.load > 0)
            return (not on_overflow, draining, info.queue_avg)

        victim = min(infos, key=preference)
        self.reaps += 1
        if victim.endpoint is not None:
            victim.endpoint.channel.close()
        self.workers.pop(victim.name, None)
        stub = victim.stub
        if stub is None or not stub.alive:
            return
        if stub.load == 0:
            stub.kill()
            return
        self._reaping.add(stub.name)
        self.spawn(self._drain_then_kill(stub))

    def _drain_then_kill(self, stub):
        """Move a reap victim's accepted-but-unserved requests to peers,
        wait out its in-service request, then kill it.  Bounded by
        ``config.reap_drain_timeout_s``: anything still stuck after that
        is counted as dropped (the senders' timeouts cover it)."""
        deadline = self.env.now + self.config.reap_drain_timeout_s
        try:
            while self.alive and stub.alive:
                for envelope in stub.drain_queue():
                    self._redispatch(envelope, stub)
                if stub.load == 0:
                    # one more beat: the final result's SAN delivery is
                    # still in flight, and the SIGKILL would tear it down
                    yield self.env.timeout(self.config.report_interval_s)
                    if stub.load == 0:
                        break
                if self.env.now >= deadline:
                    self.reap_drops += stub.load
                    break
                yield self.env.timeout(self.config.report_interval_s)
        finally:
            self._reaping.discard(stub.name)
            if stub.alive:
                stub.kill()

    def _redispatch(self, envelope: Any, victim_stub: Any) -> None:
        """Hand one drained envelope to the least-loaded live peer."""
        peers = sorted(
            (info for info in self.workers.values()
             if info.worker_type == victim_stub.worker_type
             and info.stub is not None and info.stub.alive
             and not info.stub.is_partitioned),
            key=lambda info: (info.queue_avg, info.name))
        for info in peers:
            if info.stub.submit(envelope):
                self.reap_redispatches += 1
                return
        # no peer could take it: put it back for the victim to finish
        # before the drain deadline (or count it lost)
        if not (victim_stub.alive and victim_stub.queue.try_put(envelope)):
            self.reap_drops += 1

    # -- crash ------------------------------------------------------------------------------

    def _on_crash(self) -> None:
        if self._beacon_subscription is not None:
            self._beacon_subscription.cancel()
            self._beacon_subscription = None
        for info in self.workers.values():
            if info.endpoint is not None:
                info.endpoint.channel.close()
        for info in self.frontends.values():
            info.endpoint.channel.close()
        self.workers.clear()
        self.frontends.clear()
