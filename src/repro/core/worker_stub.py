"""The worker stub: the SNS side of every worker process.

"The worker stub hides fault tolerance, load balancing, and
multithreading considerations from the worker code" (Section 2.2.5).
Concretely, the stub:

* accepts and queues requests on behalf of the worker;
* runs the worker over each request, charging the host node's CPU with
  the worker's (noisy) cost model;
* reports its queue length to the manager every ``report_interval_s``
  ("the worker stub ... periodically reports load information to the
  manager");
* discovers the manager by listening to its multicast beacons and
  (re-)registers whenever a new manager incarnation appears — this is
  the soft-state re-registration that makes manager crash recovery free
  (Section 3.1.3);
* reports detectable failures in its own operation: a request the
  worker dies on fails that request only, never the stub ("worker code
  ... can, in fact, crash without taking the system down").
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.messages import (
    BEACON_GROUP,
    REGISTER_BYTES,
    REPORT_BYTES,
    LoadReport,
    ManagerBeacon,
    RegisterWorker,
    WorkEnvelope,
)
from repro.recovery.gray import GrayState
from repro.sim.cluster import Cluster
from repro.sim.kernel import QueueFull
from repro.sim.node import Node, NodeDown
from repro.sim.transport import Channel, ChannelClosed
from repro.tacc.worker import Worker, WorkerError


class WorkerStub(Component):
    """Hosts one stateless worker instance on a node."""

    kind = "worker"

    def __init__(
        self,
        cluster: Cluster,
        node: Node,
        name: str,
        worker: Worker,
        config: SNSConfig,
        execute_real: bool = False,
        on_overflow_node: bool = False,
    ) -> None:
        super().__init__(cluster, node, name)
        self.worker = worker
        self.config = config
        self.execute_real = execute_real
        self.on_overflow_node = on_overflow_node
        self.rng = cluster.streams.stream(f"worker:{name}")
        self.queue = cluster.env.queue(config.worker_queue_capacity)
        #: injectable gray-failure switches (repro.recovery); all-default
        #: for a healthy worker.
        self.gray = GrayState()
        self.busy = False
        self._in_service_cost_s = 0.0
        #: EWMA of wall-clock service time (compute + execute, queue
        #: wait excluded), published in load reports so latency-aware
        #: routing policies have a prior before their own samples.
        self.service_ewma_s = 0.0
        self._manager_endpoint = None
        self._registered_incarnation: Optional[int] = None
        #: highest manager incarnation ever heard: beacons below it come
        #: from a deposed manager (partitioned away, then healed back)
        #: and must not win the worker's registration.
        self._highest_incarnation: int = -1
        self.stale_beacons_ignored = 0
        # counters
        self.served = 0
        self.failed = 0
        self.refused = 0
        self.expired = 0

    @property
    def worker_type(self) -> str:
        return self.worker.worker_type

    @property
    def load(self) -> int:
        """Instantaneous queue length including the in-service request —
        the paper's load metric."""
        return self.queue.length + (1 if self.busy else 0)

    # -- submission (called by manager stubs at front ends) ----------------------

    def submit(self, envelope: WorkEnvelope) -> bool:
        """Accept a request onto the stub's queue.

        Returns False when the queue is full (connection refused).  A
        *dead* stub silently swallows the request — packets to a crashed
        process get no answer, and the sender's timeout is the only
        detector, exactly as in the paper's stale-hint scenario.
        """
        if not self.alive or self.is_partitioned:
            return True  # swallowed; caller's timeout will fire
        if self.gray.zombie:
            # the zombie keeps beaconing load reports (its report loop
            # still runs) but drops every piece of actual work — and its
            # empty queue makes the balancer *prefer* it
            self.gray.dropped += 1
            return True
        if not self.queue.try_put(envelope):
            self.refused += 1
            return False
        if envelope.trace is not None:
            envelope.enqueued_at = self.env.now
        return True

    # -- processes ------------------------------------------------------------------

    def _start_processes(self) -> None:
        self.spawn(self._service_loop())
        self._announce_group = None
        if self.config.balancing == "distributed":
            from repro.core.messages import WORKER_ANNOUNCE_GROUP
            self._announce_group = self.cluster.multicast.group(
                WORKER_ANNOUNCE_GROUP)
        # one coalesced tick per report interval for the whole worker
        # population, not one timeout per stub
        self.every(self.config.report_interval_s, self._send_report)
        self.spawn(self._beacon_listener())

    def _service_loop(self):
        while True:
            envelope: WorkEnvelope = yield self.queue.get()
            if envelope.trace is not None \
                    and envelope.enqueued_at is not None:
                envelope.trace.record(
                    "worker-queue", "queueing", envelope.enqueued_at,
                    component=self.name, depth=self.queue.length)
            if self.gray.hung:
                # hang: the request is accepted and then held forever,
                # the queue backing up behind it; only the dispatcher's
                # RPC timeout (or the supervisor's probe) notices
                self.gray.dropped += 1
                self.busy = True
                yield self.env.event()
            if (self.config.shed_expired_requests
                    and envelope.deadline_at is not None
                    and self.env.now >= envelope.deadline_at):
                # deadline propagation: the dispatching front end has
                # already fallen back, so executing this would only add
                # queueing delay in front of live requests
                self.expired += 1
                if envelope.trace is not None:
                    envelope.trace.annotate(shed_expired=True)
                continue
            self.busy = True
            self._in_service_cost_s = envelope.expected_cost_s or 0.0
            service_span = None
            if envelope.trace is not None:
                service_span = envelope.trace.child(
                    "worker-service", "service", component=self.name)
            service_started_at = self.env.now
            try:
                work = self._work_sample(envelope)
                yield from self.node.compute(work)
                result = self._execute(envelope)
            except WorkerError as error:
                # a *reported* failure: this request only
                self.failed += 1
                if service_span is not None:
                    service_span.annotate(error="WorkerError").finish()
                if not envelope.reply.triggered:
                    envelope.reply.fail(error)
                continue
            except NodeDown:
                return  # host died under us
            except Exception:
                # an *unreported* bug in worker code: the worker process
                # segfaults.  "Worker code ... can, in fact, crash
                # without taking the system down" — the stub dies with
                # it, the manager sees the broken connection, and the
                # SNS layer carries on.  The in-flight request is lost
                # (the sender's timeout covers it).
                self.failed += 1
                self.busy = False
                self.kill()
                return
            finally:
                self.busy = False
            if service_span is not None:
                service_span.finish()
            self.served += 1
            elapsed = self.env.now - service_started_at
            if self.service_ewma_s == 0.0:
                self.service_ewma_s = elapsed
            else:
                alpha = self.config.load_ewma_alpha
                self.service_ewma_s = (alpha * elapsed
                                       + (1.0 - alpha)
                                       * self.service_ewma_s)
            self.spawn(self._deliver(envelope, result))

    def _work_sample(self, envelope: WorkEnvelope) -> float:
        sampler = getattr(self.worker, "work_sample", None)
        if sampler is not None:
            work = sampler(self.rng, envelope.tacc_request)
        else:
            work = self.worker.work_estimate(envelope.tacc_request)
        inflation = self.gray.inflation(self.env.now)
        if inflation != 1.0:
            work *= inflation  # fail-slow / leak service-time inflation
        return work

    def _execute(self, envelope: WorkEnvelope):
        if self.execute_real:
            result = self.worker.run(envelope.tacc_request)
        else:
            result = self.worker.simulate(envelope.tacc_request)
        if self.gray.corrupt:
            result = self.worker.corrupt_result(result)
        return result

    # -- supervision surface (repro.recovery) --------------------------------

    def probe_reply(self) -> Optional[tuple]:
        """Answer an end-to-end health probe, or ``None`` if no answer
        will ever come.

        Returns ``(service_s, nominal_s, output_ok)``: the wall-clock
        service time a probe request would take here right now (gray
        inflation and node speed included), the nominal service time a
        healthy process on this node would take (so the caller can judge
        relative slowness), and whether the output would pass end-to-end
        validation.  Synchronous and side-effect-free by design: probes
        must not enter the real queue (queue depth feeds load reports
        feeds the lottery) nor touch the shared SAN, or supervision
        would perturb fault-free runs.
        """
        if not self.alive or self.is_partitioned or not self.node.up:
            return None
        if self.gray.hung or self.gray.zombie:
            return None  # accepted, then silence
        probe = self.worker.probe_request()
        nominal_s = self.worker.work_estimate(probe) / self.node.speed
        service_s = nominal_s * self.gray.inflation(self.env.now)
        content = probe.inputs[0]
        if self.gray.corrupt:
            content = self.worker.corrupt_result(content)
        return service_s, nominal_s, self.worker.validate_result(content)

    def drain_queue(self) -> list:
        """Remove and return every queued envelope (reap drain: the
        manager re-dispatches these to peers before killing the stub)."""
        return self.queue.clear()

    def _deliver(self, envelope: WorkEnvelope, result) -> None:
        """Ship the result back across the SAN, then complete the reply."""
        mark = self.env.now
        delay = self.cluster.network.transfer_delay(result.size)
        yield self.env.timeout(delay)
        if envelope.trace is not None:
            envelope.trace.record("san-reply", "network", mark,
                                  component=self.name,
                                  bytes=result.size)
        if self.alive and not envelope.reply.triggered:
            envelope.reply.succeed(result)

    def _send_report(self) -> None:
        report = LoadReport(
            worker_name=self.name,
            worker_type=self.worker_type,
            node_name=self.node.name,
            queue_length=self.load,
            weighted_load=self._weighted_load(),
            sent_at=self.env.now,
            service_ewma_s=self.service_ewma_s,
        )
        if self._announce_group is not None and not self.is_partitioned:
            # distributed mode: shout the load at every front end
            from repro.core.messages import WorkerAdvert
            self._announce_group.publish(WorkerAdvert(
                worker_name=self.name,
                worker_type=self.worker_type,
                node_name=self.node.name,
                stub=self,
                queue_avg=float(self.load),
                last_report_at=self.env.now,
                service_ewma_s=self.service_ewma_s,
            ), size_bytes=REPORT_BYTES, sender=self.name)
        endpoint = self._manager_endpoint
        if endpoint is None:
            return
        try:
            endpoint.send(report, size_bytes=REPORT_BYTES)
        except ChannelClosed:
            self._manager_endpoint = None
            self._registered_incarnation = None

    def _weighted_load(self) -> float:
        """Seconds of queued work: each item weighted by its expected
        cost, plus the in-service item (footnote 2 of Section 3.1.2)."""
        total = self._in_service_cost_s if self.busy else 0.0
        # the queue can be tens of thousands deep under overload and this
        # runs every report interval: keep the walk a single C-level sum
        return total + sum(
            envelope.expected_cost_s or 0.0
            for envelope in self.queue._items)

    def partition(self, duration_s: float) -> None:
        """Cut this worker off the SAN for ``duration_s`` (a network
        partition, Section 2.2.4).

        The worker stays alive but unreachable: its manager connection
        breaks (the manager will treat it as lost and may respawn its
        class "on still-visible nodes") and it hears no beacons until
        the partition heals — at which point the ordinary soft-state
        machinery re-registers it as if nothing happened.
        """
        if not self.alive:
            return
        self._partitioned_until = max(
            getattr(self, "_partitioned_until", 0.0),
            self.env.now + duration_s)
        if self._manager_endpoint is not None:
            self._manager_endpoint.channel.close()
            self._manager_endpoint = None
        self._registered_incarnation = None

    @property
    def is_partitioned(self) -> bool:
        return self.env.now < getattr(self, "_partitioned_until", 0.0)

    def _beacon_listener(self):
        subscription = self.cluster.multicast.group(BEACON_GROUP).subscribe(
            self.name)
        try:
            while True:
                beacon: ManagerBeacon = yield subscription.get()
                if self.is_partitioned:
                    continue  # datagrams do not cross the partition
                if beacon.incarnation < self._highest_incarnation:
                    # a lower incarnation means a deposed manager is
                    # still (or again) beaconing: never re-register
                    # backwards
                    self.stale_beacons_ignored += 1
                    continue
                self._highest_incarnation = beacon.incarnation
                if beacon.incarnation == self._registered_incarnation:
                    continue
                yield from self._register(beacon)
        finally:
            subscription.cancel()

    def _register(self, beacon: ManagerBeacon):
        """Open a connection to the (new) manager and register.

        "When a distiller starts up, it registers itself with the
        manager, whose existence it discovers by subscribing to a
        well-known multicast channel."
        """
        channel = yield from Channel.connect(
            self.env, self.cluster.network, self.name, beacon.manager_id)
        if not self.alive:
            channel.close()
            return
        registration = RegisterWorker(
            worker_name=self.name,
            worker_type=self.worker_type,
            node_name=self.node.name,
            stub=self,
        )
        # The connect above paid the network round trip; the synchronous
        # accept stands in for the registration message itself.
        accepted = beacon.manager.accept_worker(registration, channel.b)
        if not accepted:
            channel.close()
            return
        self._manager_endpoint = channel.a
        self._registered_incarnation = beacon.incarnation

    # -- crash ---------------------------------------------------------------------------

    def _on_crash(self) -> None:
        if self._manager_endpoint is not None:
            self._manager_endpoint.channel.close()
            self._manager_endpoint = None
        self._registered_incarnation = None
        self.queue.clear()
        self.busy = False
