"""TranSend user preferences (Section 3.1.4).

"The service interface to TranSend allows each user to register a
series of customization settings."  The preference schema covers the
distillation knobs the distillers understand; the validator enforces it
inside the ACID profile store (the consistency leg of ACID).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.tacc.customization import TransactionError

#: What a user gets before customizing anything (the Figure 3 defaults).
DEFAULT_PREFERENCES: Dict[str, Any] = {
    "quality": 25,          # JPEG quality after distillation
    "scale": 2,             # downscale factor per dimension
    "distill_images": True,
    "munge_html": True,
    "low_pass_radius": 0,
}

_VALIDATORS = {
    "quality": lambda value: isinstance(value, int) and 1 <= value <= 100,
    "scale": lambda value: isinstance(value, int) and 1 <= value <= 16,
    "distill_images": lambda value: isinstance(value, bool),
    "munge_html": lambda value: isinstance(value, bool),
    "low_pass_radius": lambda value: isinstance(value, int)
    and 0 <= value <= 8,
}


def preference_validator(user_id: str, key: str, value: Any) -> None:
    """ProfileStore validator hook for TranSend preferences."""
    check = _VALIDATORS.get(key)
    if check is None:
        return  # services may keep extra keys; TACC does not care
    if not check(value):
        raise TransactionError(
            f"invalid preference {key}={value!r} for user {user_id}")


def effective_preferences(profile: Dict[str, Any]) -> Dict[str, Any]:
    """Defaults overlaid with the user's stored settings."""
    merged = dict(DEFAULT_PREFERENCES)
    merged.update(profile)
    return merged


def distilled_cache_key(url: str, preferences: Dict[str, Any]) -> str:
    """Objects are 'named by the object URL and the user preferences,
    which are used to derive distillation parameters' (Section 3.1.8)."""
    return (f"distilled:{url}|q={preferences.get('quality')}"
            f"|s={preferences.get('scale')}"
            f"|lp={preferences.get('low_pass_radius', 0)}")


def original_cache_key(url: str) -> str:
    return f"original:{url}"
