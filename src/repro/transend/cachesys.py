"""TranSend's cache subsystem: Harvest nodes behind a virtual cache.

Reproduces the three Section 3.1.5 engineering moves:

* several cache nodes are managed "as a single virtual cache, hashing
  the key space across the separate caches and automatically re-hashing
  when cache nodes are added or removed" — routing lives in
  :class:`CacheSubsystem`, storage in per-node LRU caches;
* data can be **injected** (post-transformation content is cached too);
* every request pays a fresh TCP connection — 15 of the 27 ms average
  hit time — because "we did not repair this deficiency".

Cache nodes are SNS components: they queue requests (a node saturates
near 37 requests/second, per Section 4.4), can be crashed, and losing
one loses its partition — which is fine, because "caching in TranSend is
only an optimization.  All cached data can be thrown away at the cost of
performance."
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.cache.latency import HarvestLatencyModel
from repro.cache.lru import LRUCache
from repro.cache.partition import ModHashPartitioner, PartitionError
from repro.core.component import Component
from repro.sim.cluster import Cluster
from repro.sim.node import Node
from repro.tacc.content import Content

#: Injecting (storing) into a cache node is cheaper than a full hit
#: lookup: no response payload to ship back.
STORE_SERVICE_S = 0.005


class CacheNode(Component):
    """One Harvest worker: an LRU store behind a serial request queue."""

    kind = "cache"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 capacity_bytes: int,
                 latency: HarvestLatencyModel) -> None:
        super().__init__(cluster, node, name)
        self.store = LRUCache(capacity_bytes)
        self.latency = latency
        self.queue = cluster.env.queue()
        self.lookups = 0
        self.stores = 0

    def _start_processes(self) -> None:
        self.spawn(self._service_loop())

    def _service_loop(self):
        while True:
            job = yield self.queue.get()
            kind, key, value, reply = job
            if kind == "lookup":
                yield self.env.timeout(self.latency.hit_time())
                self.lookups += 1
                result = self.store.get(key)
                if self.alive and not reply.triggered:
                    reply.succeed(result)
            else:  # store
                yield self.env.timeout(STORE_SERVICE_S)
                self.stores += 1
                content, size = value
                self.store.put(key, content, size)
                if reply is not None and not reply.triggered:
                    reply.succeed(True)

    def lookup(self, key: str):
        """Event completing with the cached value or None."""
        reply = self.env.event()
        if not self.alive:
            return reply  # never fires; caller's timeout handles it
        self.queue.put_nowait(("lookup", key, None, reply))
        return reply

    def inject(self, key: str, content: Any, size_bytes: int) -> None:
        """Fire-and-forget store (the distiller-injection path)."""
        if not self.alive:
            return
        self.queue.put_nowait(("store", key, (content, size_bytes), None))

    def _on_crash(self) -> None:
        self.queue.clear()
        self.store.flush()


class CacheSubsystem:
    """The virtual cache: hashing, membership, and the variant index."""

    def __init__(self, cluster: Cluster, lookup_timeout_s: float = 2.0
                 ) -> None:
        self.cluster = cluster
        self.lookup_timeout_s = lookup_timeout_s
        self.latency = HarvestLatencyModel(
            cluster.streams.stream("cache-latency"))
        self.partitioner = ModHashPartitioner()
        self.nodes: Dict[str, CacheNode] = {}
        #: url -> set of cache keys holding distilled variants of it
        #: (supports the "somewhat different version" approximate answer).
        self.variants: Dict[str, Set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.timeouts = 0

    # -- membership -----------------------------------------------------------

    def add_node(self, node: Node, capacity_bytes: int,
                 name: Optional[str] = None) -> CacheNode:
        name = name or f"cache.{len(self.nodes) + 1}"
        cache_node = CacheNode(self.cluster, node, name, capacity_bytes,
                               self.latency)
        cache_node.start()
        self.nodes[name] = cache_node
        self.partitioner.add_node(name)
        return cache_node

    def remove_node(self, name: str) -> None:
        """Decommission (rehash; stranded entries become unreachable)."""
        self.partitioner.remove_node(name)
        cache_node = self.nodes.pop(name)
        cache_node.kill()

    def node_for(self, key: str) -> Optional[CacheNode]:
        try:
            name = self.partitioner.locate(key)
        except PartitionError:
            return None
        return self.nodes.get(name)

    def _note_crashes(self) -> None:
        """Drop crashed nodes from the hash ring (the manager-stub
        re-hash on membership change)."""
        for name, cache_node in list(self.nodes.items()):
            if not cache_node.alive:
                self.partitioner.remove_node(name)
                del self.nodes[name]

    # -- operations -----------------------------------------------------------------

    def lookup(self, key: str, trace=None):
        """Process generator: fetch ``key`` through its cache node.

        Pays per-request TCP setup plus the node's (queued) hit service
        time.  Returns the cached Content or None.  A crashed node is a
        miss (after a timeout) and gets dropped from the ring.
        """
        env = self.cluster.env
        self._note_crashes()
        cache_node = self.node_for(key)
        if cache_node is None:
            self.misses += 1
            if trace is not None:
                trace.record("cache-lookup", "cache", env.now,
                             hit=False, no_node=True)
            return None
        span = None
        if trace is not None:
            span = trace.child("cache-lookup", "cache",
                               component=cache_node.name)
        reply = cache_node.lookup(key)
        timer = env.timeout(self.lookup_timeout_s)
        outcome = yield env.any_of([reply, timer])
        if reply not in outcome:
            self.timeouts += 1
            self.misses += 1
            self._note_crashes()
            if span is not None:
                span.annotate(hit=False, timeout=True).finish()
            return None
        value = outcome[reply]
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        if span is not None:
            span.annotate(hit=value is not None).finish()
        return value

    def store(self, key: str, content: Content,
              variant_of: Optional[str] = None) -> None:
        """Inject content (original or post-transformation)."""
        self._note_crashes()
        cache_node = self.node_for(key)
        if cache_node is None:
            return
        cache_node.inject(key, content, content.size)
        if variant_of is not None:
            self.variants.setdefault(variant_of, set()).add(key)

    def any_variant(self, url: str, trace=None):
        """Process generator: any cached distilled variant of ``url``.

        The BASE approximate answer: "if the system is too heavily
        loaded to perform distillation, it can return a somewhat
        different version from the cache."
        """
        for key in sorted(self.variants.get(url, ())):
            value = yield from self.lookup(key, trace=trace)
            if value is not None:
                return value
        return None

    # -- stats ------------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def used_bytes(self) -> int:
        return sum(node.store.used_bytes for node in self.nodes.values())
