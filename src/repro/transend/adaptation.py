"""Network-aware distillation tuning (Section 5.4 future work).

"Our past work on adaptation via distillation described how distillation
could be dynamically tuned to match the behavior of the user's network
connection ... we plan to leverage these mechanisms to provide an
adaptive solution for Web access from wireless clients."

Two pieces:

* :class:`BandwidthEstimator` — per-client EWMA of delivered throughput,
  fed by observed (bytes, seconds) response transfers; this is the
  event-notification substrate's job in the original work.
* :class:`AdaptationPolicy` — maps estimated bandwidth to distillation
  parameters: a 14.4 kbit/s modem gets aggressive scaling and low
  quality; a LAN client gets its content untouched.  The policy adjusts
  a user's *effective* preferences; their stored (ACID) profile is never
  mutated — adaptation is BASE all the way down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: modem-bank reality at Berkeley: 14.4 and 28.8 kbit/s modems.
MODEM_14_4_BPS = 14_400 / 8
MODEM_28_8_BPS = 28_800 / 8


class BandwidthEstimator:
    """Per-client EWMA throughput estimates from observed transfers."""

    def __init__(self, alpha: float = 0.3,
                 default_bps: float = MODEM_28_8_BPS) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if default_bps <= 0:
            raise ValueError("default bandwidth must be positive")
        self.alpha = alpha
        self.default_bps = default_bps
        self._estimates: Dict[str, float] = {}
        self.observations = 0

    def observe(self, client_id: str, bytes_sent: int,
                elapsed_s: float) -> None:
        """Record one completed response transfer."""
        if elapsed_s <= 0 or bytes_sent <= 0:
            return
        sample = bytes_sent / elapsed_s
        current = self._estimates.get(client_id)
        if current is None:
            self._estimates[client_id] = sample
        else:
            self._estimates[client_id] = (
                self.alpha * sample + (1 - self.alpha) * current)
        self.observations += 1

    def bandwidth_bps(self, client_id: str) -> float:
        return self._estimates.get(client_id, self.default_bps)

    def known_clients(self) -> List[str]:
        return sorted(self._estimates)


@dataclass(frozen=True)
class AdaptationTier:
    """One rung of the adaptation ladder."""

    max_bandwidth_bps: float
    quality: int
    scale: int
    label: str


#: The ladder, slowest first.  Thresholds in bytes/second.
DEFAULT_TIERS: Tuple[AdaptationTier, ...] = (
    AdaptationTier(MODEM_14_4_BPS * 1.2, quality=5, scale=4,
                   label="14.4k modem"),
    AdaptationTier(MODEM_28_8_BPS * 1.2, quality=15, scale=3,
                   label="28.8k modem"),
    AdaptationTier(16_000.0, quality=25, scale=2, label="ISDN-ish"),
    AdaptationTier(125_000.0, quality=50, scale=2, label="T1 share"),
    AdaptationTier(float("inf"), quality=90, scale=1, label="LAN"),
)


class AdaptationPolicy:
    """Bandwidth -> distillation parameters."""

    def __init__(self, estimator: Optional[BandwidthEstimator] = None,
                 tiers: Tuple[AdaptationTier, ...] = DEFAULT_TIERS
                 ) -> None:
        if not tiers:
            raise ValueError("at least one tier required")
        thresholds = [tier.max_bandwidth_bps for tier in tiers]
        if thresholds != sorted(thresholds):
            raise ValueError("tiers must be ordered by bandwidth")
        if thresholds[-1] != float("inf"):
            raise ValueError("last tier must be unbounded")
        self.estimator = estimator or BandwidthEstimator()
        self.tiers = tiers

    def tier_for(self, bandwidth_bps: float) -> AdaptationTier:
        for tier in self.tiers:
            if bandwidth_bps <= tier.max_bandwidth_bps:
                return tier
        return self.tiers[-1]

    def adapt(self, client_id: str,
              preferences: Dict[str, object]) -> Dict[str, object]:
        """Effective preferences for this client *right now*.

        Explicit user choices win: adaptation only fills parameters the
        user left at their defaults (``quality``/``scale`` not present
        in the stored profile).  The stored profile itself is never
        written — approximate, regenerable, BASE.
        """
        tier = self.tier_for(self.estimator.bandwidth_bps(client_id))
        adapted = dict(preferences)
        if not preferences.get("_user_set_quality"):
            adapted["quality"] = tier.quality
        if not preferences.get("_user_set_scale"):
            adapted["scale"] = tier.scale
        adapted["_adaptation_tier"] = tier.label
        return adapted
