"""The origin "Internet": where cache misses go.

A miss costs two things, both modelled from Section 4.4:

* the wide-area fetch time — "the miss penalty ... varies widely, from
  100 ms through 100 seconds" (the Harvest latency model's bounded
  Pareto);
* bytes across the installation's Internet access link (the 10 Mb/s
  segment in the paper's testbed), which is how external bandwidth can
  become the bottleneck.

Content is materialized deterministically per URL: the same URL always
yields the same bytes, in either *sim* mode (placeholder bytes of the
traced size — cheap, used by the big experiments) or *real* mode (actual
synthetic images and HTML that the distillers genuinely transform).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.latency import HarvestLatencyModel
from repro.distillers.images import photo_sized_for
from repro.sim.cluster import Cluster
from repro.sim.network import AccessLink
from repro.tacc.content import (
    MIME_GIF,
    MIME_HTML,
    MIME_JPEG,
    Content,
    zero_payload,
)
from repro.workload.trace import TraceRecord

_HTML_BODY_CHUNK = (
    '<p>Lorem ipsum dolor sit amet.</p>\n'
    '<img src="http://img.example/inline.gif" alt="x">\n'
)


class OriginServer:
    """Materializes Web content and charges wide-area fetch costs."""

    def __init__(self, cluster: Cluster,
                 internet_link: Optional[AccessLink] = None,
                 real_content: bool = False) -> None:
        self.cluster = cluster
        self.internet_link = internet_link
        self.real_content = real_content
        self.rng = cluster.streams.stream("origin")
        self.latency = HarvestLatencyModel(
            cluster.streams.stream("miss-penalty"))
        self.fetches = 0
        self.bytes_fetched = 0
        self._real_cache: Dict[str, Content] = {}

    def fetch(self, record: TraceRecord, trace=None):
        """Process generator: fetch ``record``'s content from the wide
        area, paying the miss penalty and the Internet link."""
        span = None
        if trace is not None:
            span = trace.child("origin-fetch", "origin",
                               component="internet")
            span.annotate(url=record.url, bytes=record.size_bytes)
        penalty = self.latency.miss_penalty()
        yield self.cluster.env.timeout(penalty)
        if self.internet_link is not None:
            delay = self.internet_link.reserve(record.size_bytes)
            yield self.cluster.env.timeout(delay)
        self.fetches += 1
        self.bytes_fetched += record.size_bytes
        if span is not None:
            span.annotate(miss_penalty_s=round(penalty, 6)).finish()
        return self.materialize(record)

    # -- content materialization -----------------------------------------------

    def materialize(self, record: TraceRecord) -> Content:
        if self.real_content:
            return self._real(record)
        return Content(
            url=record.url,
            mime=record.mime,
            data=zero_payload(record.size_bytes),
            metadata={"origin": "sim"},
        )

    def _real(self, record: TraceRecord) -> Content:
        """Actual distillable bytes, memoized per URL."""
        cached = self._real_cache.get(record.url)
        if cached is not None:
            return cached
        if record.mime == MIME_GIF:
            image = photo_sized_for(self.rng,
                                    max(256, record.size_bytes))
            content = Content(record.url, MIME_GIF, image.encode_gif())
        elif record.mime == MIME_JPEG:
            image = photo_sized_for(self.rng,
                                    max(256, record.size_bytes))
            content = Content(record.url, MIME_JPEG,
                              image.encode_jpeg(quality=90))
        elif record.mime == MIME_HTML:
            repeats = max(1, record.size_bytes // len(_HTML_BODY_CHUNK))
            body = _HTML_BODY_CHUNK * repeats
            page = f"<html><body>{body}</body></html>"
            content = Content(record.url, MIME_HTML, page.encode())
        else:
            content = Content(record.url, record.mime,
                              b"\xde\xad" * (record.size_bytes // 2 + 1))
        self._real_cache[record.url] = content
        return content
