"""TranSend assembled: service logic + deployment.

:class:`TranSendLogic` is the Service-layer code — the part a service
author writes (Section 2.2.1: the front end "encapsulates
service-specific worker dispatch logic, accesses the profile database to
pass the appropriate parameters to the workers, notifies the end user in
a service-specific way when one or more workers fails unrecoverably").

The request path follows Section 3.1.1 exactly: fetch from the caching
subsystem (or the Internet on a miss), pair the request with the user's
customization preferences, send it through a distiller, return the
result — or, exploiting BASE (Section 3.1.8), return an approximate
answer: a differently-distilled cached variant, else the original.

:class:`TranSend` is the one-call deployment: cluster + SAN + cache
nodes + profile DB + distiller registry + SNS fabric.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.config import SNSConfig
from repro.core.fabric import SNSFabric
from repro.core.frontend import FrontEnd, Response
from repro.core.manager_stub import DispatchError
from repro.degrade.guards import OriginUnavailable
from repro.distillers.gif import GifDistiller
from repro.distillers.html import HtmlMunger
from repro.distillers.jpeg import JpegDistiller
from repro.sim.cluster import Cluster
from repro.sim.network import MBPS
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG, Content
from repro.tacc.customization import ProfileStore, WriteThroughCache
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest, WorkerError
from repro.transend.cachesys import CacheSubsystem
from repro.transend.origin import OriginServer
from repro.transend.profiles import (
    distilled_cache_key,
    effective_preferences,
    original_cache_key,
    preference_validator,
)
from repro.workload.trace import TraceRecord

#: latency of a profile-store read that misses the front end's
#: write-through cache (gdbm lookup).
PROFILE_READ_MISS_S = 0.005

#: which distiller serves which MIME type.
DISTILLER_FOR_MIME = {
    MIME_GIF: GifDistiller.worker_type,
    MIME_JPEG: JpegDistiller.worker_type,
    MIME_HTML: HtmlMunger.worker_type,
}


def transend_registry() -> WorkerRegistry:
    registry = WorkerRegistry()
    registry.register_class(GifDistiller)
    registry.register_class(JpegDistiller)
    registry.register_class(HtmlMunger)
    return registry


class TranSendLogic:
    """The Service-layer request handler running inside each front end."""

    def __init__(self, cluster: Cluster, config: SNSConfig,
                 cachesys: CacheSubsystem, origin: OriginServer,
                 profile_store: ProfileStore,
                 registry: Optional[WorkerRegistry] = None,
                 adaptation: Optional[Any] = None) -> None:
        self.cluster = cluster
        self.config = config
        self.cachesys = cachesys
        self.origin = origin
        self.profile_store = profile_store
        #: optional AdaptationPolicy (Section 5.4): tunes distillation
        #: parameters to each client's estimated bandwidth.
        self.adaptation = adaptation
        #: brownout controller (repro.degrade), wired by the fabric;
        #: None = no degradation ladder on this service.
        self.degradation: Optional[Any] = None
        #: origin circuit breaker (repro.degrade.guards), config-gated.
        self.origin_breaker: Optional[Any] = None
        if config.origin_breaker_failures is not None:
            from repro.degrade.guards import CircuitBreaker
            self.origin_breaker = CircuitBreaker(
                lambda: cluster.env.now,
                config.origin_breaker_failures,
                config.origin_breaker_cooldown_s,
                config.origin_breaker_slow_s)
        registry = registry or transend_registry()
        self._estimators = {
            worker_type: registry.create(worker_type)
            for worker_type in DISTILLER_FOR_MIME.values()
        }
        self._profile_caches: Dict[str, WriteThroughCache] = {}
        #: response-path counters (the Section 3.1.8 BASE taxonomy).
        self.paths: Dict[str, int] = {}

    # -- profile plumbing ------------------------------------------------------

    def profile_cache_for(self, frontend_name: str) -> WriteThroughCache:
        if frontend_name not in self._profile_caches:
            self._profile_caches[frontend_name] = WriteThroughCache(
                self.profile_store)
        return self._profile_caches[frontend_name]

    def set_preference(self, frontend_name: str, user_id: str, key: str,
                       value: Any) -> None:
        """The preference UI path: write-through at the front end.

        Explicitly-set distillation knobs are flagged so bandwidth
        adaptation never overrides a deliberate user choice.
        """
        cache = self.profile_cache_for(frontend_name)
        cache.set(user_id, key, value)
        if key in ("quality", "scale"):
            cache.set(user_id, f"_user_set_{key}", True)

    # -- the request path ---------------------------------------------------------

    def handle(self, frontend: FrontEnd, record: TraceRecord):
        # span context for this request, if the front end sampled it
        # (must be read before the first yield — see FrontEnd.current_trace)
        trace = frontend.current_trace
        profile_cache = self.profile_cache_for(frontend.name)
        cached_profile = record.client_id in profile_cache._cache
        profile = profile_cache.get(record.client_id)
        if not cached_profile:
            mark = self.cluster.env.now
            yield self.cluster.env.timeout(PROFILE_READ_MISS_S)
            if trace is not None:
                trace.record("profile-read", "service", mark,
                             component="profile-db")
        preferences = effective_preferences(profile)
        if self.adaptation is not None:
            preferences = self.adaptation.adapt(record.client_id,
                                                preferences)
        degraded_fidelity = (self.degradation is not None
                             and self.degradation.fidelity_reduced)
        if degraded_fidelity:
            # reduced-fidelity brownout: the lowest adaptation tier,
            # forced cluster-wide — unlike per-client adaptation this
            # overrides even explicit user choices, because the knob
            # exists to shed distiller load, not to please one client
            tier = self.degradation.forced_tier
            preferences = dict(preferences)
            preferences["quality"] = tier.quality
            preferences["scale"] = tier.scale
            preferences["_degrade_forced_tier"] = tier.label

        worker_type = DISTILLER_FOR_MIME.get(record.mime)
        if not self._should_distill(record, preferences, worker_type):
            try:
                original = yield from self._get_original(record, trace)
            except OriginUnavailable:
                return (yield from self._breaker_fallback(record, trace))
            return self._respond("passthrough", "ok", original)

        # 1. is the exact distilled representation already cached?
        key = distilled_cache_key(record.url, preferences)
        if self.config.cache_distilled:
            cached = yield from self.cachesys.lookup(key, trace=trace)
            if cached is not None:
                return self._respond("cache-hit-distilled", "ok", cached)

        # 1b. serve-stale brownout: any cached variant of this URL —
        # whatever its parameters or age — beats spending a distiller
        # slot while the ladder says the cluster is saturated
        if self.degradation is not None \
                and self.degradation.serve_stale_active:
            variant = yield from self.cachesys.any_variant(
                record.url, trace=trace)
            if variant is not None:
                return self._respond(
                    "serve-stale", "degraded", variant,
                    detail="stale variant under brownout",
                    annotations={"degrade_level": 2,
                                 "degrade_mode": "serve-stale"})

        # 2. fetch the original (cache, else Internet)
        try:
            original = yield from self._get_original(record, trace)
        except OriginUnavailable:
            return (yield from self._breaker_fallback(record, trace))

        # 3. distill
        request = TACCRequest(
            inputs=[original],
            params={},
            profile=preferences,
            user_id=record.client_id,
        )
        expected = self._estimators[worker_type].work_estimate(request)
        try:
            result = yield from frontend.stub.dispatch(
                request, worker_type, original.size,
                expected_cost_s=expected, trace=trace)
        except WorkerError:
            # pathological input: bypass the distiller, note the fault
            return self._respond("fallback-original", "fallback",
                                 original, detail="worker error")
        except DispatchError:
            # overload or total distiller loss: approximate answers
            variant = yield from self.cachesys.any_variant(
                record.url, trace=trace)
            if variant is not None:
                return self._respond("fallback-variant", "fallback",
                                     variant, detail="stale variant")
            return self._respond("fallback-original", "fallback",
                                 original, detail="no distiller")

        if self.config.cache_distilled:
            self.cachesys.store(key, result, variant_of=record.url)
        if degraded_fidelity:
            return self._respond(
                "distilled-low-fidelity", "degraded", result,
                annotations={"degrade_level": 1,
                             "degrade_mode": "reduced-fidelity"})
        return self._respond("distilled", "ok", result)

    def _should_distill(self, record: TraceRecord,
                        preferences: Dict[str, Any],
                        worker_type: Optional[str]) -> bool:
        if worker_type is None:
            return False  # "data for which no distiller exists is
            #                passed unmodified to the user"
        if record.size_bytes < self.config.distillation_threshold_bytes:
            return False  # "data under 1KB is transferred unmodified"
        if record.mime == MIME_HTML:
            return bool(preferences.get("munge_html", True))
        return bool(preferences.get("distill_images", True))

    def _get_original(self, record: TraceRecord, trace=None):
        key = original_cache_key(record.url)
        cached = yield from self.cachesys.lookup(key, trace=trace)
        if cached is not None:
            return cached
        breaker = self.origin_breaker
        if breaker is not None and not breaker.allow():
            raise OriginUnavailable(record.url)
        mark = self.cluster.env.now
        try:
            content = yield from self.origin.fetch(record, trace=trace)
        except Exception:
            if breaker is not None:
                breaker.record(self.cluster.env.now - mark, ok=False)
            raise
        if breaker is not None:
            breaker.record(self.cluster.env.now - mark, ok=True)
        self.cachesys.store(key, content)
        return content

    def _breaker_fallback(self, record: TraceRecord, trace=None):
        """Origin breaker open: a cached variant if one exists, else an
        error — fast either way, which is the breaker's whole point."""
        variant = yield from self.cachesys.any_variant(record.url,
                                                       trace=trace)
        if variant is not None:
            return self._respond("fallback-variant", "fallback", variant,
                                 detail="origin breaker open")
        self.paths["origin-breaker"] = \
            self.paths.get("origin-breaker", 0) + 1
        return Response(status="error", path="origin-breaker",
                        detail="origin circuit breaker open")

    def _respond(self, path: str, status: str, content: Content,
                 detail: str = "",
                 annotations: Optional[Dict[str, Any]] = None
                 ) -> Response:
        self.paths[path] = self.paths.get(path, 0) + 1
        return Response(status=status, path=path, content=content,
                        size_bytes=content.size, detail=detail,
                        annotations=annotations or {})


class TranSend:
    """One-call TranSend deployment on a simulated cluster."""

    def __init__(
        self,
        n_nodes: int = 10,
        n_overflow: int = 0,
        n_cache_nodes: int = 4,
        cache_capacity_bytes: int = 256 * 1024 * 1024,
        seed: int = 1997,
        config: Optional[SNSConfig] = None,
        real_content: bool = False,
        san_bandwidth_bps: float = 100 * MBPS,
        internet_bandwidth_bps: float = 10 * MBPS,
        profile_log_path: Optional[str] = None,
        profile_backend: str = "single",
        n_bricks: int = 3,
        brick_replicas: int = 2,
        adaptive: bool = False,
    ) -> None:
        self.config = (config or SNSConfig()).validate()
        self.cluster = Cluster(seed=seed,
                               san_bandwidth_bps=san_bandwidth_bps)
        self.cluster.add_nodes(n_nodes)
        if n_overflow:
            self.cluster.add_nodes(n_overflow, prefix="ovf",
                                   overflow=True)
        internet = self.cluster.add_access_link(
            "internet", internet_bandwidth_bps)
        self.origin = OriginServer(self.cluster, internet,
                                   real_content=real_content)
        self.cachesys = CacheSubsystem(self.cluster)
        for index in range(n_cache_nodes):
            node = self.cluster.add_node(f"cachenode{index}")
            self.cachesys.add_node(node, cache_capacity_bytes)
        self.profile_bricks = None
        if profile_backend == "single":
            self.profile_store = ProfileStore(
                log_path=profile_log_path,
                validator=preference_validator)
        elif profile_backend == "dstore":
            if profile_log_path is not None:
                raise ValueError("the dstore backend has no WAL; "
                                 "profile_log_path only applies to "
                                 "profile_backend='single'")
            from repro.dstore import BrickCluster, ReplicatedProfileStore
            self.profile_bricks = BrickCluster(
                self.cluster, n_bricks=n_bricks,
                replicas=brick_replicas).boot()
            self.profile_store = ReplicatedProfileStore(
                self.profile_bricks, validator=preference_validator)
        else:
            raise ValueError(
                f"unknown profile backend {profile_backend!r}")
        self.registry = transend_registry()
        self.adaptation = None
        if adaptive:
            from repro.transend.adaptation import AdaptationPolicy
            self.adaptation = AdaptationPolicy()
        self.logic = TranSendLogic(self.cluster, self.config,
                                   self.cachesys, self.origin,
                                   self.profile_store, self.registry,
                                   adaptation=self.adaptation)
        self.fabric = SNSFabric(self.cluster, self.registry, self.config,
                                self.logic, execute_real=real_content)
        self.fabric.profile_store = self.profile_store
        self.fabric.profile_bricks = self.profile_bricks

    # -- life cycle -----------------------------------------------------------------

    def start(self, n_frontends: int = 1,
              initial_workers: Optional[Dict[str, int]] = None,
              warmup_s: float = 2.0) -> "TranSend":
        """Boot manager, monitor, front ends (workers spawn on demand
        unless seeded here) and let registrations settle."""
        self.fabric.boot(n_frontends=n_frontends,
                         initial_workers=initial_workers or {})
        if warmup_s > 0:
            self.cluster.run(until=self.cluster.env.now + warmup_s)
        return self

    def submit(self, record: TraceRecord):
        return self.fabric.submit(record)

    def run(self, until: Optional[float] = None):
        return self.cluster.run(until)

    def run_until(self, event):
        return self.cluster.env.run(until=event)

    # -- the preference UI --------------------------------------------------------------

    def set_preference(self, user_id: str, key: str, value: Any) -> None:
        frontends = self.fabric.alive_frontends()
        frontend_name = frontends[0].name if frontends else "offline"
        self.logic.set_preference(frontend_name, user_id, key, value)

    # -- reporting ------------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "paths": dict(self.logic.paths),
            "cache_hit_rate": self.cachesys.hit_rate,
            "origin_fetches": self.origin.fetches,
            "workers": {
                stub.name: stub.served
                for stub in self.fabric.alive_workers()
            },
            "manager_spawns": (self.fabric.manager.spawns
                               if self.fabric.manager else 0),
            "frontends": {
                frontend.name: frontend.responses_sent
                for frontend in self.fabric.alive_frontends()
            },
        }
