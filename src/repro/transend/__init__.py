"""TranSend: the scalable Web distillation proxy (Sections 3-4).

TranSend is the paper's flagship instantiation of the architecture: an
HTTP proxy for the UC Berkeley dialup population that distills inline
images (3-5x end-to-end latency win) and caches both original and
post-transformation content.  This package is the *Service layer*: it
composes the SNS fabric, the TACC distillers, the Harvest-like cache
subsystem, and the ACID preference database into the deployed service.

Quick use (see ``examples/transend_proxy.py``)::

    from repro.transend import TranSend

    transend = TranSend(n_nodes=8, seed=1997)
    transend.start()
    reply = transend.submit(record)      # a workload TraceRecord
    response = transend.run_until(reply)
"""

from repro.transend.origin import OriginServer
from repro.transend.adaptation import (
    AdaptationPolicy,
    BandwidthEstimator,
)
from repro.transend.cachesys import CacheNode, CacheSubsystem
from repro.transend.profiles import (
    DEFAULT_PREFERENCES,
    preference_validator,
)
from repro.transend.service import TranSend, TranSendLogic

__all__ = [
    "AdaptationPolicy",
    "BandwidthEstimator",
    "CacheNode",
    "CacheSubsystem",
    "DEFAULT_PREFERENCES",
    "OriginServer",
    "TranSend",
    "TranSendLogic",
    "preference_validator",
]
