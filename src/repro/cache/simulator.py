"""Trace-driven cache simulation for the Section 4.4 studies.

"We ran a number of cache simulations to explore the relationship
between user population size, cache size, and cache hit rate, using LRU
replacement."  The paper's findings, which the experiment drivers
reproduce:

* hit rate rises monotonically with cache size, then **plateaus** at a
  level set by the user population (≈56 % at 6 GB for the ~8000 traced
  users);
* for a fixed cache size, hit rate **rises with population** (shared
  locality) until the union of working sets exceeds the cache, after
  which it falls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.lru import LRUCache


class CacheSimulator:
    """Feed (key, size) references through an LRU cache and tally."""

    def __init__(self, capacity_bytes: int) -> None:
        self.cache = LRUCache(capacity_bytes)
        self.requests = 0
        self.hit_bytes = 0
        self.total_bytes = 0

    def reference(self, key: str, size_bytes: int) -> bool:
        """Process one reference; returns True on hit."""
        self.requests += 1
        self.total_bytes += size_bytes
        if self.cache.get(key) is not None:
            self.hit_bytes += size_bytes
            return True
        self.cache.put(key, True, size_bytes)
        return False

    def run(self, references: Iterable[Tuple[str, int]]) -> "CacheSimulator":
        for key, size_bytes in references:
            self.reference(key, size_bytes)
        return self

    @property
    def hit_rate(self) -> float:
        return self.cache.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Fraction of bytes served from cache — what saves the ISP's
        T1 lines in the Section 5.2 economics argument."""
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0


def simulate_hit_rate(references: Iterable[Tuple[str, int]],
                      capacity_bytes: int) -> float:
    """One-shot convenience wrapper."""
    return CacheSimulator(capacity_bytes).run(references).hit_rate


def sweep_cache_sizes(
    reference_list: List[Tuple[str, int]],
    capacities_bytes: List[int],
) -> Dict[int, float]:
    """Hit rate for each cache size over the same reference stream
    (the x-axis sweep of the paper's cache-size study)."""
    return {
        capacity: simulate_hit_rate(reference_list, capacity)
        for capacity in capacities_bytes
    }
