"""Byte-capacity LRU cache.

The unit of capacity is bytes, not entries: the paper's cache study
(Section 4.4) sweeps *gigabytes* of cache against hit rate, and Web
objects span five orders of magnitude in size (Figure 5), so entry-count
capacity would distort everything.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator, Optional, Tuple


class LRUCache:
    """Least-recently-used cache with a byte budget."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[Any]:
        """Value for ``key`` (refreshing recency), or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def peek(self, key: Any) -> Optional[Any]:
        """Value without touching recency or hit/miss counters."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: Any, value: Any, size_bytes: int) -> None:
        """Insert or replace ``key``; evict LRU entries to fit.

        Objects larger than the whole cache are not cached at all (the
        standard proxy-cache policy — one huge object must not flush
        everything else).
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if size_bytes > self.capacity_bytes:
            self._remove(key)
            return
        self._remove(key)
        while self.used_bytes + size_bytes > self.capacity_bytes:
            self._evict_one()
        self._entries[key] = (value, size_bytes)
        self.used_bytes += size_bytes

    def _remove(self, key: Any) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.used_bytes -= entry[1]

    def invalidate(self, key: Any) -> bool:
        """Drop ``key`` if present; return whether it was present."""
        present = key in self._entries
        self._remove(key)
        return present

    def _evict_one(self) -> None:
        _, (_, size) = self._entries.popitem(last=False)
        self.used_bytes -= size
        self.evictions += 1

    def flush(self) -> int:
        """Drop everything (BASE: cached data is disposable soft state).
        Returns the number of entries dropped."""
        count = len(self._entries)
        self._entries.clear()
        self.used_bytes = 0
        return count

    def keys(self) -> Iterator[Any]:
        return iter(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"<LRUCache {self.used_bytes}/{self.capacity_bytes}B "
                f"{len(self._entries)} entries hit_rate="
                f"{self.hit_rate:.2f}>")
