"""Caching substrate: the Harvest-derived cache subsystem.

TranSend ran Harvest object caches on four nodes (Section 3.1.5), with
three notable engineering moves reproduced here:

* the manager stub treats separate cache nodes as a **single virtual
  cache**, hashing the key space across them and re-hashing when nodes
  come or go (:class:`~repro.cache.virtual_cache.VirtualCache`);
* distillers can **inject post-transformation data** into the cache
  (``put`` on the virtual cache — in stock Harvest this required a patch);
* each cache request pays a fresh **TCP connection** (15 ms of the 27 ms
  average hit time), a deficiency the paper kept and we model.

Caching is "only an optimization": all cached data is BASE soft state and
can be discarded at a performance cost — the cache node's ``flush`` models
exactly that.
"""

from repro.cache.lru import LRUCache
from repro.cache.partition import ConsistentHashRing, ModHashPartitioner
from repro.cache.virtual_cache import VirtualCache
from repro.cache.latency import HarvestLatencyModel
from repro.cache.simulator import CacheSimulator, simulate_hit_rate

__all__ = [
    "CacheSimulator",
    "ConsistentHashRing",
    "HarvestLatencyModel",
    "LRUCache",
    "ModHashPartitioner",
    "VirtualCache",
    "simulate_hit_rate",
]
