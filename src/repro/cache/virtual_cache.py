"""A set of cache nodes managed as one virtual cache.

Routing lives here (partitioner), storage lives in per-node
:class:`~repro.cache.lru.LRUCache` instances.  Adding or removing a node
re-partitions the key space; with the 1997 mod-hash scheme that leaves
most entries stranded on nodes that will no longer be asked for them, so
the virtual cache's hit rate dips until the working set re-populates —
the behaviour the consistent-hashing ablation quantifies.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cache.lru import LRUCache
from repro.cache.partition import ModHashPartitioner, PartitionError


class VirtualCache:
    """Hash-partitioned cache over named nodes."""

    def __init__(
        self,
        node_capacity_bytes: int,
        nodes: Optional[List[str]] = None,
        partitioner_factory: Callable[[List[str]], Any] = ModHashPartitioner,
    ) -> None:
        self.node_capacity_bytes = node_capacity_bytes
        self._partitioner_factory = partitioner_factory
        self._partitioner = partitioner_factory(list(nodes or []))
        self._stores: Dict[str, LRUCache] = {
            name: LRUCache(node_capacity_bytes) for name in (nodes or [])
        }
        self.hits = 0
        self.misses = 0

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return self._partitioner.nodes

    def add_node(self, name: str,
                 capacity_bytes: Optional[int] = None) -> None:
        self._partitioner.add_node(name)
        self._stores[name] = LRUCache(
            capacity_bytes or self.node_capacity_bytes)

    def remove_node(self, name: str) -> int:
        """Remove a node (crash or decommission); its contents are lost.
        Returns the number of entries dropped."""
        self._partitioner.remove_node(name)
        store = self._stores.pop(name)
        return store.flush()

    def store_for(self, key: str) -> Tuple[str, LRUCache]:
        """(node name, its store) responsible for ``key``."""
        name = self._partitioner.locate(key)
        return name, self._stores[name]

    # -- cache operations ------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Value if the responsible node holds it, else None.

        Note the post-rehash behaviour falls out naturally: after
        membership changes, entries on no-longer-responsible nodes are
        simply never found again and age out of their LRU lists.
        """
        _, store = self.store_for(key)
        value = store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: str, value: Any, size_bytes: int) -> str:
        """Store on the responsible node; returns that node's name.

        This is also the distiller-injection path ("we modified Harvest
        to allow data to be injected into it, allowing distillers to
        store post-transformed or intermediate-state data").
        """
        name, store = self.store_for(key)
        store.put(key, value, size_bytes)
        return name

    def invalidate(self, key: str) -> bool:
        try:
            _, store = self.store_for(key)
        except PartitionError:
            return False
        return store.invalidate(key)

    def flush(self) -> int:
        """Drop everything on every node (all BASE data is disposable)."""
        return sum(store.flush() for store in self._stores.values())

    # -- stats ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def used_bytes(self) -> int:
        return sum(store.used_bytes for store in self._stores.values())

    @property
    def capacity_bytes(self) -> int:
        return sum(store.capacity_bytes for store in self._stores.values())

    def node_stats(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "entries": len(store),
                "used_bytes": store.used_bytes,
                "hit_rate": store.hit_rate,
                "evictions": store.evictions,
            }
            for name, store in self._stores.items()
        }
