"""Key-space partitioners for the virtual cache.

The paper's manager stub "can manage a number of separate cache nodes as
a single virtual cache, hashing the key space across the separate caches
and automatically re-hashing when cache nodes are added or removed"
(Section 3.1.5).  Two partitioners are provided:

* :class:`ModHashPartitioner` — hash(key) mod N, the 1997 approach.
  Simple, but changing N remaps nearly every key (cold caches after a
  membership change).
* :class:`ConsistentHashRing` — the modern refinement; only ~1/N of keys
  move on a membership change.  Offered as an ablation: the benchmark
  suite compares post-rehash hit-rate dips under both.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence


def stable_hash(value: str) -> int:
    """Deterministic 64-bit hash (Python's builtin ``hash`` is salted
    per-process, which would break reproducibility)."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PartitionError(Exception):
    """Membership errors (no nodes, duplicate add, unknown remove)."""


class ModHashPartitioner:
    """hash(key) mod N over an ordered node list."""

    def __init__(self, nodes: Sequence[str] = ()) -> None:
        self._nodes: List[str] = list(nodes)

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise PartitionError(f"node {node!r} already present")
        self._nodes.append(node)

    def remove_node(self, node: str) -> None:
        try:
            self._nodes.remove(node)
        except ValueError:
            raise PartitionError(f"node {node!r} not present") from None

    def locate(self, key: str) -> str:
        if not self._nodes:
            raise PartitionError("no nodes in partition")
        return self._nodes[stable_hash(key) % len(self._nodes)]


class ConsistentHashRing:
    """Consistent hashing with virtual nodes."""

    def __init__(self, nodes: Sequence[str] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: List[int] = []
        self._owners: dict = {}
        self._nodes: List[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise PartitionError(f"node {node!r} already present")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = stable_hash(f"{node}#{replica}")
            index = bisect.bisect(self._ring, point)
            self._ring.insert(index, point)
            self._owners[point] = node

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise PartitionError(f"node {node!r} not present")
        self._nodes.remove(node)
        for replica in range(self.replicas):
            point = stable_hash(f"{node}#{replica}")
            index = bisect.bisect_left(self._ring, point)
            if index < len(self._ring) and self._ring[index] == point:
                self._ring.pop(index)
            self._owners.pop(point, None)

    def locate(self, key: str) -> str:
        if not self._ring:
            raise PartitionError("no nodes in partition")
        point = stable_hash(key)
        index = bisect.bisect(self._ring, point)
        if index == len(self._ring):
            index = 0
        return self._owners[self._ring[index]]


def remap_fraction(partitioner_factory, keys: Sequence[str],
                   nodes: Sequence[str], removed: str) -> float:
    """Fraction of keys whose owner changes when ``removed`` leaves.

    The measurement behind the mod-hash vs consistent-hash ablation.
    """
    before = partitioner_factory(nodes)
    remaining = [n for n in nodes if n != removed]
    after = partitioner_factory(remaining)
    moved = 0
    for key in keys:
        old_owner = before.locate(key)
        new_owner = after.locate(key)
        if old_owner != removed and old_owner != new_owner:
            moved += 1
    survivors = [key for key in keys if before.locate(key) != removed]
    return moved / len(survivors) if survivors else 0.0
