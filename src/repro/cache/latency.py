"""The Harvest cache latency model (Section 4.4).

The paper summarizes measured Harvest behaviour:

* "The average cache hit takes 27 ms to service, including network and
  OS overhead ... TCP connection and tear-down overhead is attributed to
  15 ms of this service time."
* "95 % of all cache hits take less than 100 ms to service" (low
  variation).
* "The miss penalty (i.e., the time to fetch data from the Internet)
  varies widely, from 100 ms through 100 seconds."

We model hit time as TCP overhead plus an exponential remainder tuned so
the mean is 27 ms and P95 lands under 100 ms, and miss penalty as a
bounded Pareto on [100 ms, 100 s] — heavy-tailed, as wide-area fetches
are.
"""

from __future__ import annotations

from repro.sim.rng import Stream

#: Measured constants from Section 4.4.
TCP_OVERHEAD_S = 0.015
MEAN_HIT_S = 0.027
MISS_MIN_S = 0.100
MISS_MAX_S = 100.0


class HarvestLatencyModel:
    """Draws hit service times and miss penalties."""

    def __init__(self, rng: Stream,
                 mean_hit_s: float = MEAN_HIT_S,
                 tcp_overhead_s: float = TCP_OVERHEAD_S,
                 miss_min_s: float = MISS_MIN_S,
                 miss_max_s: float = MISS_MAX_S,
                 miss_alpha: float = 1.1) -> None:
        if mean_hit_s <= tcp_overhead_s:
            raise ValueError("mean hit time must exceed TCP overhead")
        self.rng = rng
        self.mean_hit_s = mean_hit_s
        self.tcp_overhead_s = tcp_overhead_s
        self.miss_min_s = miss_min_s
        self.miss_max_s = miss_max_s
        self.miss_alpha = miss_alpha

    def hit_time(self) -> float:
        """Service time for a cache hit (seconds)."""
        remainder = self.rng.exponential(self.mean_hit_s -
                                         self.tcp_overhead_s)
        return self.tcp_overhead_s + remainder

    def miss_penalty(self) -> float:
        """Time to fetch the object from the Internet (seconds)."""
        penalty = self.rng.pareto(self.miss_alpha, self.miss_min_s)
        return min(penalty, self.miss_max_s)

    def max_hit_service_rate(self) -> float:
        """Requests/second one cache node can serve from its hit path —
        the paper's "maximum average service rate from each partitioned
        cache instance of 37 requests per second"."""
        return 1.0 / self.mean_hit_s
