"""Burstiness analysis and overflow-pool provisioning (Section 4.2).

Figure 6 buckets the trace at three scales (2 minutes, 30 seconds,
1 second) and reports average and peak rates.  Section 4.2 then gives the
operator two "administrative avenues" for sizing the dedicated worker
pool against the overflow pool:

1. pick a target *utilization* — draw a horizontal line (tasks/sec) such
   that the fraction of traffic under the line equals the target
   (:func:`utilization_line`);
2. pick an acceptable *overflow frequency* — draw the line such that the
   fraction of buckets exceeding it equals that percentage
   (:func:`overflow_line_for_fraction`).

The paper notes these are not interchangeable ("the utilization level
cannot necessarily be predicted given a certain acceptable percentage,
and vice-versa") — the report function returns both so the experiment
can show the difference.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.workload.trace import TraceRecord


def bucket_counts(records: Sequence[TraceRecord],
                  bucket_s: float) -> List[int]:
    """Requests per bucket of width ``bucket_s`` across the trace span."""
    if bucket_s <= 0:
        raise ValueError("bucket width must be positive")
    if not records:
        return []
    start = records[0].timestamp
    end = records[-1].timestamp
    n_buckets = int((end - start) / bucket_s) + 1
    counts = [0] * n_buckets
    for record in records:
        index = int((record.timestamp - start) / bucket_s)
        counts[index] += 1
    return counts


def rates_from_counts(counts: Sequence[int],
                      bucket_s: float) -> List[float]:
    return [count / bucket_s for count in counts]


def utilization_line(counts: Sequence[int], bucket_s: float,
                     target_utilization: float) -> float:
    """Tasks/sec line such that traffic *under* the line is the given
    fraction of all traffic (administrative avenue #1).

    Traffic under a line L (in tasks/sec) is sum(min(rate_i, L)) over
    buckets; we binary-search L so that this equals
    target_utilization * total.
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target utilization must be in (0, 1]")
    rates = rates_from_counts(counts, bucket_s)
    if not rates:
        return 0.0
    total = sum(rates)
    if total == 0:
        return 0.0
    low, high = 0.0, max(rates)

    def under(line: float) -> float:
        return sum(min(rate, line) for rate in rates)

    target = target_utilization * total
    for _ in range(60):
        mid = (low + high) / 2.0
        if under(mid) < target:
            low = mid
        else:
            high = mid
    return high


def overflow_line_for_fraction(counts: Sequence[int], bucket_s: float,
                               overflow_fraction: float) -> float:
    """Tasks/sec line exceeded by the given fraction of buckets
    (administrative avenue #2) — i.e. the (1 - f) rate quantile."""
    if not 0.0 <= overflow_fraction <= 1.0:
        raise ValueError("overflow fraction must be in [0, 1]")
    rates = sorted(rates_from_counts(counts, bucket_s))
    if not rates:
        return 0.0
    index = int(math.ceil((1.0 - overflow_fraction) * len(rates))) - 1
    index = max(0, min(len(rates) - 1, index))
    return rates[index]


def index_of_dispersion(counts: Sequence[int]) -> float:
    """Variance-to-mean ratio of bucket counts.

    1.0 for a Poisson process; substantially above 1 for bursty
    (self-similar) traffic.  Comparing the index across aggregation
    scales is the quick self-similarity check used in the tests.
    """
    if not counts:
        return 0.0
    n = len(counts)
    mean = sum(counts) / n
    if mean == 0:
        return 0.0
    variance = sum((count - mean) ** 2 for count in counts) / n
    return variance / mean


def aggregate(counts: Sequence[int], group: int) -> List[int]:
    """Sum adjacent buckets in groups of ``group`` (coarser timescale)."""
    if group <= 0:
        raise ValueError("group must be positive")
    return [
        sum(counts[index:index + group])
        for index in range(0, len(counts) - group + 1, group)
    ]


def burstiness_report(records: Sequence[TraceRecord],
                      scales_s: Sequence[float] = (120.0, 30.0, 1.0)
                      ) -> Dict[float, Dict[str, float]]:
    """Average and peak request rates at each bucketing scale — the
    numbers quoted in the Figure 6 caption."""
    report = {}
    for scale in scales_s:
        counts = bucket_counts(records, scale)
        rates = rates_from_counts(counts, scale)
        report[scale] = {
            "buckets": float(len(counts)),
            "avg_rps": sum(rates) / len(rates) if rates else 0.0,
            "peak_rps": max(rates) if rates else 0.0,
            "dispersion": index_of_dispersion(counts),
        }
    return report
