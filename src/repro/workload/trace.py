"""Trace records and trace files.

One :class:`TraceRecord` is one HTTP request as the paper's packet-filter
tracer captured it: a timestamp, an (anonymized) client, a URL, the MIME
type the collector inferred, and the content length.  Traces serialize to
a simple tab-separated format so generated workloads can be saved once
and replayed across experiments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple


class TraceRecord(NamedTuple):
    """One traced HTTP request.

    A ``NamedTuple`` rather than a dataclass: trace generation is the
    innermost producer of a ten-million-request replay, and tuple
    construction is several times cheaper than a frozen dataclass's
    per-field ``object.__setattr__`` — while keeping immutability,
    value equality, hashing, and pickling.
    """

    timestamp: float
    client_id: str
    url: str
    mime: str
    size_bytes: int
    #: request priority class: "interactive" (a human waiting) or
    #: "batch" (crawlers, prefetchers) — what priority-class admission
    #: sheds first under overload.
    priority: str = "interactive"

    def to_line(self) -> str:
        fields = [
            f"{self.timestamp:.6f}",
            self.client_id,
            self.url,
            self.mime,
            str(self.size_bytes),
        ]
        # the 6th column appears only for non-default priorities, so
        # traces written before the field existed stay byte-identical
        if self.priority != "interactive":
            fields.append(self.priority)
        return "\t".join(fields)

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) not in (5, 6):
            raise ValueError(f"malformed trace line: {line!r}")
        return cls(
            timestamp=float(parts[0]),
            client_id=parts[1],
            url=parts[2],
            mime=parts[3],
            size_bytes=int(parts[4]),
            priority=parts[5] if len(parts) == 6 else "interactive",
        )


def save_trace(records: Iterable[TraceRecord], path: str) -> int:
    """Write records to ``path``; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line() + "\n")
            count += 1
    return count


def iter_trace(path: str) -> Iterator[TraceRecord]:
    """Stream records from a trace file written by :func:`save_trace`.

    Reads one line at a time, so a multi-million-request trace replays
    with bounded memory — feed the iterator straight to
    :meth:`~repro.workload.playback.PlaybackEngine.play`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield TraceRecord.from_line(line)


def load_trace(path: str) -> List[TraceRecord]:
    """Read a whole trace file into memory (see :func:`iter_trace` for
    the streaming variant)."""
    return list(iter_trace(path))


def iter_window(records: List[TraceRecord], start: float,
                end: float) -> Iterator[TraceRecord]:
    """Records with start <= timestamp < end (records must be sorted)."""
    for record in records:
        if record.timestamp >= end:
            break
        if record.timestamp >= start:
            yield record
