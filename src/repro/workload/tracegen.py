"""Synthetic HTTP trace generation.

Two generators:

* :class:`TraceGenerator` — the dialup-population model behind
  Figures 5 and 6 and the cache study: a document universe with Zipf
  popularity, per-user private working sets, and an arrival process
  with a 24-hour cycle modulated by a multiplicative multi-timescale
  cascade (bursts remain visible at 2-minute, 30-second, and 1-second
  buckets, as in Figure 6 a-c).
* :func:`fixed_jpeg_trace` — the Section 4.6 scalability workload:
  "a trace file that repeatedly requested a fixed number of JPEG
  images, all approximately 10 KB in size", which keeps the cache hot
  and isolates distiller and front-end capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStreams, Stream
from repro.tacc.content import MIME_JPEG
from repro.workload.distributions import (
    MimeMix,
    SizeModel,
    default_mime_mix,
    default_size_models,
)
from repro.workload.trace import TraceRecord

DAY_S = 86400.0


@dataclass(frozen=True)
class Document:
    url: str
    mime: str
    size_bytes: int


class DocumentUniverse:
    """Shared popular documents plus per-user private working sets.

    Shared documents carry Zipf popularity (rank 0 most popular).
    Private documents model each user's personal browsing tail; they are
    derived deterministically from the user id, so the same universe and
    seed always produce the same trace.
    """

    def __init__(
        self,
        rng: Stream,
        n_shared_docs: int = 20000,
        n_private_per_user: int = 200,
        shared_fraction: float = 0.7,
        mime_mix: Optional[MimeMix] = None,
        size_models: Optional[Dict[str, SizeModel]] = None,
        zipf_alpha: float = 0.9,
    ) -> None:
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        self.rng = rng
        self.n_private_per_user = n_private_per_user
        self.shared_fraction = shared_fraction
        self.zipf_alpha = zipf_alpha
        mime_mix = mime_mix or default_mime_mix()
        size_models = size_models or default_size_models()
        self._size_models = size_models
        self._mime_mix = mime_mix
        self.shared_docs: List[Document] = []
        for index in range(n_shared_docs):
            mime = mime_mix.sample(rng)
            size = size_models[mime].sample(rng)
            extension = _extension_for(mime)
            self.shared_docs.append(Document(
                url=f"http://shared.example/doc{index}{extension}",
                mime=mime,
                size_bytes=size,
            ))
        self._private_cache: Dict[Tuple[str, int], Document] = {}

    def _private_doc(self, client_id: str, index: int) -> Document:
        key = (client_id, index)
        if key not in self._private_cache:
            mime = self._mime_mix.sample(self.rng)
            size = self._size_models[mime].sample(self.rng)
            extension = _extension_for(mime)
            self._private_cache[key] = Document(
                url=f"http://{client_id}.example/p{index}{extension}",
                mime=mime,
                size_bytes=size,
            )
        return self._private_cache[key]

    def sample_document(self, client_id: str) -> Document:
        """One document reference for ``client_id``."""
        if self.rng.random() < self.shared_fraction:
            rank = self.rng.zipf_rank(len(self.shared_docs),
                                      self.zipf_alpha)
            return self.shared_docs[rank]
        index = self.rng.zipf_rank(self.n_private_per_user, 1.0)
        return self._private_doc(client_id, index)


def _extension_for(mime: str) -> str:
    return {
        "image/gif": ".gif",
        "image/jpeg": ".jpg",
        "text/html": ".html",
    }.get(mime, ".bin")


class BurstCascade:
    """Multiplicative cascade: piecewise-constant log-normal modulators
    at several timescales, multiplied together.

    Each level's multiplier has unit mean; resampling epochs at the
    level's period keeps correlated fluctuations alive at that scale.
    The product exhibits bursts at *all* chosen scales — a simple and
    controllable stand-in for the self-similar traffic of [18, 27, 35].
    """

    def __init__(self, rng: Stream,
                 periods_s: Sequence[float] = (1800.0, 300.0, 30.0, 2.0),
                 sigma: float = 0.15) -> None:
        self.rng = rng
        self.periods = list(periods_s)
        self.sigma = sigma
        self._epochs = [-1] * len(self.periods)
        self._factors = [1.0] * len(self.periods)

    def factor(self, t: float) -> float:
        product = 1.0
        for level, period in enumerate(self.periods):
            epoch = int(t / period)
            if epoch != self._epochs[level]:
                self._epochs[level] = epoch
                # unit-mean log-normal: mu = -sigma^2/2
                self._factors[level] = self.rng.lognormal(
                    -self.sigma * self.sigma / 2.0, self.sigma)
            product *= self._factors[level]
        return product


def daily_cycle_factor(t: float, trough_hour: float = 7.5,
                       amplitude: float = 0.65) -> float:
    """Unit-mean 24-hour modulation with its minimum at ``trough_hour``.

    Figure 6(a) shows the Berkeley dialup cycle bottoming out around
    07:30 and peaking in the evening; amplitude 0.65 gives the observed
    ~2.2x peak-to-average ratio once bursts are layered on.
    """
    hours = (t / 3600.0) % 24.0
    phase = 2.0 * math.pi * (hours - trough_hour) / 24.0
    return 1.0 - amplitude * math.cos(phase)


class TraceGenerator:
    """Generates a timestamped, sorted synthetic request trace."""

    def __init__(
        self,
        seed: int = 1997,
        n_users: int = 8000,
        mean_rate_rps: float = 5.8,
        universe: Optional[DocumentUniverse] = None,
        with_daily_cycle: bool = True,
        with_bursts: bool = True,
        burst_sigma: float = 0.15,
    ) -> None:
        streams = RandomStreams(seed)
        self.rng = streams.stream("tracegen")
        self.n_users = n_users
        self.mean_rate_rps = mean_rate_rps
        self.universe = universe if universe is not None else \
            DocumentUniverse(streams.stream("universe"))
        self.with_daily_cycle = with_daily_cycle
        self.cascade = BurstCascade(
            streams.stream("bursts"), sigma=burst_sigma) \
            if with_bursts else None

    def rate_at(self, t: float) -> float:
        rate = self.mean_rate_rps
        if self.with_daily_cycle:
            rate *= daily_cycle_factor(t)
        if self.cascade is not None:
            rate *= self.cascade.factor(t)
        return rate

    def _poisson(self, lam: float) -> int:
        """Knuth's method; adequate for per-second rates under ~50."""
        if lam <= 0:
            return 0
        threshold = math.exp(-lam)
        count = 0
        product = self.rng.random()
        while product > threshold:
            count += 1
            product *= self.rng.random()
        return count

    def _pick_client(self) -> str:
        rank = self.rng.zipf_rank(self.n_users, 0.8)
        return f"client{rank}"

    def iter_generate(self, duration_s: float,
                      start_s: float = 0.0) -> Iterator[TraceRecord]:
        """Stream the trace for [start_s, start_s + duration_s).

        Records are produced one one-second slice at a time — the
        non-homogeneous process's natural chunk — and each slice is
        sorted before it is yielded.  Slices cover disjoint half-open
        intervals, so the concatenation is globally timestamp-sorted and
        identical (same RNG draws, same order) to :meth:`generate`,
        while only one slice is ever materialized.  This is what lets a
        multi-hour, multi-million-request workload feed the playback
        engine with bounded memory.
        """
        step = 1.0  # one-second slices for the non-homogeneous process
        t = start_s
        end = start_s + duration_s
        while t < end:
            slice_end = min(t + step, end)
            width = slice_end - t
            count = self._poisson(self.rate_at(t) * width)
            if count:
                chunk: List[TraceRecord] = []
                for _ in range(count):
                    timestamp = t + self.rng.random() * width
                    client_id = self._pick_client()
                    document = self.universe.sample_document(client_id)
                    chunk.append(TraceRecord(
                        timestamp=timestamp,
                        client_id=client_id,
                        url=document.url,
                        mime=document.mime,
                        size_bytes=document.size_bytes,
                    ))
                chunk.sort(key=lambda record: record.timestamp)
                yield from chunk
            t = slice_end

    def generate(self, duration_s: float,
                 start_s: float = 0.0) -> List[TraceRecord]:
        """Trace covering [start_s, start_s + duration_s), in memory."""
        return list(self.iter_generate(duration_s, start_s=start_s))


def iter_fixed_jpeg_trace(
    rate_rps: float,
    n_requests: int,
    n_images: int = 50,
    image_size_bytes: int = 10240,
    seed: int = 1997,
    n_clients: int = 100,
) -> Iterator[TraceRecord]:
    """Stream exactly ``n_requests`` of the Section 4.6 fixed-JPEG
    workload (Poisson arrivals at ``rate_rps``), one record at a time.

    The count-bounded streaming twin of :func:`fixed_jpeg_trace`: a
    20-million-request replay in the paper's style needs no more memory
    than a single :class:`TraceRecord`.  Deterministic in ``seed``.
    """
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = RandomStreams(seed).stream("fixed-jpeg")
    mean_gap = 1.0 / rate_rps
    t = 0.0
    for index in range(n_requests):
        t += rng.exponential(mean_gap)
        yield TraceRecord(
            timestamp=t,
            client_id=f"client{index % n_clients}",
            url=f"http://bench.example/img{index % n_images}.jpg",
            mime=MIME_JPEG,
            size_bytes=image_size_bytes,
        )


def fixed_jpeg_trace(
    rate_rps: float,
    duration_s: float,
    n_images: int = 50,
    image_size_bytes: int = 10240,
    seed: int = 1997,
    n_clients: int = 100,
) -> List[TraceRecord]:
    """The Table 2 scalability workload: constant-rate requests cycling
    over a fixed set of ~10 KB JPEGs (all cache-resident, so the cache
    miss penalty never clouds the scaling measurement)."""
    rng = RandomStreams(seed).stream("fixed-jpeg")
    records = []
    t = 0.0
    index = 0
    while t < duration_s:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            break
        records.append(TraceRecord(
            timestamp=t,
            client_id=f"client{index % n_clients}",
            url=f"http://bench.example/img{index % n_images}.jpg",
            mime=MIME_JPEG,
            size_bytes=image_size_bytes,
        ))
        index += 1
    return records
