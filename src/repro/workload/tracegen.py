"""Synthetic HTTP trace generation.

Two generators:

* :class:`TraceGenerator` — the dialup-population model behind
  Figures 5 and 6 and the cache study: a document universe with Zipf
  popularity, per-user private working sets, and an arrival process
  with a 24-hour cycle modulated by a multiplicative multi-timescale
  cascade (bursts remain visible at 2-minute, 30-second, and 1-second
  buckets, as in Figure 6 a-c).
* :func:`fixed_jpeg_trace` — the Section 4.6 scalability workload:
  "a trace file that repeatedly requested a fixed number of JPEG
  images, all approximately 10 KB in size", which keeps the cache hot
  and isolates distiller and front-end capacity.

Generation is **bucket-deterministic**: every one-second bucket of the
non-homogeneous arrival process draws from its own RNG stream, derived
from the seed and the absolute bucket index alone.  Two consequences:

* the per-request hot path is vectorized — each bucket batch-samples
  its arrival count, offsets, clients, and documents instead of paying
  per-request method dispatch (this is what lets a 10M-request replay
  generate its trace at millions of records per minute);
* any time window ``[a, b)`` of the trace can be regenerated exactly,
  with no RNG hand-off state: generating ``[0, T)`` in one call equals
  concatenating ``[0, t)`` and ``[t, T)`` for *any* split point, which
  is the property the time-sharded replay mode of
  :mod:`repro.fanout.timeshard` is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStreams, Stream, derive_seed
from repro.tacc.content import MIME_JPEG
from repro.workload.distributions import (
    MimeMix,
    SizeModel,
    default_mime_mix,
    default_size_models,
)
from repro.workload.trace import TraceRecord

DAY_S = 86400.0

#: Above this arrival rate per bucket, Poisson sampling switches from
#: Knuth's product-of-uniforms method (O(lambda) draws, and degenerate
#: once ``exp(-lambda)`` underflows around lambda ≈ 745) to a rounded
#: normal approximation (one Gaussian draw; relative error < 1% at this
#: threshold and shrinking as lambda grows).
POISSON_NORMAL_THRESHOLD = 64.0


def poisson_variate(rng: Stream, lam: float) -> int:
    """One Poisson draw from ``rng``: Knuth's method for small rates, a
    rounded normal approximation above :data:`POISSON_NORMAL_THRESHOLD`
    (where Knuth degrades and then breaks outright)."""
    if lam <= 0:
        return 0
    if lam > POISSON_NORMAL_THRESHOLD:
        count = int(rng.gauss(lam, math.sqrt(lam)) + 0.5)
        return count if count > 0 else 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


@dataclass(frozen=True)
class Document:
    url: str
    mime: str
    size_bytes: int


class DocumentUniverse:
    """Shared popular documents plus per-user private working sets.

    Shared documents carry Zipf popularity (rank 0 most popular).
    Private documents model each user's personal browsing tail; they are
    derived deterministically from the (user id, index) pair alone —
    never from the order in which users happen to appear in the trace —
    so any time shard of a trace sees the same private documents the
    full trace would.
    """

    def __init__(
        self,
        rng: Stream,
        n_shared_docs: int = 20000,
        n_private_per_user: int = 200,
        shared_fraction: float = 0.7,
        mime_mix: Optional[MimeMix] = None,
        size_models: Optional[Dict[str, SizeModel]] = None,
        zipf_alpha: float = 0.9,
    ) -> None:
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        self.rng = rng
        self.n_private_per_user = n_private_per_user
        self.shared_fraction = shared_fraction
        self.zipf_alpha = zipf_alpha
        mime_mix = mime_mix or default_mime_mix()
        size_models = size_models or default_size_models()
        self._size_models = size_models
        self._mime_mix = mime_mix
        self.shared_docs: List[Document] = []
        for index in range(n_shared_docs):
            mime = mime_mix.sample(rng)
            size = size_models[mime].sample(rng)
            extension = _extension_for(mime)
            self.shared_docs.append(Document(
                url=f"http://shared.example/doc{index}{extension}",
                mime=mime,
                size_bytes=size,
            ))
        # one draw fixes the private-universe seed; each (client, index)
        # document then derives from it positionally, not sequentially
        self._private_seed = rng.randint(0, 2 ** 62)
        self._private_cache: Dict[Tuple[str, int], Document] = {}

    def _private_doc(self, client_id: str, index: int) -> Document:
        key = (client_id, index)
        document = self._private_cache.get(key)
        if document is None:
            rng = Stream(derive_seed(self._private_seed,
                                     f"{client_id}:{index}"))
            mime = self._mime_mix.sample(rng)
            size = self._size_models[mime].sample(rng)
            extension = _extension_for(mime)
            document = Document(
                url=f"http://{client_id}.example/p{index}{extension}",
                mime=mime,
                size_bytes=size,
            )
            self._private_cache[key] = document
        return document

    def sample_document(self, client_id: str,
                        rng: Optional[Stream] = None) -> Document:
        """One document reference for ``client_id``, drawn from ``rng``
        (default: the universe's own stream)."""
        if rng is None:
            rng = self.rng
        if rng.random() < self.shared_fraction:
            rank = rng.zipf_rank(len(self.shared_docs), self.zipf_alpha)
            return self.shared_docs[rank]
        index = rng.zipf_rank(self.n_private_per_user, 1.0)
        return self._private_doc(client_id, index)

    def sample_batch(self, client_ids: Sequence[str],
                     rng: Stream) -> List[Document]:
        """One document per client id, batch-drawn from ``rng``.

        Semantically one shared/private coin plus one Zipf rank per
        document, like :meth:`sample_document`, but with the uniforms
        drawn in batches and the inverse-CDF constants hoisted out of
        the loop — the trace generator's per-bucket hot path.
        """
        count = len(client_ids)
        choices = rng.random_batch(count)
        uniforms = rng.random_batch(count)
        shared_fraction = self.shared_fraction
        shared_docs = self.shared_docs
        n_shared = len(shared_docs)
        alpha = self.zipf_alpha
        # shared-rank inversion constants (see Stream.zipf_rank)
        if alpha == 1.0:
            shared_h = math.log(n_shared) + 0.5772156649
            shared_c = shared_inv = one_minus = 0.0
        else:
            one_minus = 1.0 - alpha
            shared_c = (n_shared ** one_minus - 1.0) / one_minus
            shared_inv = 1.0 / one_minus
            shared_h = 0.0
        private_h = math.log(self.n_private_per_user) + 0.5772156649
        private_top = self.n_private_per_user - 1
        shared_top = n_shared - 1
        private_doc = self._private_doc
        exp = math.exp
        documents = []
        append = documents.append
        for client_id, choice, u in zip(client_ids, choices, uniforms):
            if choice < shared_fraction:
                if alpha == 1.0:
                    rank = int(exp(u * shared_h)) - 1
                else:
                    rank = int((u * shared_c * one_minus + 1.0)
                               ** shared_inv) - 1
                if rank < 0:
                    rank = 0
                elif rank > shared_top:
                    rank = shared_top
                append(shared_docs[rank])
            else:
                index = int(exp(u * private_h)) - 1
                if index < 0:
                    index = 0
                elif index > private_top:
                    index = private_top
                append(private_doc(client_id, index))
        return documents


def _extension_for(mime: str) -> str:
    return {
        "image/gif": ".gif",
        "image/jpeg": ".jpg",
        "text/html": ".html",
    }.get(mime, ".bin")


class BurstCascade:
    """Multiplicative cascade: piecewise-constant log-normal modulators
    at several timescales, multiplied together.

    Each level's multiplier has unit mean; resampling epochs at the
    level's period keeps correlated fluctuations alive at that scale.
    The product exhibits bursts at *all* chosen scales — a simple and
    controllable stand-in for the self-similar traffic of [18, 27, 35].

    Each (level, epoch) multiplier is a pure function of the cascade's
    seed — derived by hash, not drawn sequentially — so ``factor(t)``
    may be evaluated at arbitrary times in arbitrary order and always
    answers the same, which makes rate evaluation time-shardable.
    """

    def __init__(self, rng: Stream,
                 periods_s: Sequence[float] = (1800.0, 300.0, 30.0, 2.0),
                 sigma: float = 0.15) -> None:
        self.rng = rng
        self.periods = list(periods_s)
        self.sigma = sigma
        # one draw fixes the cascade; every multiplier derives from it
        self._seed = rng.randint(0, 2 ** 62)
        self._epochs = [-1] * len(self.periods)
        self._factors = [1.0] * len(self.periods)

    def _multiplier(self, level: int, epoch: int) -> float:
        rng = Stream(derive_seed(self._seed, f"{level}:{epoch}"))
        # unit-mean log-normal: mu = -sigma^2/2
        return rng.lognormal(-self.sigma * self.sigma / 2.0, self.sigma)

    def factor(self, t: float) -> float:
        product = 1.0
        epochs = self._epochs
        factors = self._factors
        for level, period in enumerate(self.periods):
            epoch = int(t / period)
            if epoch != epochs[level]:
                epochs[level] = epoch
                factors[level] = self._multiplier(level, epoch)
            product *= factors[level]
        return product


def daily_cycle_factor(t: float, trough_hour: float = 7.5,
                       amplitude: float = 0.65) -> float:
    """Unit-mean 24-hour modulation with its minimum at ``trough_hour``.

    Figure 6(a) shows the Berkeley dialup cycle bottoming out around
    07:30 and peaking in the evening; amplitude 0.65 gives the observed
    ~2.2x peak-to-average ratio once bursts are layered on.
    """
    hours = (t / 3600.0) % 24.0
    phase = 2.0 * math.pi * (hours - trough_hour) / 24.0
    return 1.0 - amplitude * math.cos(phase)


class TraceGenerator:
    """Generates a timestamped, sorted synthetic request trace.

    The arrival process is sampled one absolute one-second bucket at a
    time; bucket ``k`` (covering ``[k, k+1)``) draws everything —
    arrival count, timestamp offsets, clients, documents — from a
    stream derived from ``(seed, k)``.  Window requests that cover only
    part of a bucket regenerate the whole bucket and emit the records
    that fall inside the window, so any split of ``[0, T)`` into
    subwindows concatenates to exactly the single-call trace.
    """

    def __init__(
        self,
        seed: int = 1997,
        n_users: int = 8000,
        mean_rate_rps: float = 5.8,
        universe: Optional[DocumentUniverse] = None,
        with_daily_cycle: bool = True,
        with_bursts: bool = True,
        burst_sigma: float = 0.15,
    ) -> None:
        streams = RandomStreams(seed)
        self.seed = seed
        self.rng = streams.stream("tracegen")
        self.n_users = n_users
        self.mean_rate_rps = mean_rate_rps
        self.universe = universe if universe is not None else \
            DocumentUniverse(streams.stream("universe"))
        self.with_daily_cycle = with_daily_cycle
        self.cascade = BurstCascade(
            streams.stream("bursts"), sigma=burst_sigma) \
            if with_bursts else None
        self._bucket_seed = derive_seed(seed, "tracegen:bucket")
        self._client_names: List[str] = []
        self._client_zipf_alpha = 0.8

    def rate_at(self, t: float) -> float:
        rate = self.mean_rate_rps
        if self.with_daily_cycle:
            rate *= daily_cycle_factor(t)
        if self.cascade is not None:
            rate *= self.cascade.factor(t)
        return rate

    def _pick_client(self) -> str:
        rank = self.rng.zipf_rank(self.n_users, self._client_zipf_alpha)
        return f"client{rank}"

    def _client_name(self, rank: int) -> str:
        names = self._client_names
        if not names:
            names = self._client_names = [
                f"client{index}" for index in range(self.n_users)]
        return names[rank]

    def _bucket_records(self, bucket: int) -> List[TraceRecord]:
        """All records of absolute bucket ``[bucket, bucket + 1)``,
        sorted by timestamp — a pure function of (seed, bucket)."""
        rng = Stream(derive_seed(self._bucket_seed, str(bucket)))
        t = float(bucket)
        count = poisson_variate(rng, self.rate_at(t))
        if not count:
            return []
        offsets = rng.random_batch(count)
        client_ranks = rng.zipf_rank_batch(
            self.n_users, self._client_zipf_alpha, count)
        names = self._client_names
        if not names:
            names = self._client_names = [
                f"client{index}" for index in range(self.n_users)]
        clients = [names[rank] for rank in client_ranks]
        documents = self.universe.sample_batch(clients, rng)
        make = TraceRecord
        records = [
            make(t + offset, client_id, document.url, document.mime,
                 document.size_bytes)
            for offset, client_id, document in zip(
                offsets, clients, documents)
        ]
        # TraceRecord is a tuple with the timestamp first, so a plain
        # sort orders by time (ties, vanishingly rare with float
        # offsets, break deterministically by the remaining fields)
        records.sort()
        return records

    def iter_generate(self, duration_s: float,
                      start_s: float = 0.0) -> Iterator[TraceRecord]:
        """Stream the trace for [start_s, start_s + duration_s).

        Records are produced one one-second bucket at a time — the
        non-homogeneous process's natural chunk.  Buckets are aligned
        to the absolute integer-second grid and each draws from its own
        derived stream, so the records emitted for any window are
        exactly the single-call trace restricted to that window:
        concatenating ``[0, t)`` and ``[t, T)`` — across calls, or even
        across freshly constructed generators with the same seed —
        reproduces ``[0, T)`` record-for-record.  Only one bucket is
        ever materialized, which is what lets a multi-hour,
        multi-million-request workload feed the playback engine with
        bounded memory.
        """
        if duration_s <= 0:
            return
        end = start_s + duration_s
        bucket = math.floor(start_s)
        bucket_records = self._bucket_records
        while bucket < end:
            records = bucket_records(bucket)
            if records:
                if start_s <= bucket and end >= bucket + 1:
                    yield from records
                else:
                    for record in records:
                        if start_s <= record.timestamp < end:
                            yield record
            bucket += 1

    def generate(self, duration_s: float,
                 start_s: float = 0.0) -> List[TraceRecord]:
        """Trace covering [start_s, start_s + duration_s), in memory."""
        return list(self.iter_generate(duration_s, start_s=start_s))


def iter_fixed_jpeg_trace(
    rate_rps: float,
    n_requests: int,
    n_images: int = 50,
    image_size_bytes: int = 10240,
    seed: int = 1997,
    n_clients: int = 100,
) -> Iterator[TraceRecord]:
    """Stream exactly ``n_requests`` of the Section 4.6 fixed-JPEG
    workload (Poisson arrivals at ``rate_rps``), one record at a time.

    The count-bounded streaming twin of :func:`fixed_jpeg_trace`: a
    20-million-request replay in the paper's style needs no more memory
    than a single :class:`TraceRecord`.  Deterministic in ``seed``, and
    draw-for-draw identical to the pre-vectorized implementation: the
    URL/client strings are precomputed and the inter-arrival gaps are
    batch-sampled, but the underlying RNG sequence is unchanged.
    """
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = RandomStreams(seed).stream("fixed-jpeg")
    mean_gap = 1.0 / rate_rps
    urls = [f"http://bench.example/img{index}.jpg"
            for index in range(n_images)]
    clients = [f"client{index}" for index in range(n_clients)]
    make = TraceRecord
    batch = rng.exponential_batch
    chunk_size = 8192
    t = 0.0
    index = 0
    while index < n_requests:
        gaps = batch(mean_gap, min(chunk_size, n_requests - index))
        for gap in gaps:
            t += gap
            yield make(
                t,
                clients[index % n_clients],
                urls[index % n_images],
                MIME_JPEG,
                image_size_bytes,
            )
            index += 1


def fixed_jpeg_trace(
    rate_rps: float,
    duration_s: float,
    n_images: int = 50,
    image_size_bytes: int = 10240,
    seed: int = 1997,
    n_clients: int = 100,
) -> List[TraceRecord]:
    """The Table 2 scalability workload: constant-rate requests cycling
    over a fixed set of ~10 KB JPEGs (all cache-resident, so the cache
    miss penalty never clouds the scaling measurement)."""
    rng = RandomStreams(seed).stream("fixed-jpeg")
    urls = [f"http://bench.example/img{index}.jpg"
            for index in range(n_images)]
    clients = [f"client{index}" for index in range(n_clients)]
    records = []
    t = 0.0
    index = 0
    while t < duration_s:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            break
        records.append(TraceRecord(
            timestamp=t,
            client_id=clients[index % n_clients],
            url=urls[index % n_images],
            mime=MIME_JPEG,
            size_bytes=image_size_bytes,
        ))
        index += 1
    return records
