"""Workload substrate: synthetic stand-in for the Berkeley dialup trace.

The paper's measurements rest on a 1.5-month, ~20-million-request HTTP
trace of the UC Berkeley Home IP population.  We cannot have that trace;
this package generates synthetic traces calibrated to every statistic the
paper publishes about it:

* MIME mix: GIF 50 %, HTML 22 %, JPEG 18 % (Section 4.1);
* mean content sizes: HTML 5131 B, GIF 3428 B, JPEG 12070 B (Figure 5),
  with the GIF distribution's two plateaus (icons under 1 KB, photos
  above) and the JPEG fall-off below 1 KB;
* daily-cycle request rates with bursts at every time scale
  (Figure 6: 5.8 req/s average, 12.6 req/s peak over 2-minute buckets);
* Zipf-like document popularity, which drives the cache hit-rate study.

The playback engine reproduces the paper's load generator: "the engine
can generate requests at a constant (and dynamically tunable) rate, or it
can faithfully play back a trace according to the timestamps in the
trace file."
"""

from repro.workload.distributions import (
    MimeMix,
    SizeModel,
    default_mime_mix,
    default_size_models,
)
from repro.workload.trace import TraceRecord, load_trace, save_trace
from repro.workload.tracegen import DocumentUniverse, TraceGenerator
from repro.workload.playback import PlaybackEngine, RequestOutcome
from repro.workload.burstiness import (
    bucket_counts,
    burstiness_report,
    index_of_dispersion,
    overflow_line_for_fraction,
    utilization_line,
)

__all__ = [
    "DocumentUniverse",
    "MimeMix",
    "PlaybackEngine",
    "RequestOutcome",
    "SizeModel",
    "TraceGenerator",
    "TraceRecord",
    "bucket_counts",
    "burstiness_report",
    "default_mime_mix",
    "default_size_models",
    "index_of_dispersion",
    "load_trace",
    "overflow_line_for_fraction",
    "save_trace",
    "utilization_line",
]
