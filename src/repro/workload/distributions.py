"""Content-size and MIME-mix models calibrated to Figure 5.

Figure 5's published facts, which these models are tuned to match:

* average content lengths — HTML 5131 B, GIF 3428 B, JPEG 12070 B;
* the GIF distribution has **two plateaus**: one under 1 KB (icons,
  bullets) and one over 1 KB (photos, cartoons), and the paper's 1 KB
  distillation threshold "exactly separates these two classes";
* the JPEG distribution "falls off rapidly under the 1 KB mark";
* "most content accessed on the web is small (considerably less than
  1 KB), but the average byte transferred is part of large content
  (3-12 KB)".

GIF is a 50/50 mixture of an icon mode (mean ≈ 350 B) and a photo mode
(mean ≈ 6.5 KB); HTML and JPEG are single log-normals, JPEG truncated
below 1 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.rng import Stream
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG, MIME_OCTET

#: Published mean sizes (bytes), Figure 5 caption.
MEAN_HTML = 5131
MEAN_GIF = 3428
MEAN_JPEG = 12070

#: Published MIME shares, Section 4.1.
SHARE_GIF = 0.50
SHARE_HTML = 0.22
SHARE_JPEG = 0.18
SHARE_OTHER = 1.0 - SHARE_GIF - SHARE_HTML - SHARE_JPEG


@dataclass(frozen=True)
class Mode:
    """One log-normal component of a size distribution."""

    mean: float
    sigma: float
    weight: float = 1.0
    min_bytes: int = 32
    max_bytes: int = 2_000_000


class SizeModel:
    """Mixture-of-log-normals size distribution for one MIME type."""

    def __init__(self, modes: List[Mode]) -> None:
        if not modes:
            raise ValueError("at least one mode required")
        total = sum(mode.weight for mode in modes)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.modes = modes
        self._weights = [mode.weight / total for mode in modes]

    def sample(self, rng: Stream) -> int:
        mode = rng.weighted_choice(self.modes, self._weights)
        size = rng.lognormal_mean(mode.mean, mode.sigma)
        return int(max(mode.min_bytes, min(mode.max_bytes, size)))

    def mean_estimate(self, rng: Stream, n: int = 20000) -> float:
        return sum(self.sample(rng) for _ in range(n)) / n


def default_size_models() -> Dict[str, SizeModel]:
    """Per-MIME size models matching the Figure 5 calibration targets.

    Mode means are set slightly below the published targets because
    truncation at ``min_bytes``/``max_bytes`` shifts the realized mean;
    the calibration test in ``tests/workload`` checks the *realized*
    means against the paper's numbers.
    """
    return {
        MIME_HTML: SizeModel([
            Mode(mean=MEAN_HTML, sigma=1.1, min_bytes=128),
        ]),
        MIME_GIF: SizeModel([
            # icon plateau: bullets, rules, spacers — all under 1 KB
            Mode(mean=350, sigma=0.7, weight=0.5, min_bytes=35,
                 max_bytes=1000),
            # photo plateau: images worth distilling
            Mode(mean=6500, sigma=0.9, weight=0.5, min_bytes=1024),
        ]),
        MIME_JPEG: SizeModel([
            # single mode, truncated below 1 KB ("falls off rapidly
            # under the 1KB mark")
            Mode(mean=MEAN_JPEG, sigma=0.9, min_bytes=1024),
        ]),
        MIME_OCTET: SizeModel([
            Mode(mean=4000, sigma=1.2, min_bytes=64),
        ]),
    }


class MimeMix:
    """Categorical distribution over MIME types."""

    def __init__(self, shares: Dict[str, float]) -> None:
        if not shares:
            raise ValueError("shares must be non-empty")
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("shares must sum to a positive value")
        self._types = list(shares)
        self._weights = [shares[t] / total for t in self._types]

    def sample(self, rng: Stream) -> str:
        return rng.weighted_choice(self._types, self._weights)

    @property
    def shares(self) -> Dict[str, float]:
        return dict(zip(self._types, self._weights))


def default_mime_mix() -> MimeMix:
    return MimeMix({
        MIME_GIF: SHARE_GIF,
        MIME_HTML: SHARE_HTML,
        MIME_JPEG: SHARE_JPEG,
        MIME_OCTET: SHARE_OTHER,
    })


def size_histogram(sizes: List[int], bins_per_decade: int = 8,
                   max_exponent: int = 7) -> List[Tuple[float, float]]:
    """Log-bucketed probability histogram — the Figure 5 rendering.

    Returns (bucket center in bytes, probability mass) pairs.
    """
    import math

    if not sizes:
        return []
    edges = [
        10 ** (exponent / bins_per_decade)
        for exponent in range(1 * bins_per_decade,
                              max_exponent * bins_per_decade + 1)
    ]
    counts = [0] * (len(edges) + 1)
    for size in sizes:
        index = 0
        while index < len(edges) and size > edges[index]:
            index += 1
        counts[index] += 1
    total = len(sizes)
    result = []
    previous_edge = 10.0
    for index, edge in enumerate(edges):
        center = math.sqrt(previous_edge * edge)
        result.append((center, counts[index] / total))
        previous_edge = edge
    return result
