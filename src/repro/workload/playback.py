"""The trace playback engine (Section 4.1).

"In order to realistically stress test TranSend, we created a high
performance trace playback engine.  The engine can generate requests at a
constant (and dynamically tunable) rate, or it can faithfully play back a
trace according to the timestamps in the trace file."

The engine is a simulation component: it submits each request to a
*service adapter* — any callable ``submit(record) -> Event`` whose event
fires with a response object — and records per-request outcomes for the
analysis layer.  Three modes:

* :meth:`PlaybackEngine.play` — faithful timestamps; accepts any
  iterable of records, so a streaming trace source (a generator, or
  :func:`~repro.workload.trace.iter_trace` over a file) replays without
  ever materializing the full trace;
* :meth:`PlaybackEngine.play_aligned` — faithful timestamps against an
  absolute clock (no first-record anchoring), the time-shard form;
* :meth:`PlaybackEngine.play_scheduled` — the callback-driven twin of
  ``play_aligned``: the arrival pump schedules itself on the kernel
  heap instead of sleeping in a player process, the million-request
  replay path;
* :meth:`PlaybackEngine.constant_rate` — Poisson arrivals at a fixed rate;
* :meth:`PlaybackEngine.ramp` — a piecewise-constant rate schedule, used
  by the Figure 8 self-tuning and Table 2 scalability experiments to
  sweep offered load upward during a single run.

For million-request replays, construct the engine with
``record_outcomes=False``: per-request :class:`RequestOutcome` objects
are skipped and only the O(1) :class:`PlaybackStats` aggregate is kept,
so memory stays bounded regardless of trace length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.rng import Stream
from repro.workload.trace import TraceRecord

SubmitFn = Callable[[TraceRecord], Event]

#: default capacity of the completion-timestamp ring buffer kept by
#: :class:`PlaybackStats` for windowed-throughput queries.
THROUGHPUT_RING = 1024


@dataclass
class PlaybackStats:
    """O(1) streaming aggregate over all playback requests.

    Always maintained, whether or not per-request outcomes are recorded
    — it is the only record-keeping that survives a bounded-memory
    million-request replay.  ``recent_completions`` is a small ring of
    the latest completion timestamps, kept so
    :meth:`PlaybackEngine.throughput` answers in *both* modes instead
    of silently reading an empty outcome list.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    latency_sum: float = 0.0
    latency_min: float = float("inf")
    latency_max: float = 0.0
    recent_completions: deque = field(
        default_factory=lambda: deque(maxlen=THROUGHPUT_RING))

    def observe_success(self, latency: float,
                        completed_at: Optional[float] = None) -> None:
        self.completed += 1
        self.latency_sum += latency
        if latency < self.latency_min:
            self.latency_min = latency
        if latency > self.latency_max:
            self.latency_max = latency
        if completed_at is not None:
            self.recent_completions.append(completed_at)

    def observe_failure(self) -> None:
        self.failed += 1

    @property
    def mean_latency(self) -> Optional[float]:
        if not self.completed:
            return None
        return self.latency_sum / self.completed

    def merge(self, other: "PlaybackStats") -> None:
        """Fold another aggregate into this one (time-sharded replay
        merge).  Counters and latency aggregates combine exactly; the
        completion-timestamp ring is a live-engine trailing view in the
        source engine's own clock and is deliberately not merged —
        shards run on separate clocks."""
        self.submitted += other.submitted
        self.completed += other.completed
        self.failed += other.failed
        self.latency_sum += other.latency_sum
        if other.latency_min < self.latency_min:
            self.latency_min = other.latency_min
        if other.latency_max > self.latency_max:
            self.latency_max = other.latency_max


@dataclass
class RequestOutcome:
    """One completed (or failed) playback request."""

    record: TraceRecord
    submitted_at: float
    completed_at: Optional[float]
    ok: bool
    response: Any = None
    error: Optional[str] = None
    #: id of this request's span tree when it was sampled for tracing.
    trace_id: Optional[str] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class PlaybackEngine:
    """Drives a service adapter from a trace or a rate process."""

    def __init__(self, env: Environment, submit: SubmitFn,
                 rng: Optional[Stream] = None,
                 timeout_s: Optional[float] = None,
                 record_outcomes: bool = True,
                 on_success: Optional[Callable[[Any, float], None]]
                 = None,
                 throughput_ring: int = THROUGHPUT_RING) -> None:
        self.env = env
        self.submit = submit
        self.rng = rng
        self.timeout_s = timeout_s
        #: False = bounded-memory mode: keep only :attr:`stats`, never
        #: append to :attr:`outcomes` (which stays empty).
        self.record_outcomes = record_outcomes
        #: optional streaming observer called with (response, latency_s)
        #: for every completed request — how a million-request replay
        #: feeds exact-percentile accumulators (LatencyStats) without
        #: per-request outcome objects.
        self.on_success = on_success
        self.outcomes: List[RequestOutcome] = []
        self.stats = PlaybackStats(
            recent_completions=deque(maxlen=max(0, throughput_ring)))
        self.in_flight = 0
        self.max_in_flight = 0
        # Bounded-memory playback with no tracer and no per-request
        # timeout needs none of the process machinery per request: the
        # response event gets a completion callback instead of a whole
        # waiting generator.  A 10M-request replay saves two kernel
        # events and two generator resumes per request this way.
        self._fast_done = self._make_fast_done()

    def _make_fast_done(self) -> Callable[[Event, float], None]:
        env = self.env
        stats = self.stats
        def fast_done(event: Event, started: float) -> None:
            if event._ok:
                latency = env._now - started
                stats.observe_success(latency, env._now)
                on_success = self.on_success
                if on_success is not None:
                    on_success(event._value, latency)
            else:
                stats.observe_failure()
            self.in_flight -= 1
        return fast_done

    # -- modes ----------------------------------------------------------------

    def play(self, records: Iterable[TraceRecord],
             time_offset: float = 0.0):
        """Process generator: faithful playback by trace timestamps.

        ``records`` may be any iterable — a list, a generator, or a
        streaming file reader — and is consumed one record at a time;
        the first record's timestamp anchors the trace's time origin.
        """
        env = self.env
        origin = None
        for record in records:
            if origin is None:
                origin = record.timestamp
            due = time_offset + (record.timestamp - origin)
            wait = due - env.now
            if wait > 0:
                yield env.timeout(wait)
            self._launch(record)

    def play_aligned(self, records: Iterable[TraceRecord],
                     clock_origin: float = 0.0):
        """Process generator: playback against an absolute clock.

        A record with timestamp ``ts`` is submitted at simulated time
        ``ts - clock_origin`` — no anchoring to the first record.  This
        is what a time shard of a longer trace needs: every window of
        the same trace replays on the same global timeline, so a
        warm-up lead-in and its counted window pace each other exactly
        as the unsharded run would (see :mod:`repro.fanout.timeshard`).
        Records whose due time is already past submit immediately.
        """
        env = self.env
        for record in records:
            wait = (record.timestamp - clock_origin) - env.now
            if wait > 0:
                yield env.timeout(wait)
            self._launch(record)

    def play_scheduled(self, records: Iterable[TraceRecord],
                       clock_origin: float = 0.0) -> None:
        """Callback-driven twin of :meth:`play_aligned` — no process.

        The arrival pump schedules itself straight on the kernel heap
        (`Environment.schedule_call`): one event and one plain callback
        per record, where a player process pays a Timeout event plus a
        generator resume.  Same absolute-clock semantics as
        :meth:`play_aligned`; call it once and the replay is live —
        there is nothing to pass to ``env.process``.  This is the
        million-request replay path (the kernel benchmark and
        :mod:`repro.fanout.timeshard` both drive it).
        """
        env = self.env
        iterator = iter(records)
        launch = self._launch
        schedule_call = env.schedule_call

        def pump(event: Optional[Event] = None) -> None:
            if event is not None:
                launch(event._value)
            for record in iterator:
                wait = (record.timestamp - clock_origin) - env._now
                if wait > 0.0:
                    schedule_call(wait, pump, record)
                    return
                launch(record)

        pump()

    def constant_rate(self, rate_rps: float, duration_s: float,
                      records: Sequence[TraceRecord]):
        """Process generator: Poisson arrivals cycling over ``records``."""
        if self.rng is None:
            raise ValueError("constant_rate mode requires an RNG stream")
        if rate_rps <= 0:
            raise ValueError("rate must be positive")
        end = self.env.now + duration_s
        index = 0
        while True:
            gap = self.rng.exponential(1.0 / rate_rps)
            if self.env.now + gap >= end:
                return
            yield self.env.timeout(gap)
            self._launch(records[index % len(records)])
            index += 1

    def ramp(self, schedule: Sequence[Tuple[float, float]],
             records: Sequence[TraceRecord]):
        """Process generator: rate steps given as (duration_s, rate_rps).

        A rate of 0 pauses offered load for that step.
        """
        if self.rng is None:
            raise ValueError("ramp mode requires an RNG stream")
        index = 0
        for duration_s, rate_rps in schedule:
            if rate_rps <= 0:
                yield self.env.timeout(duration_s)
                continue
            end = self.env.now + duration_s
            while True:
                gap = self.rng.exponential(1.0 / rate_rps)
                if self.env.now + gap >= end:
                    remaining = end - self.env.now
                    if remaining > 0:
                        yield self.env.timeout(remaining)
                    break
                yield self.env.timeout(gap)
                self._launch(records[index % len(records)])
                index += 1

    # -- request lifecycle ---------------------------------------------------------

    def _launch(self, record: TraceRecord) -> None:
        if self.record_outcomes or self.timeout_s is not None \
                or self.env.tracer is not None:
            self.env.process(self._request(record))
            return
        # fast path: callback completion, no per-request process
        env = self.env
        stats = self.stats
        stats.submitted += 1
        in_flight = self.in_flight + 1
        self.in_flight = in_flight
        if in_flight > self.max_in_flight:
            self.max_in_flight = in_flight
        started = env._now
        try:
            response_event = self.submit(record)
        except Interrupt:
            raise
        except Exception:
            stats.observe_failure()
            self.in_flight -= 1
            return
        fast_done = self._fast_done
        callbacks = response_event.callbacks
        if callbacks is None:
            # already processed: complete synchronously
            fast_done(response_event, started)
        else:
            callbacks.append(
                lambda event, _started=started: fast_done(event,
                                                          _started))

    def _request(self, record: TraceRecord):
        started = self.env.now
        self.stats.submitted += 1
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        tracer = self.env.tracer
        root = None
        if tracer is not None:
            # client-side root span: covers the whole request including
            # queueing/network the service never sees.  The hand-off
            # rides the synchronous submit() chain into the front end.
            root = tracer.open_trace("request", category="other")
            if root is not None:
                url = getattr(record, "url", None)
                if url is not None:
                    root.annotate(url=url)
        trace_id = root.trace_id if root is not None else None
        try:
            if tracer is not None:
                tracer.hand_off(root)
            response_event = self.submit(record)
            if tracer is not None:
                # the chain either consumed the hand-off synchronously
                # or never will (no instrumented ingress): clear it so
                # it cannot leak into an unrelated request
                tracer.drop_pending()
            if self.timeout_s is not None:
                timer = self.env.timeout(self.timeout_s)
                condition = yield self.env.any_of([response_event, timer])
                if response_event not in condition:
                    if root is not None:
                        root.annotate(outcome="timeout")
                    self.stats.observe_failure()
                    if self.record_outcomes:
                        self.outcomes.append(RequestOutcome(
                            record=record, submitted_at=started,
                            completed_at=None, ok=False, error="timeout",
                            trace_id=trace_id))
                    return
                response = condition[response_event]
            else:
                response = yield response_event
            if root is not None:
                root.annotate(
                    outcome=getattr(response, "status", "ok"))
            self.stats.observe_success(self.env.now - started,
                                       self.env.now)
            if self.on_success is not None:
                self.on_success(response, self.env.now - started)
            if self.record_outcomes:
                self.outcomes.append(RequestOutcome(
                    record=record, submitted_at=started,
                    completed_at=self.env.now, ok=True, response=response,
                    trace_id=trace_id))
        except Interrupt:
            raise
        except Exception as error:  # adapter-level failure
            if root is not None:
                root.annotate(outcome=f"error:{type(error).__name__}")
            self.stats.observe_failure()
            if self.record_outcomes:
                self.outcomes.append(RequestOutcome(
                    record=record, submitted_at=started, completed_at=None,
                    ok=False, error=f"{type(error).__name__}: {error}",
                    trace_id=trace_id))
        finally:
            if root is not None:
                root.finish()
            self.in_flight -= 1

    # -- summary -------------------------------------------------------------------

    def completed(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    def failed(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def latencies(self) -> List[float]:
        return [outcome.latency for outcome in self.completed()
                if outcome.latency is not None]

    def throughput(self, window_s: float) -> float:
        """Completed requests/second over the trailing window.

        Works in both modes: with ``record_outcomes=True`` it scans the
        outcome list; in bounded-memory mode it reads the completion
        ring in :attr:`PlaybackStats.recent_completions`.  If the ring
        has wrapped past the window's horizon the count would silently
        undercount, so that case raises instead — resize with the
        ``throughput_ring`` constructor argument.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        horizon = self.env.now - window_s
        if self.record_outcomes:
            recent = [
                outcome for outcome in self.outcomes
                if outcome.ok and outcome.completed_at is not None
                and outcome.completed_at >= horizon
            ]
            return len(recent) / window_s
        ring = self.stats.recent_completions
        if self.stats.completed and ring.maxlen == 0:
            raise ValueError(
                "throughput() needs the completion ring in bounded-"
                "memory mode, but this engine was built with "
                "throughput_ring=0")
        if len(ring) == ring.maxlen and ring and ring[0] >= horizon:
            raise ValueError(
                f"throughput window {window_s:g}s reaches past the "
                f"completion ring's {ring.maxlen} retained "
                f"completions; construct PlaybackEngine with a larger "
                f"throughput_ring to widen coverage")
        count = 0
        for completed_at in reversed(ring):
            if completed_at < horizon:
                break
            count += 1
        return count / window_s
