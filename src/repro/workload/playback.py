"""The trace playback engine (Section 4.1).

"In order to realistically stress test TranSend, we created a high
performance trace playback engine.  The engine can generate requests at a
constant (and dynamically tunable) rate, or it can faithfully play back a
trace according to the timestamps in the trace file."

The engine is a simulation component: it submits each request to a
*service adapter* — any callable ``submit(record) -> Event`` whose event
fires with a response object — and records per-request outcomes for the
analysis layer.  Three modes:

* :meth:`PlaybackEngine.play` — faithful timestamps; accepts any
  iterable of records, so a streaming trace source (a generator, or
  :func:`~repro.workload.trace.iter_trace` over a file) replays without
  ever materializing the full trace;
* :meth:`PlaybackEngine.constant_rate` — Poisson arrivals at a fixed rate;
* :meth:`PlaybackEngine.ramp` — a piecewise-constant rate schedule, used
  by the Figure 8 self-tuning and Table 2 scalability experiments to
  sweep offered load upward during a single run.

For million-request replays, construct the engine with
``record_outcomes=False``: per-request :class:`RequestOutcome` objects
are skipped and only the O(1) :class:`PlaybackStats` aggregate is kept,
so memory stays bounded regardless of trace length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.rng import Stream
from repro.workload.trace import TraceRecord

SubmitFn = Callable[[TraceRecord], Event]


@dataclass
class PlaybackStats:
    """O(1) streaming aggregate over all playback requests.

    Always maintained, whether or not per-request outcomes are recorded
    — it is the only record-keeping that survives a bounded-memory
    million-request replay.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    latency_sum: float = 0.0
    latency_min: float = float("inf")
    latency_max: float = 0.0

    def observe_success(self, latency: float) -> None:
        self.completed += 1
        self.latency_sum += latency
        if latency < self.latency_min:
            self.latency_min = latency
        if latency > self.latency_max:
            self.latency_max = latency

    def observe_failure(self) -> None:
        self.failed += 1

    @property
    def mean_latency(self) -> Optional[float]:
        if not self.completed:
            return None
        return self.latency_sum / self.completed


@dataclass
class RequestOutcome:
    """One completed (or failed) playback request."""

    record: TraceRecord
    submitted_at: float
    completed_at: Optional[float]
    ok: bool
    response: Any = None
    error: Optional[str] = None
    #: id of this request's span tree when it was sampled for tracing.
    trace_id: Optional[str] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class PlaybackEngine:
    """Drives a service adapter from a trace or a rate process."""

    def __init__(self, env: Environment, submit: SubmitFn,
                 rng: Optional[Stream] = None,
                 timeout_s: Optional[float] = None,
                 record_outcomes: bool = True,
                 on_success: Optional[Callable[[Any, float], None]]
                 = None) -> None:
        self.env = env
        self.submit = submit
        self.rng = rng
        self.timeout_s = timeout_s
        #: False = bounded-memory mode: keep only :attr:`stats`, never
        #: append to :attr:`outcomes` (which stays empty).
        self.record_outcomes = record_outcomes
        #: optional streaming observer called with (response, latency_s)
        #: for every completed request — how a million-request replay
        #: feeds exact-percentile accumulators (LatencyStats) without
        #: per-request outcome objects.
        self.on_success = on_success
        self.outcomes: List[RequestOutcome] = []
        self.stats = PlaybackStats()
        self.in_flight = 0
        self.max_in_flight = 0

    # -- modes ----------------------------------------------------------------

    def play(self, records: Iterable[TraceRecord],
             time_offset: float = 0.0):
        """Process generator: faithful playback by trace timestamps.

        ``records`` may be any iterable — a list, a generator, or a
        streaming file reader — and is consumed one record at a time;
        the first record's timestamp anchors the trace's time origin.
        """
        env = self.env
        origin = None
        for record in records:
            if origin is None:
                origin = record.timestamp
            due = time_offset + (record.timestamp - origin)
            wait = due - env.now
            if wait > 0:
                yield env.timeout(wait)
            self._launch(record)

    def constant_rate(self, rate_rps: float, duration_s: float,
                      records: Sequence[TraceRecord]):
        """Process generator: Poisson arrivals cycling over ``records``."""
        if self.rng is None:
            raise ValueError("constant_rate mode requires an RNG stream")
        if rate_rps <= 0:
            raise ValueError("rate must be positive")
        end = self.env.now + duration_s
        index = 0
        while True:
            gap = self.rng.exponential(1.0 / rate_rps)
            if self.env.now + gap >= end:
                return
            yield self.env.timeout(gap)
            self._launch(records[index % len(records)])
            index += 1

    def ramp(self, schedule: Sequence[Tuple[float, float]],
             records: Sequence[TraceRecord]):
        """Process generator: rate steps given as (duration_s, rate_rps).

        A rate of 0 pauses offered load for that step.
        """
        if self.rng is None:
            raise ValueError("ramp mode requires an RNG stream")
        index = 0
        for duration_s, rate_rps in schedule:
            if rate_rps <= 0:
                yield self.env.timeout(duration_s)
                continue
            end = self.env.now + duration_s
            while True:
                gap = self.rng.exponential(1.0 / rate_rps)
                if self.env.now + gap >= end:
                    remaining = end - self.env.now
                    if remaining > 0:
                        yield self.env.timeout(remaining)
                    break
                yield self.env.timeout(gap)
                self._launch(records[index % len(records)])
                index += 1

    # -- request lifecycle ---------------------------------------------------------

    def _launch(self, record: TraceRecord) -> None:
        self.env.process(self._request(record))

    def _request(self, record: TraceRecord):
        started = self.env.now
        self.stats.submitted += 1
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        tracer = self.env.tracer
        root = None
        if tracer is not None:
            # client-side root span: covers the whole request including
            # queueing/network the service never sees.  The hand-off
            # rides the synchronous submit() chain into the front end.
            root = tracer.open_trace("request", category="other")
            if root is not None:
                url = getattr(record, "url", None)
                if url is not None:
                    root.annotate(url=url)
        trace_id = root.trace_id if root is not None else None
        try:
            if tracer is not None:
                tracer.hand_off(root)
            response_event = self.submit(record)
            if tracer is not None:
                # the chain either consumed the hand-off synchronously
                # or never will (no instrumented ingress): clear it so
                # it cannot leak into an unrelated request
                tracer.drop_pending()
            if self.timeout_s is not None:
                timer = self.env.timeout(self.timeout_s)
                condition = yield self.env.any_of([response_event, timer])
                if response_event not in condition:
                    if root is not None:
                        root.annotate(outcome="timeout")
                    self.stats.observe_failure()
                    if self.record_outcomes:
                        self.outcomes.append(RequestOutcome(
                            record=record, submitted_at=started,
                            completed_at=None, ok=False, error="timeout",
                            trace_id=trace_id))
                    return
                response = condition[response_event]
            else:
                response = yield response_event
            if root is not None:
                root.annotate(
                    outcome=getattr(response, "status", "ok"))
            self.stats.observe_success(self.env.now - started)
            if self.on_success is not None:
                self.on_success(response, self.env.now - started)
            if self.record_outcomes:
                self.outcomes.append(RequestOutcome(
                    record=record, submitted_at=started,
                    completed_at=self.env.now, ok=True, response=response,
                    trace_id=trace_id))
        except Interrupt:
            raise
        except Exception as error:  # adapter-level failure
            if root is not None:
                root.annotate(outcome=f"error:{type(error).__name__}")
            self.stats.observe_failure()
            if self.record_outcomes:
                self.outcomes.append(RequestOutcome(
                    record=record, submitted_at=started, completed_at=None,
                    ok=False, error=f"{type(error).__name__}: {error}",
                    trace_id=trace_id))
        finally:
            if root is not None:
                root.finish()
            self.in_flight -= 1

    # -- summary -------------------------------------------------------------------

    def completed(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    def failed(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def latencies(self) -> List[float]:
        return [outcome.latency for outcome in self.completed()
                if outcome.latency is not None]

    def throughput(self, window_s: float) -> float:
        """Completed requests/second over the trailing window."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        horizon = self.env.now - window_s
        recent = [
            outcome for outcome in self.outcomes
            if outcome.ok and outcome.completed_at is not None
            and outcome.completed_at >= horizon
        ]
        return len(recent) / window_s
