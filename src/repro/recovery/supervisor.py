"""The self-healing supervisor: notices gray failures and restarts them.

The monitor (Section 3.1.7) pages a human; this component closes the
loop below the manager/front-end tier, where process-peer recovery never
reached.  Three detectors feed one restart executor:

* **end-to-end health probes** — a synchronous request/reply exercising
  the worker's dispatch surface (accept, service-time model, output
  validation), not just beacon liveness.  A hung or zombie worker never
  answers; a corrupt-output worker answers with bytes that fail
  validation.  Probes deliberately bypass the shared SAN links and the
  worker queue: both are stateful (link reservations meter bytes, queue
  depth feeds load reports feeds the lottery), so a probe riding the
  real path would perturb request scheduling and break the
  fault-free-determinism contract;
* **RPC-timeout reports** — manager stubs at the front ends report each
  dispatch timeout ("if the distiller crashes [or wedges], the RPC call
  times out"); enough timeouts against one worker inside the suspicion
  window trigger a restart even between probe sweeps;
* **peer-relative load outliers** — a worker whose queue average in the
  manager's load table sustains far above its same-type peers' median
  is failing slow (or leaking); connection-based detection is blind to
  it because the worker keeps reporting.

The executor applies restart-as-first-resort tempered by the policy's
guard rails: a per-window restart budget, exponential backoff between
consecutive restarts on one node, and flap-detection quarantine that
removes a machine from future placement when restarts on it keep not
sticking.  Every case is accounted in the
:class:`~repro.recovery.ledger.RecoveryLedger` (MTTD/MTTR/availability)
and — when span tracing is on — attached to the trace store as an
auxiliary span tree.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.component import Component
from repro.core.config import SNSConfig
from repro.core.monitor import Alert
from repro.recovery.ledger import FaultCase, RecoveryLedger
from repro.recovery.policy import RecoveryPolicy
from repro.sim.cluster import Cluster
from repro.sim.node import Node


class Supervisor(Component):
    """Probes workers end to end, confirms suspicions, heals by restart."""

    kind = "supervisor"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 config: SNSConfig, fabric: Any,
                 policy: Optional[RecoveryPolicy] = None,
                 ledger: Optional[RecoveryLedger] = None) -> None:
        super().__init__(cluster, node, name)
        self.config = config
        self.fabric = fabric
        self.policy = (policy if policy is not None
                       else RecoveryPolicy()).validate()
        self.ledger = (ledger if ledger is not None
                       else RecoveryLedger(cluster.env))
        #: backoff jitter stream; deterministic per seed, never drawn
        #: unless the policy enables jitter.
        self.rng = cluster.streams.stream("recovery:backoff")
        # detector state
        self._probe_failures: Dict[str, int] = {}
        self._rpc_timeouts: Dict[str, List[float]] = {}
        self._outlier_since: Dict[str, float] = {}
        # executor state
        self._restarting: Set[str] = set()
        self._restart_times: List[float] = []
        self._node_restarts: Dict[str, List[float]] = {}
        self._case_seq = 0
        # counters + operator surface
        self.probes_sent = 0
        self.probe_failures = 0
        self.suspicions = 0
        self.restarts = 0
        self.rejuvenations = 0
        self.backoff_waits = 0
        self.budget_denials = 0
        self.quarantined_nodes: List[str] = []
        self.alerts: List[Alert] = []

    # -- processes ----------------------------------------------------------

    def _start_processes(self) -> None:
        self.every(self.policy.probe_interval_s, self._probe_tick)
        self.every(self.policy.outlier_interval_s, self._outlier_tick)
        if self.policy.rejuvenation_interval_s is not None:
            self.every(self.policy.rejuvenation_interval_s,
                       self._rejuvenation_tick)

    # -- detector 1: end-to-end health probes -------------------------------

    def _probe_tick(self) -> None:
        for stub in sorted(self.fabric.workers.values(),
                           key=lambda stub: stub.name):
            if not stub.alive or stub.name in self._restarting:
                continue
            self.probes_sent += 1
            self.spawn(self._probe_one(stub))
        for brick in sorted(self._bricks().values(),
                            key=lambda brick: brick.name):
            if brick.name in self._restarting:
                continue
            if not brick.alive:
                # no manager tracks bricks, so a kill -9 has no
                # process-peer: the supervisor is the only thing
                # that notices the corpse
                self._begin_restart(brick, "brick-dead",
                                    "brick process gone")
                continue
            self.probes_sent += 1
            self.spawn(self._probe_one(brick))

    def _bricks(self) -> Dict[str, Any]:
        population = getattr(self.fabric, "brick_population", None)
        return population() if population is not None else {}

    def _san_partitioned(self, stub) -> bool:
        """True when the SAN partition model says this component's node
        is cut off from the supervisor's.  Restarting it would be a
        wrong decision — the process is healthy, only the network
        between us is gone — and the re-fork would double the worker
        the moment the partition heals."""
        partitions = getattr(self.cluster.network, "partitions", None)
        if partitions is None:
            return False
        return not partitions.node_reachable(self.node.name,
                                             stub.node.name)

    def _probe_one(self, stub):
        policy = self.policy
        reply = stub.probe_reply()
        if reply is None:
            # no answer will ever come: wait out the timeout, then —
            # unless the stub visibly died (the manager's job, not
            # ours) — count a probe failure
            yield self.env.timeout(policy.probe_timeout_s)
            if stub.alive and not stub.is_partitioned and stub.node.up \
                    and not self._san_partitioned(stub):
                self._probe_failed(stub, "probe never answered")
            else:
                self._probe_failures.pop(stub.name, None)
            return
        service_s, nominal_s, output_ok = reply
        delay = policy.probe_rtt_s + service_s
        if delay > policy.probe_timeout_s:
            yield self.env.timeout(policy.probe_timeout_s)
            if stub.alive:
                self._probe_failed(
                    stub, f"probe service {service_s:.2f}s past "
                          f"{policy.probe_timeout_s:.1f}s timeout")
            return
        yield self.env.timeout(delay)
        if not stub.alive:
            return
        if not output_ok:
            # corruption is a definite end-to-end signal: one strike
            self._probe_failures.pop(stub.name, None)
            self._begin_restart(stub, "probe-validate",
                                "probe output failed validation")
            return
        if nominal_s > 0 and service_s > policy.probe_slow_ratio \
                * nominal_s:
            # answered, but far slower than this worker's own nominal:
            # fail-slow or leak inflation below the RPC-timeout radar
            self._probe_failed(
                stub, f"probe took {service_s * 1e3:.1f}ms vs "
                      f"{nominal_s * 1e3:.1f}ms nominal")
            return
        self._probe_failures.pop(stub.name, None)

    def _probe_failed(self, stub, detail: str) -> None:
        self.probe_failures += 1
        count = self._probe_failures.get(stub.name, 0) + 1
        self._probe_failures[stub.name] = count
        if count >= self.policy.probe_confirmations:
            self._probe_failures.pop(stub.name, None)
            self._begin_restart(stub, "probe", detail)

    # -- detector 2: RPC-timeout reports from manager stubs ------------------

    def note_rpc_timeout(self, worker_name: str) -> None:
        """A front end's dispatch against ``worker_name`` timed out."""
        if not self.alive:
            return
        stub = self.fabric.workers.get(worker_name)
        if stub is None or not stub.alive or stub.is_partitioned \
                or worker_name in self._restarting \
                or self._san_partitioned(stub):
            return
        now = self.env.now
        events = [t for t in self._rpc_timeouts.get(worker_name, [])
                  if now - t <= self.policy.suspicion_window_s]
        events.append(now)
        self._rpc_timeouts[worker_name] = events
        if len(events) >= self.policy.rpc_timeout_confirmations:
            self._rpc_timeouts.pop(worker_name, None)
            self._begin_restart(stub, "rpc-timeout",
                                f"{len(events)} dispatch timeouts in "
                                f"{self.policy.suspicion_window_s:.0f}s")

    # -- detector 3: peer-relative load outliers -----------------------------

    def _outlier_tick(self) -> None:
        policy = self.policy
        manager = self.fabric.manager
        if manager is None or not manager.alive:
            self._outlier_since.clear()
            return
        by_type: Dict[str, list] = {}
        for info in manager.workers.values():
            by_type.setdefault(info.worker_type, []).append(info)
        now = self.env.now
        for infos in by_type.values():
            if len(infos) < policy.outlier_min_peers:
                for info in infos:
                    self._outlier_since.pop(info.name, None)
                continue
            loads = sorted(info.queue_avg for info in infos)
            median = loads[len(loads) // 2]
            threshold = max(policy.outlier_floor,
                            policy.outlier_ratio * median)
            for info in infos:
                if info.queue_avg <= threshold:
                    self._outlier_since.pop(info.name, None)
                    continue
                since = self._outlier_since.setdefault(info.name, now)
                if now - since < policy.outlier_sustain_s:
                    continue
                self._outlier_since.pop(info.name, None)
                stub = self.fabric.workers.get(info.name)
                if stub is not None and stub.alive:
                    self._begin_restart(
                        stub, "load-outlier",
                        f"queue {info.queue_avg:.1f} vs peer "
                        f"median {median:.1f} for "
                        f"{policy.outlier_sustain_s:.0f}s")

    # -- the restart executor -------------------------------------------------

    def _begin_restart(self, stub, detector: str, detail: str) -> None:
        name = stub.name
        is_brick = getattr(stub, "kind", None) == "brick"
        # a dead *worker* is the manager's job; a dead brick is ours
        if name in self._restarting or (not stub.alive and not is_brick):
            return
        self.suspicions += 1
        now = self.env.now
        self._restart_times = [
            t for t in self._restart_times
            if now - t <= self.policy.restart_budget_window_s]
        if len(self._restart_times) >= self.policy.restart_budget:
            # out of budget: stop healing, page a human (automated
            # recovery that keeps thrashing is worse than none)
            self.budget_denials += 1
            self._alert("page", name,
                        f"restart budget exhausted; {detector}: {detail}")
            return
        self._restarting.add(name)
        case = self.ledger.note_detected(name, detector, detail)
        span = None
        tracer = self.env.tracer
        if tracer is not None:
            self._case_seq += 1
            span = tracer.open_aux_trace(
                f"recovery-{self._case_seq:03d}", "recovery",
                category="other", component=self.name,
                target=name, detector=detector, detail=detail)
            if span is not None and case is not None:
                case.trace_id = span.trace_id
                span.record("undetected", "queueing", case.injected_at,
                            kind=case.kind)
        if is_brick:
            self.spawn(self._restart_brick(stub, case, span))
        else:
            self.spawn(self._restart(stub, case, span))

    def _restart(self, stub, case: Optional[FaultCase], span,
                 proactive: bool = False):
        policy = self.policy
        name, node = stub.name, stub.node
        now = self.env.now
        history = [t for t in self._node_restarts.get(node.name, [])
                   if now - t <= policy.flap_window_s]
        delay = 0.0
        if history and not proactive:
            # exponential backoff between consecutive restarts here
            delay = min(policy.restart_backoff_cap_s,
                        policy.restart_backoff_base_s
                        * policy.restart_backoff_factor
                        ** (len(history) - 1))
            if policy.restart_backoff_jitter > 0 and delay > 0:
                delay *= 1.0 + policy.restart_backoff_jitter * \
                    (self.rng.random() - 0.5)
        try:
            if delay > 0:
                self.backoff_waits += 1
                yield self.env.timeout(delay)
            if not stub.alive:
                return  # died (and got healed) some other way meanwhile
            now = self.env.now
            if not proactive:
                self._restart_times.append(now)
                history.append(now)
                self._node_restarts[node.name] = history
            mark = now
            worker_type = stub.worker_type
            stub.kill()
            self.restarts += 1
            if not proactive and len(history) >= policy.flap_threshold \
                    and not node.quarantined:
                # the fault keeps coming back on this machine: stop
                # placing workers here until an operator reboots it
                node.quarantine()
                self.quarantined_nodes.append(node.name)
                self._alert("page", node.name,
                            f"{len(history)} restarts in "
                            f"{policy.flap_window_s:.0f}s: quarantined")
            place = node if (node.up and not node.quarantined) else None
            try:
                replacement = self.fabric.spawn_worker(worker_type, place)
            except Exception as error:
                self._alert("page", name,
                            f"respawn failed: "
                            f"{type(error).__name__}: {error}")
                if span is not None:
                    span.annotate(heal="respawn-failed").finish()
                return
            if span is not None:
                span.record("restart", "service", mark,
                            replacement=replacement.name)
            if case is not None:
                yield from self._await_heal(case, replacement, span)
            elif span is not None:
                span.finish()
        finally:
            self._restarting.discard(name)

    def _await_heal(self, case: FaultCase, replacement, span):
        """The heal is done when the replacement is back in the
        manager's soft state — in rotation, not merely forked."""
        mark = self.env.now
        for _ in range(self.policy.heal_wait_periods):
            yield self.env.timeout(self.config.beacon_interval_s)
            if not replacement.alive:
                break
            manager = self.fabric.manager
            if manager is not None and manager.alive \
                    and replacement.name in manager.workers:
                self.ledger.note_healed(case, "restart",
                                        replacement.name)
                if span is not None:
                    span.record("reregister", "queueing", mark,
                                replacement=replacement.name)
                    span.finish()
                return
        self._alert("page", case.target,
                    f"replacement {replacement.name} never registered")
        if span is not None:
            span.annotate(heal="timeout").finish()

    # -- the brick restart path ----------------------------------------------

    def _restart_brick(self, brick, case: Optional[FaultCase], span):
        """Restart-as-first-resort for a brick: same backoff and budget
        accounting as workers, but the replacement goes back to the
        *same slot* (placement is identity, so no node quarantine —
        a brick has exactly one home), and the heal bar is higher:
        rejoining is instant by design, so "healed" means the
        anti-entropy sweep finished and the brick answers reads for
        every partition it hosts again.
        """
        policy = self.policy
        name, node = brick.name, brick.node
        now = self.env.now
        history = [t for t in self._node_restarts.get(node.name, [])
                   if now - t <= policy.flap_window_s]
        delay = 0.0
        if history:
            delay = min(policy.restart_backoff_cap_s,
                        policy.restart_backoff_base_s
                        * policy.restart_backoff_factor
                        ** (len(history) - 1))
            if policy.restart_backoff_jitter > 0 and delay > 0:
                delay *= 1.0 + policy.restart_backoff_jitter * \
                    (self.rng.random() - 0.5)
        try:
            if delay > 0:
                self.backoff_waits += 1
                yield self.env.timeout(delay)
            current = self._bricks().get(name)
            if current is not brick:
                return  # another incarnation took the slot meanwhile
            now = self.env.now
            self._restart_times.append(now)
            history.append(now)
            self._node_restarts[node.name] = history
            mark = now
            if brick.alive:
                brick.kill()
            self.restarts += 1
            bricks = self.fabric.profile_bricks
            if bricks is None:
                self._alert("page", name, "brick dead but no brick "
                                          "cluster to respawn into")
                if span is not None:
                    span.annotate(heal="no-cluster").finish()
                return
            replacement = yield from bricks.respawn(brick.slot)
            if span is not None:
                span.record("restart", "service", mark,
                            replacement=replacement.name)
            if case is not None:
                yield from self._await_brick_heal(case, replacement,
                                                  span)
            elif span is not None:
                span.finish()
        finally:
            self._restarting.discard(name)

    def _await_brick_heal(self, case: FaultCase, replacement, span):
        """Healed = fully authoritative again, not merely serving:
        MTTR deliberately includes the background sync, so the number
        reported is time-to-full-redundancy."""
        mark = self.env.now
        for _ in range(self.policy.heal_wait_periods):
            yield self.env.timeout(self.config.beacon_interval_s)
            if not replacement.alive:
                break
            if replacement.fully_authoritative:
                self.ledger.note_healed(case, "brick-restart",
                                        replacement.name)
                if span is not None:
                    span.record("resync", "queueing", mark,
                                replacement=replacement.name)
                    span.finish()
                return
        self._alert("page", case.target,
                    f"replacement {replacement.name} never finished "
                    f"anti-entropy")
        if span is not None:
            span.annotate(heal="timeout").finish()

    # -- rejuvenation ---------------------------------------------------------

    def _rejuvenation_tick(self) -> None:
        """Section 4.5's leak cure: proactively restart the oldest idle
        worker on a timer, before degradation is even detectable."""
        interval = self.policy.rejuvenation_interval_s
        candidates = sorted(
            (stub for stub in self.fabric.workers.values()
             if stub.alive and stub.name not in self._restarting
             and stub.load == 0
             and self.env.now - stub.started_at >= interval),
            key=lambda stub: (stub.started_at, stub.name))
        if not candidates:
            return
        stub = candidates[0]
        self.rejuvenations += 1
        self.ledger.note_rejuvenation(stub.name)
        self._restarting.add(stub.name)
        self.spawn(self._restart(stub, None, None, proactive=True))

    # -- operator surface -----------------------------------------------------

    def _alert(self, severity: str, component: str, message: str) -> None:
        self.alerts.append(
            Alert(self.env.now, severity, component, message))

    def pages(self) -> List[Alert]:
        return [alert for alert in self.alerts
                if alert.severity == "page"]
