"""The supervision policy: every knob of the self-healing layer.

The defaults encode restart-as-first-resort ("Cheap Recovery", PAPERS.md)
tempered by the two classic failure modes of automated recovery:

* **restart storms** — bounded by a per-window restart budget and
  exponential backoff between consecutive restarts on the same node;
* **flapping** — a node whose workers keep needing restarts is
  quarantined from future placement (the fault is probably the machine,
  not the process) until an operator reboots it.

Rejuvenation (the Section 4.5 "cured by periodic restarts" policy) is
**off by default**: proactive restarts change scheduling even in
fault-free runs, and the determinism contract is that supervision with
no faults injected is byte-identical to no supervision at all.  Campaigns
that want it opt in with ``rejuvenation_interval_s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class RecoveryPolicy:
    """Knobs for the :class:`~repro.recovery.supervisor.Supervisor`."""

    # -- end-to-end health probes ------------------------------------------
    #: seconds between probe sweeps over the live worker population.
    probe_interval_s: float = 2.0
    #: a probe unanswered (or still in service) past this is a failure.
    probe_timeout_s: float = 1.0
    #: fixed network round trip charged to a probe.  Probes deliberately
    #: bypass the shared SAN links: :class:`~repro.sim.network.Link`
    #: reservations are stateful, so metering probe bytes there would
    #: perturb request traffic and break the determinism contract.
    probe_rtt_s: float = 0.002
    #: consecutive probe failures before the worker is restarted.
    probe_confirmations: int = 2
    #: a probe whose service time exceeds this multiple of the worker's
    #: own nominal cost counts as a probe failure even when it answers
    #: inside the timeout — the detector for moderate fail-slow/leak
    #: inflation that never trips an RPC timeout.
    probe_slow_ratio: float = 3.0

    # -- RPC-timeout reports from manager stubs ----------------------------
    #: dispatch timeouts against one worker within ``suspicion_window_s``
    #: before the stub's report alone triggers a restart ("the RPC call
    #: to the distiller times out and the distiller is restarted").
    rpc_timeout_confirmations: int = 2
    #: sliding window for counting suspicion events per detector.
    suspicion_window_s: float = 10.0

    # -- peer-relative load-outlier detection ------------------------------
    #: seconds between scans of the manager's load table.
    outlier_interval_s: float = 1.0
    #: a worker is an outlier when its queue average exceeds
    #: ``max(outlier_floor, outlier_ratio * peer_median)``.
    outlier_ratio: float = 3.0
    #: absolute queue floor below which nobody is an outlier (protects
    #: against ratio-vs-zero-median false positives at idle).
    outlier_floor: float = 4.0
    #: the outlier condition must hold continuously this long.
    outlier_sustain_s: float = 3.0
    #: minimum same-type peers before relative comparison means anything.
    outlier_min_peers: int = 3

    # -- restart execution --------------------------------------------------
    #: exponential backoff between consecutive restarts on one node:
    #: first restart is immediate, the n-th waits
    #: ``base * factor**(n-2)`` capped at ``cap``.
    restart_backoff_base_s: float = 0.5
    restart_backoff_factor: float = 2.0
    restart_backoff_cap_s: float = 10.0
    #: jitter fraction applied to backoff delays, drawn from the seeded
    #: ``recovery:backoff`` stream (0 disables: no draws at all).
    restart_backoff_jitter: float = 0.0
    #: restarts allowed per ``restart_budget_window_s`` before the
    #: supervisor stops healing and pages instead.
    restart_budget: int = 8
    restart_budget_window_s: float = 60.0

    # -- flap detection -----------------------------------------------------
    #: restarts on one node within ``flap_window_s`` before the node is
    #: quarantined from future worker placement.
    flap_threshold: int = 3
    flap_window_s: float = 30.0

    # -- rejuvenation -------------------------------------------------------
    #: proactively restart the oldest idle worker every this many
    #: seconds (the Section 4.5 memory-leak cure).  ``None`` disables —
    #: the default, to preserve fault-free determinism.
    rejuvenation_interval_s: Optional[float] = None

    # -- heal watching ------------------------------------------------------
    #: beacon intervals to wait for a replacement to register before
    #: declaring the heal failed.
    heal_wait_periods: int = 40

    def validate(self) -> "RecoveryPolicy":
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("probe periods must be positive")
        if self.probe_rtt_s < 0:
            raise ValueError("probe RTT must be non-negative")
        if self.probe_confirmations < 1 \
                or self.rpc_timeout_confirmations < 1:
            raise ValueError("confirmation counts must be >= 1")
        if self.probe_slow_ratio < 1.0:
            raise ValueError("probe slow ratio must be >= 1")
        if self.suspicion_window_s <= 0:
            raise ValueError("suspicion window must be positive")
        if self.outlier_interval_s <= 0 or self.outlier_sustain_s < 0:
            raise ValueError("outlier intervals must be positive")
        if self.outlier_ratio < 1.0:
            raise ValueError("outlier ratio must be >= 1")
        if self.outlier_floor < 0:
            raise ValueError("outlier floor must be non-negative")
        if self.outlier_min_peers < 2:
            raise ValueError("outlier detection needs >= 2 peers")
        if self.restart_backoff_base_s < 0 \
                or self.restart_backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.restart_backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.restart_backoff_jitter <= 1.0:
            raise ValueError("backoff jitter must be in [0, 1]")
        if self.restart_budget < 1 or self.restart_budget_window_s <= 0:
            raise ValueError("restart budget must be positive")
        if self.flap_threshold < 2 or self.flap_window_s <= 0:
            raise ValueError("flap threshold must be >= 2")
        if self.rejuvenation_interval_s is not None \
                and self.rejuvenation_interval_s <= 0:
            raise ValueError("rejuvenation interval must be positive")
        if self.heal_wait_periods < 1:
            raise ValueError("heal wait must be >= 1 period")
        return self
