"""Injectable gray-failure state for one worker process.

Unlike the clean faults in :mod:`repro.sim.failures` (kill, node crash,
partition), a gray-failed worker stays alive and keeps up appearances —
its stub keeps sending load reports, its registration connection stays
open — while failing at its actual job.  These are the incidents
Section 4.5 reports from production:

* **fail-slow** — service time inflated by a constant factor (a
  misbehaving process, cold caches, a sick disk);
* **hang** — the next request is accepted and then held forever; the
  queue backs up behind it ("the RPC call to the distiller times out"
  is the paper's only detector);
* **zombie** — load reports keep flowing but every submitted request is
  silently swallowed: the queue always reads empty, so the balancer
  *prefers* the worker that does nothing;
* **leak** — service time degrades monotonically with time since
  injection, the memory-leak distiller "cured" by timer restarts;
* **corrupt-output** — requests complete on time but the bytes shipped
  back fail end-to-end validation.

The state object is deliberately dumb — a bag of flags the worker stub
consults on its hot paths — so that a healthy worker (all defaults)
pays one attribute read and zero extra RNG draws.
"""

from __future__ import annotations

from typing import List, Optional


class GrayState:
    """Gray-failure switches for one worker stub."""

    __slots__ = ("slow_factor", "hung", "zombie", "leak_rate",
                 "leak_started_at", "corrupt", "dropped", "injected_at",
                 "modes")

    def __init__(self) -> None:
        #: constant service-time multiplier (fail-slow).
        self.slow_factor = 1.0
        #: the next dequeued request is held forever (hang).
        self.hung = False
        #: accept-and-drop every submission while reporting load (zombie).
        self.zombie = False
        #: service-time growth per second since injection (leak).
        self.leak_rate = 0.0
        self.leak_started_at = 0.0
        #: results ship with bytes that fail end-to-end validation.
        self.corrupt = False
        #: requests silently swallowed by the zombie/hang modes.
        self.dropped = 0
        #: when the first mode was injected (None while healthy).
        self.injected_at: Optional[float] = None
        #: injection order, for fault timelines and reports.
        self.modes: List[str] = []

    # -- injection ----------------------------------------------------------

    def _mark(self, mode: str, now: float) -> None:
        if self.injected_at is None:
            self.injected_at = now
        self.modes.append(mode)

    def fail_slow(self, factor: float, now: float) -> None:
        if factor <= 1.0:
            raise ValueError("fail-slow factor must be > 1")
        self.slow_factor = factor
        self._mark("fail-slow", now)

    def hang(self, now: float) -> None:
        self.hung = True
        self._mark("hang", now)

    def zombify(self, now: float) -> None:
        self.zombie = True
        self._mark("zombie", now)

    def leak(self, rate_per_s: float, now: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("leak rate must be positive")
        self.leak_rate = rate_per_s
        self.leak_started_at = now
        self._mark("leak", now)

    def corrupt_output(self, now: float) -> None:
        self.corrupt = True
        self._mark("corrupt-output", now)

    # -- queries ------------------------------------------------------------

    def inflation(self, now: float) -> float:
        """Combined service-time multiplier at simulated time ``now``."""
        factor = self.slow_factor
        if self.leak_rate > 0.0:
            factor *= 1.0 + self.leak_rate * max(
                0.0, now - self.leak_started_at)
        return factor

    @property
    def is_gray(self) -> bool:
        return bool(self.modes)

    def describe(self) -> str:
        return "+".join(self.modes) if self.modes else "healthy"

    def __repr__(self) -> str:
        return f"<GrayState {self.describe()}>"
