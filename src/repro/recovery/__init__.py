"""Gray-failure modelling and self-healing supervision.

The chaos layer (:mod:`repro.chaos`) proves the soft-state machinery
survives *clean* faults: kills, node crashes, partitions — failures a
broken connection or a missed beacon reveals for free.  The paper's
actual operational incidents (Section 4.5) were nothing so polite:
distillers with memory leaks "cured" by periodic timer restarts, hung
distillers killed when the front-end stub's RPC timed out, a
load-balancer stall noticed only by end-to-end behavior.  These are
*gray* failures — the component stays up and keeps up appearances while
failing at its actual job — and the beacon/connection failure detectors
are structurally blind to them.

This package supplies both halves of the answer:

* :mod:`repro.recovery.gray` — injectable gray-failure state for worker
  processes: fail-slow, hang, zombie, leak, corrupt-output;
* :mod:`repro.recovery.policy` — the supervision policy knobs
  (probe cadence, outlier thresholds, restart budgets, exponential
  backoff, flap quarantine, rejuvenation timers);
* :mod:`repro.recovery.supervisor` — the supervisor component that
  detects gray failures through end-to-end health probes, RPC-timeout
  reports from manager stubs, and peer-relative load-outlier analysis,
  then heals them restart-first ("Cheap Recovery", PAPERS.md);
* :mod:`repro.recovery.ledger` — MTTD/MTTR/availability accounting per
  fault case, surfaced in chaos reports.
"""

from repro.recovery.gray import GrayState
from repro.recovery.ledger import FaultCase, RecoveryLedger
from repro.recovery.policy import RecoveryPolicy

__all__ = [
    "FaultCase",
    "GrayState",
    "RecoveryLedger",
    "RecoveryPolicy",
]
