"""MTTD/MTTR/availability accounting for gray-failure recovery.

A :class:`FaultCase` is the life of one injected gray failure: injected
→ detected (by which detector, after how long) → healed (by what
action, replaced by whom).  The :class:`RecoveryLedger` collects cases
plus the supervisor's non-fault events (false alarms, proactive
rejuvenations) and reduces them to the numbers a chaos report prints:
mean/max time-to-detect and time-to-repair, and the availability cost
of the outage windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class FaultCase:
    """One injected gray failure and its detection/heal timeline."""

    kind: str                 # "fail-slow" | "hang" | "zombie" | ...
    target: str               # worker name at injection time
    injected_at: float
    detected_at: Optional[float] = None
    detector: Optional[str] = None   # "probe" | "rpc-timeout" | ...
    detail: str = ""
    healed_at: Optional[float] = None
    heal_action: Optional[str] = None
    replacement: Optional[str] = None
    #: span-tree id when the run was traced (repro.obs).
    trace_id: Optional[str] = None

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def healed(self) -> bool:
        return self.healed_at is not None

    @property
    def mttd(self) -> Optional[float]:
        """Injection-to-detection latency."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def mttr(self) -> Optional[float]:
        """Detection-to-heal latency (replacement back in rotation)."""
        if self.detected_at is None or self.healed_at is None:
            return None
        return self.healed_at - self.detected_at

    def outage_s(self, end: float) -> float:
        """Seconds this component was failing, clamped to ``end``."""
        until = self.healed_at if self.healed_at is not None else end
        return max(0.0, min(until, end) - min(self.injected_at, end))

    def __repr__(self) -> str:
        if self.healed:
            tail = (f"detected {self.detected_at:.1f}s "
                    f"({self.detector}), healed {self.healed_at:.1f}s"
                    + (f" -> {self.replacement}" if self.replacement
                       else ""))
        elif self.detected:
            tail = f"detected {self.detected_at:.1f}s ({self.detector})" \
                   f", NOT healed"
        else:
            tail = "NOT detected"
        return (f"<FaultCase {self.kind} {self.target} "
                f"@{self.injected_at:.1f}s: {tail}>")


class RecoveryLedger:
    """Collects fault cases and reduces them for reporting."""

    def __init__(self, env: Any) -> None:
        self.env = env
        self.cases: List[FaultCase] = []
        #: detections with no matching injected fault: (time, target,
        #: detector) — supervision that fires on healthy components.
        self.false_alarms: List[Tuple[float, str, str]] = []
        #: proactive rejuvenation restarts: (time, target).
        self.rejuvenations: List[Tuple[float, str]] = []
        #: brick cheap-rejoin measurements pushed by the BrickCluster:
        #: dicts with brick/slot/rejoin_s/cells_at_kill/sync_s.  The
        #: point of recording cells_at_kill next to rejoin_s is the
        #: claim itself: rejoin time must not grow with state size.
        self.rejoins: List[Dict[str, Any]] = []

    # -- event intake -------------------------------------------------------

    def inject(self, kind: str, target: str) -> FaultCase:
        case = FaultCase(kind=kind, target=target,
                         injected_at=self.env.now)
        self.cases.append(case)
        return case

    def note_detected(self, target: str, detector: str,
                      detail: str = "") -> Optional[FaultCase]:
        """Stamp the oldest undetected case for ``target``; a detection
        with no matching injection is recorded as a false alarm."""
        for case in self.cases:
            if case.target == target and case.detected_at is None:
                case.detected_at = self.env.now
                case.detector = detector
                case.detail = detail
                return case
        self.false_alarms.append((self.env.now, target, detector))
        return None

    def note_healed(self, case: FaultCase, action: str,
                    replacement: Optional[str] = None) -> None:
        if case.healed_at is None:
            case.healed_at = self.env.now
            case.heal_action = action
            case.replacement = replacement

    def note_rejuvenation(self, target: str) -> None:
        self.rejuvenations.append((self.env.now, target))

    def note_rejoin(self, record: Dict[str, Any]) -> None:
        """A restarted brick is serving again (the BrickCluster keeps
        the live dict and updates ``sync_s`` when repair completes)."""
        self.rejoins.append(record)

    # -- queries ------------------------------------------------------------

    @property
    def detected(self) -> List[FaultCase]:
        return [case for case in self.cases if case.detected]

    @property
    def healed(self) -> List[FaultCase]:
        return [case for case in self.cases if case.healed]

    @property
    def unhealed(self) -> List[FaultCase]:
        return [case for case in self.cases if not case.healed]

    @property
    def undetected(self) -> List[FaultCase]:
        return [case for case in self.cases if not case.detected]

    def mttd_values(self) -> List[float]:
        return [case.mttd for case in self.cases if case.mttd is not None]

    def mttr_values(self) -> List[float]:
        return [case.mttr for case in self.cases if case.mttr is not None]

    def summary(self, duration_s: float,
                population: int) -> Dict[str, Any]:
        """Reduce to report numbers.  ``population`` is the nominal
        worker count the availability denominator uses — an outage of
        one worker out of three for 9s over a 90s run costs
        1 - 9/(90*3) ≈ 0.967 availability."""
        mttd = self.mttd_values()
        mttr = self.mttr_values()
        outage = sum(case.outage_s(duration_s) for case in self.cases)
        denominator = duration_s * max(1, population)
        rejoin = [r["rejoin_s"] for r in self.rejoins]
        return {
            "injected": len(self.cases),
            "detected": len(self.detected),
            "healed": len(self.healed),
            "false_alarms": len(self.false_alarms),
            "rejuvenations": len(self.rejuvenations),
            "mttd_mean": sum(mttd) / len(mttd) if mttd else None,
            "mttd_max": max(mttd) if mttd else None,
            "mttr_mean": sum(mttr) / len(mttr) if mttr else None,
            "mttr_max": max(mttr) if mttr else None,
            "outage_s": outage,
            "availability": 1.0 - outage / denominator,
            "rejoins": len(self.rejoins),
            "rejoin_mean_s": sum(rejoin) / len(rejoin) if rejoin
            else None,
            "rejoin_max_s": max(rejoin) if rejoin else None,
        }

    def render(self) -> List[str]:
        """Per-case table lines for the chaos report."""
        lines = []
        for case in self.cases:
            if case.mttd is not None:
                detect = (f"detected +{case.mttd:.1f}s "
                          f"({case.detector})")
            else:
                detect = "NOT DETECTED"
            if case.mttr is not None:
                heal = f"healed +{case.mttr:.1f}s"
                if case.replacement:
                    heal += f" -> {case.replacement}"
            else:
                heal = "NOT HEALED"
            lines.append(
                f"{case.kind:<15} {case.target:<20} "
                f"@{case.injected_at:5.1f}s  {detect:<28} {heal}")
        for record in self.rejoins:
            sync = (f"synced +{record['sync_s']:.1f}s"
                    if record.get("sync_s") is not None
                    else "sync pending")
            lines.append(
                f"{'rejoin':<15} {record['brick']:<20} "
                f"@{record['rejoined_at']:5.1f}s  "
                f"{'serving +' + format(record['rejoin_s'], '.1f') + 's':<28} "
                f"{sync} ({record['cells_at_kill']} cells at kill)")
        return lines
