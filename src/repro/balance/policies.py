"""Pluggable routing policies for the manager stub.

The paper routes every request by lottery scheduling over stale queue
hints (Section 3.1.2).  That is one point in a large design space:
modern cluster balancers pick by power-of-two-choices, least
outstanding requests, EWMA latency, weighted/canary splits, or
consistent hashing with bounded loads for cache affinity.  This module
makes the choice pluggable: :class:`RoutingPolicy` is the interface,
``POLICIES`` the registry, and :func:`build_policy` the factory the
stub calls with ``config.routing_policy``.

Two contracts every policy must honour:

* **Determinism.**  Any randomness comes from the stub's own lottery
  stream (passed in as ``rng``); a policy draws from no other source,
  so two runs with the same seed stay byte-identical and policies that
  draw nothing (round-robin, least-outstanding, EWMA, hashing) never
  perturb streams shared with other subsystems.
* **Lottery identity.**  ``LotteryPolicy`` must reproduce the
  pre-refactor behaviour *exactly* — same weights, same single draw
  per pick — because the default configuration is pinned byte-identical
  across the whole seeded test suite.

Feedback hooks (``on_submit`` / ``on_reply`` / ``on_timeout``) give
policies a passive, per-dispatch signal that needs no new messages on
the SAN: the stub already observes every submit, reply, and timeout.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple


class PolicyError(ValueError):
    """Unknown policy name or malformed policy spec."""


class RoutingPolicy:
    """Interface for worker selection at one manager stub.

    ``select`` gets the stub's candidate adverts (in cache order, the
    same order the lottery always saw) and returns one of them.  The
    hooks are best-effort feedback from the dispatch path; the base
    implementations do nothing, so stateless policies stay trivial.
    """

    #: registry key; subclasses override.
    name = "abstract"
    #: True when ``select`` wants a content key (hash affinity); the
    #: stub only computes keys for policies that ask.
    needs_key = False

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        raise NotImplementedError

    # -- per-dispatch feedback (all optional) ------------------------------

    def on_submit(self, worker_name: str, now: float) -> None:
        """One envelope was handed to ``worker_name``."""

    def on_reply(self, worker_name: str, now: float,
                 latency_s: float) -> None:
        """A reply came back after ``latency_s`` (submit to reply)."""

    def on_timeout(self, worker_name: str, now: float) -> None:
        """The dispatch timer fired before ``worker_name`` replied."""

    def on_worker_removed(self, worker_name: str) -> None:
        """The stub dropped the worker's advert (refusal/timeout/death)."""

    def stats(self) -> Dict[str, Any]:
        """Counters for reports; empty for stateless policies."""
        return {}


class LotteryPolicy(RoutingPolicy):
    """The paper's policy: lottery scheduling over effective queues.

    weight = 1 / (1 + effective_queue)^gamma, one ``weighted_choice``
    draw per pick from the stub's ``lottery:{owner}`` stream.  This is
    a verbatim extraction of the pre-refactor ``ManagerStub.pick``
    arithmetic — byte-identical behaviour is a hard requirement.
    """

    name = "lottery"

    def __init__(self, config: Any, rng: Any) -> None:
        self.config = config
        self.rng = rng

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        weights = [
            1.0 / (1.0 + state.effective_queue(
                now, self.config.estimate_queue_deltas))
            ** self.config.lottery_gamma
            for state in candidates
        ]
        return self.rng.weighted_choice(candidates, weights)


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through candidates sorted by name.  No hints, no RNG.

    The sort keys the cycle to stable worker identity, not cache
    insertion order, so the rotation survives advert churn.
    """

    name = "round-robin"

    def __init__(self, config: Any, rng: Any) -> None:
        self._turn = 0

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        ordered = sorted(candidates,
                         key=lambda state: state.advert.worker_name)
        choice = ordered[self._turn % len(ordered)]
        self._turn += 1
        return choice


class _OutstandingTracker(RoutingPolicy):
    """Shared bookkeeping: per-worker in-flight request counts derived
    from the submit/reply/timeout hooks."""

    def __init__(self) -> None:
        self.outstanding: Dict[str, int] = {}

    def on_submit(self, worker_name: str, now: float) -> None:
        self.outstanding[worker_name] = \
            self.outstanding.get(worker_name, 0) + 1

    def _settle(self, worker_name: str) -> None:
        count = self.outstanding.get(worker_name, 0)
        if count > 1:
            self.outstanding[worker_name] = count - 1
        else:
            self.outstanding.pop(worker_name, None)

    def on_reply(self, worker_name: str, now: float,
                 latency_s: float) -> None:
        self._settle(worker_name)

    def on_timeout(self, worker_name: str, now: float) -> None:
        self._settle(worker_name)

    def on_worker_removed(self, worker_name: str) -> None:
        self.outstanding.pop(worker_name, None)

    def stats(self) -> Dict[str, Any]:
        return {"outstanding": dict(self.outstanding)}


class LeastOutstandingPolicy(_OutstandingTracker):
    """Pick the worker with the fewest locally-outstanding requests.

    Uses only this front end's own in-flight counts — no beacon
    staleness at all — with the advertised effective queue and then the
    name as deterministic tie-breakers.
    """

    name = "least-outstanding"

    def __init__(self, config: Any, rng: Any) -> None:
        super().__init__()
        self.config = config

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        estimate = self.config.estimate_queue_deltas
        return min(candidates, key=lambda state: (
            self.outstanding.get(state.advert.worker_name, 0),
            state.effective_queue(now, estimate),
            state.advert.worker_name,
        ))


class PowerOfTwoPolicy(RoutingPolicy):
    """Power of two choices: sample two distinct candidates uniformly,
    send to the one with the smaller effective queue.

    Two ``randint`` draws per pick (one when only one candidate pair is
    possible) from the stub's lottery stream — Mitzenmacher's result
    that two random probes get you exponentially better balance than
    one, without believing the full (stale) load vector.
    """

    name = "p2c"

    def __init__(self, config: Any, rng: Any) -> None:
        self.config = config
        self.rng = rng

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        n = len(candidates)
        if n == 1:
            return candidates[0]
        i = self.rng.randint(0, n - 1)
        j = self.rng.randint(0, n - 2)
        if j >= i:
            j += 1  # uniform over distinct unordered pairs
        estimate = self.config.estimate_queue_deltas
        first, second = candidates[i], candidates[j]
        load_i = first.effective_queue(now, estimate)
        load_j = second.effective_queue(now, estimate)
        if load_j < load_i:
            return second
        return first


class EwmaLatencyPolicy(_OutstandingTracker):
    """Peak-EWMA latency picking (the Finagle balancer's trick).

    Score every candidate by its exponentially-smoothed observed
    latency multiplied by (1 + outstanding): the latency term is
    passive feedback from this stub's own replies, the outstanding term
    both penalizes pile-ups and gives cold workers a finite score.
    Workers with no local samples yet fall back to the advertised
    ``service_ewma_s`` (worker-measured service time carried in load
    reports), so a fresh stub still prefers demonstrably faster
    workers.  Timeouts are folded in as worst-case latency samples.
    No RNG draws.
    """

    name = "ewma"

    def __init__(self, config: Any, rng: Any) -> None:
        super().__init__()
        self.config = config
        self.alpha = config.policy_ewma_alpha
        self.timeout_penalty_s = 2.0 * config.dispatch_timeout_s
        self.ewma: Dict[str, float] = {}

    def _observe(self, worker_name: str, latency_s: float) -> None:
        prior = self.ewma.get(worker_name)
        if prior is None:
            self.ewma[worker_name] = latency_s
        else:
            self.ewma[worker_name] = (self.alpha * latency_s
                                      + (1.0 - self.alpha) * prior)

    def on_reply(self, worker_name: str, now: float,
                 latency_s: float) -> None:
        super().on_reply(worker_name, now, latency_s)
        self._observe(worker_name, latency_s)

    def on_timeout(self, worker_name: str, now: float) -> None:
        super().on_timeout(worker_name, now)
        self._observe(worker_name, self.timeout_penalty_s)

    def on_worker_removed(self, worker_name: str) -> None:
        super().on_worker_removed(worker_name)
        # keep the EWMA: if the worker re-registers under the same name
        # its history is still the best predictor we have

    def _score(self, state: Any, now: float) -> Tuple[float, str]:
        name = state.advert.worker_name
        latency = self.ewma.get(name)
        if latency is None:
            latency = getattr(state.advert, "service_ewma_s", 0.0) or 0.0
        pending = self.outstanding.get(name, 0)
        return (latency * (1.0 + pending) + 1e-9 * pending, name)

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        return min(candidates, key=lambda state: self._score(state, now))

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["latency_ewma_s"] = dict(self.ewma)
        return out


class WeightedCanaryPolicy(RoutingPolicy):
    """Weighted split: the newest worker (the canary) gets a fixed
    traffic fraction, the rest share the remainder uniformly.

    The canary is the lexicographically-last worker name — worker names
    carry a monotonically increasing spawn sequence, so this is the
    most recently placed instance.  One ``weighted_choice`` draw per
    pick.
    """

    name = "weighted"

    def __init__(self, config: Any, rng: Any) -> None:
        self.rng = rng
        self.canary_fraction = config.policy_canary_fraction

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        if len(candidates) == 1:
            return candidates[0]
        canary = max(candidates,
                     key=lambda state: _spawn_order(
                         state.advert.worker_name))
        baseline = ((1.0 - self.canary_fraction)
                    / (len(candidates) - 1))
        weights = [
            self.canary_fraction if state is canary else baseline
            for state in candidates
        ]
        return self.rng.weighted_choice(candidates, weights)


def _spawn_order(worker_name: str) -> Tuple[int, str]:
    """Sort key putting the most recently spawned worker last: numeric
    spawn-sequence suffix when present, else lexicographic."""
    head, _, tail = worker_name.rpartition(".")
    if head and tail.isdigit():
        return (int(tail), head)
    return (-1, worker_name)


class BoundedLoadHashPolicy(_OutstandingTracker):
    """Consistent hashing with bounded loads (Mirrokni et al.).

    Requests hash by content key onto a ring of virtual nodes, giving
    cache affinity: the same URL keeps landing on the same worker, so
    its working set stays hot.  The "bounded loads" part keeps affinity
    from defeating balance: a worker already carrying more than
    ``ceil(bound_factor × mean outstanding)`` in-flight requests is
    skipped and the request walks clockwise to the next admissible
    worker.  Hashes are md5-based — stable across processes and runs,
    unlike Python's seeded ``hash``.  No RNG draws.
    """

    name = "hash-bounded"
    needs_key = True

    def __init__(self, config: Any, rng: Any) -> None:
        super().__init__()
        self.bound_factor = config.policy_hash_bound
        self.replicas = config.policy_hash_replicas
        self._ring: List[Tuple[int, str]] = []
        self._ring_members: frozenset = frozenset()
        self.overflow_hops = 0

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.md5(value.encode()).digest()[:8], "big")

    def _rebuild(self, names: frozenset) -> None:
        ring = []
        for name in names:
            for replica in range(self.replicas):
                ring.append((self._hash(f"{name}#{replica}"), name))
        ring.sort()
        self._ring = ring
        self._ring_members = names

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        by_name = {state.advert.worker_name: state
                   for state in candidates}
        names = frozenset(by_name)
        if names != self._ring_members:
            self._rebuild(names)
        total = sum(self.outstanding.get(name, 0) for name in names)
        # each worker may carry at most bound_factor x the fair share of
        # in-flight requests (counting the one about to be placed)
        bound = max(1.0, self.bound_factor * (total + 1) / len(names))
        point = self._hash(key if key is not None else "")
        start = bisect_right(self._ring, (point, ""))
        chosen = None
        seen = set()
        for offset in range(len(self._ring)):
            _, name = self._ring[(start + offset) % len(self._ring)]
            if name in seen:
                continue
            seen.add(name)
            if chosen is None:
                chosen = name  # ring-order fallback if all are full
            if self.outstanding.get(name, 0) + 1 <= bound:
                if offset > 0 and name != chosen:
                    self.overflow_hops += 1
                return by_name[name]
        return by_name[chosen]

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["overflow_hops"] = self.overflow_hops
        return out


#: registry: spec base name -> policy class.
POLICIES: Dict[str, type] = {
    policy.name: policy
    for policy in (
        LotteryPolicy,
        RoundRobinPolicy,
        LeastOutstandingPolicy,
        PowerOfTwoPolicy,
        EwmaLatencyPolicy,
        WeightedCanaryPolicy,
        BoundedLoadHashPolicy,
    )
}

#: wrapper names accepted after ``+`` in a policy spec.
WRAPPERS = ("eject",)


def available_policies() -> List[str]:
    """All base policy names, sorted for help text."""
    return sorted(POLICIES)


def parse_policy_spec(spec: str) -> Tuple[str, List[str]]:
    """Split ``"ewma+eject"`` into (base, wrappers); raise on unknowns."""
    parts = [part.strip() for part in spec.split("+")]
    base, wrappers = parts[0], parts[1:]
    if base not in POLICIES:
        raise PolicyError(
            f"unknown routing policy {base!r}; "
            f"known: {', '.join(available_policies())}")
    for wrapper in wrappers:
        if wrapper not in WRAPPERS:
            raise PolicyError(
                f"unknown policy wrapper {wrapper!r}; "
                f"known: {', '.join(WRAPPERS)}")
    return base, wrappers


def build_policy(spec: str, config: Any, rng: Any) -> RoutingPolicy:
    """Instantiate the policy named by ``spec`` (e.g. ``"p2c"``,
    ``"ewma+eject"``) for one manager stub."""
    base, wrappers = parse_policy_spec(spec)
    policy = POLICIES[base](config, rng)
    for wrapper in wrappers:
        if wrapper == "eject":
            from repro.balance.ejection import OutlierEjector
            policy = OutlierEjector(policy, config)
    return policy


def request_key(tacc_request: Any) -> Optional[str]:
    """Content-affinity key for hash routing: the input URL when there
    is one, else the user id, else None (policy falls back to a fixed
    ring point plus the load bound)."""
    inputs = getattr(tacc_request, "inputs", None)
    if inputs:
        url = getattr(inputs[0], "url", None)
        if url:
            return str(url)
    user_id = getattr(tacc_request, "user_id", None)
    if user_id:
        return str(user_id)
    return None
