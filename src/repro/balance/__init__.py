"""Pluggable routing policies for worker selection (ROADMAP item 1).

``build_policy(config.routing_policy, config, rng)`` is the single
entry point the manager stub uses; everything else is the registry and
the implementations.
"""

from repro.balance.ejection import OutlierEjector
from repro.balance.policies import (
    POLICIES,
    BoundedLoadHashPolicy,
    EwmaLatencyPolicy,
    LeastOutstandingPolicy,
    LotteryPolicy,
    PolicyError,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    WeightedCanaryPolicy,
    available_policies,
    build_policy,
    parse_policy_spec,
    request_key,
)

__all__ = [
    "POLICIES",
    "BoundedLoadHashPolicy",
    "EwmaLatencyPolicy",
    "LeastOutstandingPolicy",
    "LotteryPolicy",
    "OutlierEjector",
    "PolicyError",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "WeightedCanaryPolicy",
    "available_policies",
    "build_policy",
    "parse_policy_spec",
    "request_key",
]
