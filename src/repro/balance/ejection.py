"""Passive outlier ejection: route around gray-slow workers.

A worker whose observed latency is a *peer-relative* outlier — or whose
recent timeout count is, while its peers' are not — gets temporarily
ejected from the candidate set, long before the Supervisor's probe
machinery decides to restart it.  This is the load-balancer-level
circuit breaker from the Envoy/Finagle lineage: detection is entirely
passive (the stub already sees every reply and timeout), ejection is
temporary with exponential back-off per repeat offender, and re-entry
is probationary — an ejected worker re-admits with its history cleared
and must re-offend on fresh samples to be ejected again.

Peer-relativity is what makes this safe under global overload: when
*every* worker is slow (the cluster is saturated, not sick), nobody is
an outlier and nothing is ejected.  Fail-open likewise: if ejection
would empty the candidate set, the full set is used.

The wrapper composes over any base policy (``"ewma+eject"``,
``"lottery+eject"``); it draws no randomness, so it never perturbs the
wrapped policy's stream usage.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.balance.policies import RoutingPolicy


class _WorkerHealth:
    """Ejector-side passive health record for one worker."""

    __slots__ = ("ewma_s", "samples", "timeout_at", "ejected_until",
                 "ejection_count", "last_ejection_end", "ejections",
                 "ejected_ats")

    def __init__(self) -> None:
        self.ewma_s: Optional[float] = None
        self.samples = 0
        self.timeout_at: List[float] = []
        self.ejected_until = 0.0
        self.ejection_count = 0
        self.last_ejection_end: Optional[float] = None
        self.ejections = 0
        self.ejected_ats: List[float] = []


class OutlierEjector(RoutingPolicy):
    """Wrap a base policy; filter outlier workers out of its view."""

    needs_key = False  # property below consults the inner policy

    def __init__(self, inner: RoutingPolicy, config: Any) -> None:
        self.inner = inner
        self.name = f"{inner.name}+eject"
        self.needs_key = inner.needs_key
        self.alpha = config.policy_ewma_alpha
        self.latency_ratio = config.outlier_latency_ratio
        self.min_samples = config.outlier_min_samples
        self.min_peers = config.outlier_min_peers
        self.timeout_threshold = config.outlier_timeout_threshold
        self.window_s = config.outlier_window_s
        self.ejection_s = config.outlier_ejection_s
        self.max_ejection_s = config.outlier_max_ejection_s
        self.health: Dict[str, _WorkerHealth] = {}
        # counters
        self.ejections = 0
        self.fail_opens = 0
        self.first_ejection_at: Optional[float] = None

    # -- feedback ----------------------------------------------------------

    def _record(self, worker_name: str) -> _WorkerHealth:
        record = self.health.get(worker_name)
        if record is None:
            record = self.health[worker_name] = _WorkerHealth()
        return record

    def on_submit(self, worker_name: str, now: float) -> None:
        self.inner.on_submit(worker_name, now)

    def on_reply(self, worker_name: str, now: float,
                 latency_s: float) -> None:
        record = self._record(worker_name)
        if record.ewma_s is None:
            record.ewma_s = latency_s
        else:
            record.ewma_s = (self.alpha * latency_s
                             + (1.0 - self.alpha) * record.ewma_s)
        record.samples += 1
        self.inner.on_reply(worker_name, now, latency_s)

    def on_timeout(self, worker_name: str, now: float) -> None:
        self._record(worker_name).timeout_at.append(now)
        self.inner.on_timeout(worker_name, now)

    def on_worker_removed(self, worker_name: str) -> None:
        # keep the health record: a restarted worker re-registers under
        # a NEW name (spawn sequence), so same-name reappearance is the
        # same process and its record still applies
        self.inner.on_worker_removed(worker_name)

    # -- ejection decisions ------------------------------------------------

    def _recent_timeouts(self, record: _WorkerHealth, now: float) -> int:
        cutoff = now - self.window_s
        if record.timeout_at and record.timeout_at[0] < cutoff:
            record.timeout_at = [t for t in record.timeout_at
                                 if t >= cutoff]
        return len(record.timeout_at)

    def _eject(self, record: _WorkerHealth, now: float) -> None:
        if (record.last_ejection_end is not None
                and now - record.last_ejection_end > self.window_s):
            # clean through its probation window: forgive old offences
            record.ejection_count = 0
        duration = min(self.max_ejection_s,
                       self.ejection_s * (2.0 ** record.ejection_count))
        record.ejected_until = now + duration
        record.last_ejection_end = record.ejected_until
        record.ejection_count += 1
        record.ejections += 1
        record.ejected_ats.append(now)
        # probation: history resets, re-ejection needs fresh evidence
        record.ewma_s = None
        record.samples = 0
        record.timeout_at = []
        self.ejections += 1
        if self.first_ejection_at is None:
            self.first_ejection_at = now

    def _evaluate(self, candidates: Sequence[Any], now: float) -> None:
        names = [state.advert.worker_name for state in candidates]
        active = [name for name in names
                  if self._record(name).ejected_until <= now]
        if len(active) < self.min_peers:
            return
        # latency outliers, relative to the peer median
        sampled = [(name, self.health[name].ewma_s) for name in active
                   if self.health[name].samples >= self.min_samples]
        if len(sampled) >= self.min_peers:
            latencies = sorted(ewma for _, ewma in sampled)
            mid = len(latencies) // 2
            if len(latencies) % 2:
                median = latencies[mid]
            else:
                median = 0.5 * (latencies[mid - 1] + latencies[mid])
            if median > 0:
                for name, ewma in sampled:
                    if ewma > self.latency_ratio * median:
                        self._eject(self.health[name], now)
        # timeout outliers: eject heavy timers unless timeouts are the
        # cluster-wide condition (then ejection would only shrink an
        # already-failing pool)
        counts = {name: self._recent_timeouts(self.health[name], now)
                  for name in active}
        offenders = [name for name, count in counts.items()
                     if count >= self.timeout_threshold]
        if offenders and len(offenders) * 2 < len(active):
            for name in offenders:
                record = self.health[name]
                if record.ejected_until <= now:
                    self._eject(record, now)

    # -- selection ---------------------------------------------------------

    def select(self, candidates: Sequence[Any], now: float,
               key: Optional[str] = None) -> Any:
        self._evaluate(candidates, now)
        admissible = [
            state for state in candidates
            if self._record(state.advert.worker_name).ejected_until
            <= now
        ]
        if not admissible:
            # fail open: an empty candidate set is worse than a slow one
            self.fail_opens += 1
            admissible = list(candidates)
        return self.inner.select(admissible, now, key)

    def stats(self) -> Dict[str, Any]:
        out = dict(self.inner.stats())
        out["ejections"] = self.ejections
        out["fail_opens"] = self.fail_opens
        if self.first_ejection_at is not None:
            out["first_ejection_at"] = self.first_ejection_at
        ejected = {name: record.ejected_ats[0]
                   for name, record in sorted(self.health.items())
                   if record.ejections > 0}
        if ejected:
            out["ejected_workers"] = ejected
            out["ejection_times"] = {
                name: tuple(record.ejected_ats)
                for name, record in sorted(self.health.items())
                if record.ejections > 0}
        return out
