"""Latency and throughput accumulators."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class LatencyStats:
    """Streaming-friendly latency summary (stores samples; the
    experiment scale here never needs sketches)."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> "LatencyStats":
        for value in values:
            self.add(value)
        return self

    @classmethod
    def from_samples(cls, values: Iterable[float]) -> "LatencyStats":
        return cls().extend(values)

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Fold another accumulator's samples into this one.

        Percentiles of the merged set are exact (samples are pooled,
        not approximated), so callers aggregating per-arm or
        per-category stats no longer re-sort ad-hoc sample lists.
        """
        if other._samples:
            self._samples.extend(other._samples)
            self._sorted = False
        return self

    def histogram(self, bins: int = 10,
                  lo: Optional[float] = None,
                  hi: Optional[float] = None
                  ) -> List[Tuple[float, float, int]]:
        """Equal-width histogram: ``[(left, right, count), ...]``.

        Bounds default to the sample min/max; the top edge is
        inclusive so the maximum lands in the last bin.
        """
        if bins < 1:
            raise ValueError("bins must be >= 1")
        if not self._samples:
            return []
        self._ensure_sorted()
        low = self._samples[0] if lo is None else lo
        high = self._samples[-1] if hi is None else hi
        if high <= low:
            high = low + 1e-12
        width = (high - low) / bins
        counts = [0] * bins
        for value in self._samples:
            if value < low or value > high:
                continue
            index = min(int((value - low) / width), bins - 1)
            counts[index] += 1
        return [
            (low + index * width, low + (index + 1) * width, count)
            for index, count in enumerate(counts)
        ]

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated quantile, fraction in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        position = fraction * (len(self._samples) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return self._samples[low]
        weight = position - low
        return (self._samples[low] * (1 - weight)
                + self._samples[high] * weight)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def maximum(self) -> float:
        self._ensure_sorted()
        return self._samples[-1] if self._samples else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_outcomes(outcomes) -> Dict[str, float]:
    """Condense a playback engine's outcome list."""
    stats = LatencyStats()
    ok = 0
    failed = 0
    for outcome in outcomes:
        if outcome.ok and outcome.latency is not None:
            ok += 1
            stats.add(outcome.latency)
        elif not outcome.ok:
            failed += 1
    summary = stats.summary()
    summary["ok"] = float(ok)
    summary["failed"] = float(failed)
    total = ok + failed
    summary["success_rate"] = ok / total if total else 0.0
    return summary


def harvest_yield_series(outcomes, bucket_s: float
                         ) -> List[Dict[str, float]]:
    """Per-bucket harvest/yield over a playback run.

    The paper's availability frame (Section 2.3.1, and Fox & Brewer's
    "Harvest, Yield, and Scalable Tolerant Systems"): **yield** is the
    fraction of requests answered at all (ok or approximate fallback),
    **harvest** the fraction of answered requests carrying the full
    result rather than a BASE approximation.  A reply whose status is
    ``"error"`` (a shed request, an error page) answers nothing and
    counts against yield, exactly like a timeout.  Shed requests —
    error replies whose path starts with ``"shed"`` — are additionally
    broken out into their own column: a shed is a *yield* loss the
    admission controller chose, distinct from both a degraded answer
    (a *harvest* loss) and a generic error.  Requests are bucketed
    by *submission* time so a fault window's damage lands in the window
    that caused it.  Each row: ``{"start", "submitted", "answered",
    "degraded", "shed", "yield", "harvest"}``.
    """
    if bucket_s <= 0:
        raise ValueError("bucket width must be positive")
    if not outcomes:
        return []
    origin = min(outcome.submitted_at for outcome in outcomes)
    buckets: Dict[int, List[int]] = {}
    for outcome in outcomes:
        index = int((outcome.submitted_at - origin) / bucket_s)
        row = buckets.setdefault(index, [0, 0, 0, 0])
        row[0] += 1
        status = getattr(outcome.response, "status", "ok")
        if outcome.ok and status != "error":
            row[1] += 1
            if status != "ok":
                row[2] += 1
        elif str(getattr(outcome.response, "path",
                         "")).startswith("shed"):
            row[3] += 1
    series = []
    for index in range(max(buckets) + 1):
        submitted, answered, degraded, shed = buckets.get(
            index, (0, 0, 0, 0))
        series.append({
            "start": origin + index * bucket_s,
            "submitted": float(submitted),
            "answered": float(answered),
            "degraded": float(degraded),
            "shed": float(shed),
            "yield": answered / submitted if submitted else 1.0,
            "harvest": ((answered - degraded) / answered
                        if answered else 1.0),
        })
    return series


def yield_recovery_time(series: Sequence[Dict[str, float]],
                        heal_time: float,
                        target: float = 0.95) -> Optional[float]:
    """Seconds after ``heal_time`` until yield first reaches ``target``
    and stays there for the rest of the series; ``None`` if it never
    recovers.  Empty buckets (nothing submitted) count as recovered.
    """
    candidate: Optional[float] = None
    for row in series:
        if row["start"] + 1e-9 < heal_time:
            continue
        if row["submitted"] and row["yield"] < target:
            candidate = None
        elif candidate is None:
            candidate = max(0.0, row["start"] - heal_time)
    return candidate


def throughput_series(completion_times: Sequence[float],
                      bucket_s: float) -> List[Tuple[float, float]]:
    """(bucket start, completions/sec) over the span of completions."""
    if bucket_s <= 0:
        raise ValueError("bucket width must be positive")
    if not completion_times:
        return []
    start = min(completion_times)
    end = max(completion_times)
    n_buckets = int((end - start) / bucket_s) + 1
    counts = [0] * n_buckets
    for time in completion_times:
        counts[int((time - start) / bucket_s)] += 1
    return [
        (start + index * bucket_s, count / bucket_s)
        for index, count in enumerate(counts)
    ]
