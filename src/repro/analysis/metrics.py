"""Latency and throughput accumulators."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


class LatencyStats:
    """Streaming-friendly latency summary (stores samples; the
    experiment scale here never needs sketches)."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> "LatencyStats":
        for value in values:
            self.add(value)
        return self

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated quantile, fraction in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        position = fraction * (len(self._samples) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return self._samples[low]
        weight = position - low
        return (self._samples[low] * (1 - weight)
                + self._samples[high] * weight)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def maximum(self) -> float:
        self._ensure_sorted()
        return self._samples[-1] if self._samples else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_outcomes(outcomes) -> Dict[str, float]:
    """Condense a playback engine's outcome list."""
    stats = LatencyStats()
    ok = 0
    failed = 0
    for outcome in outcomes:
        if outcome.ok and outcome.latency is not None:
            ok += 1
            stats.add(outcome.latency)
        elif not outcome.ok:
            failed += 1
    summary = stats.summary()
    summary["ok"] = float(ok)
    summary["failed"] = float(failed)
    total = ok + failed
    summary["success_rate"] = ok / total if total else 0.0
    return summary


def throughput_series(completion_times: Sequence[float],
                      bucket_s: float) -> List[Tuple[float, float]]:
    """(bucket start, completions/sec) over the span of completions."""
    if bucket_s <= 0:
        raise ValueError("bucket width must be positive")
    if not completion_times:
        return []
    start = min(completion_times)
    end = max(completion_times)
    n_buckets = int((end - start) / bucket_s) + 1
    counts = [0] * n_buckets
    for time in completion_times:
        counts[int((time - start) / bucket_s)] += 1
    return [
        (start + index * bucket_s, count / bucket_s)
        for index, count in enumerate(counts)
    ]
