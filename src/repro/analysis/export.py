"""Result export: experiment outputs as machine-readable files.

A reproduction repo is only useful if its numbers can leave the
terminal: :func:`export_result` serializes any experiment result —
they are all dataclasses, possibly nested, holding numbers, strings,
and series — to JSON, so figures can be re-plotted and runs diffed.
Used by the CLI's ``--export`` flag.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict

__all__ = ["export_result"]


def _jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float):
        if value != value:                       # NaN
            return None
        if value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return f"<{len(value)} bytes>"
    # anything exotic (component refs etc.): a readable placeholder
    return repr(value)


def export_result(name: str, result: Any, directory: str) -> str:
    """Write ``result`` as ``<directory>/<name>.json``; returns the path.

    Plain-string results (e.g. Table 1) are wrapped as
    ``{"text": ...}`` so every export is valid JSON.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    if isinstance(result, str):
        payload: Dict[str, Any] = {"text": result}
    else:
        payload = {"result": _jsonable(result)}
    payload["experiment"] = name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
