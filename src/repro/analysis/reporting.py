"""ASCII renderers for experiment output.

The benchmark drivers print their results in the paper's shapes: Table 2
rows, Figure 5 histograms, Figure 8 time series — as plain text, so
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[index]),
            max((len(row[index]) for row in cells), default=0))
        for index in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        header.ljust(widths[index])
        for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(
            value.ljust(widths[index])
            for index, value in enumerate(row)))
    return "\n".join(lines)


def render_histogram(pairs: Sequence[Tuple[object, float]],
                     width: int = 50, title: str = "") -> str:
    """Horizontal bar chart from (label, value) pairs."""
    if width <= 0:
        raise ValueError("width must be positive")
    lines = [title] if title else []
    if not pairs:
        return "\n".join(lines + ["(empty)"])
    peak = max(value for _, value in pairs)
    label_width = max(len(str(label)) for label, _ in pairs)
    for label, value in pairs:
        bar = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{str(label).rjust(label_width)} | "
                     f"{'#' * bar} {value:.4g}")
    return "\n".join(lines)


def render_series(points: Sequence[Tuple[float, float]],
                  width: int = 60, height: int = 12,
                  title: str = "") -> str:
    """Crude scatter-over-time plot (Figure 8 style)."""
    lines = [title] if title else []
    if not points:
        return "\n".join(lines + ["(empty)"])
    t_low = min(t for t, _ in points)
    t_high = max(t for t, _ in points)
    v_low = 0.0
    v_high = max(v for _, v in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        x = int((t - t_low) / (t_high - t_low or 1.0) * (width - 1))
        y = int((v - v_low) / (v_high - v_low or 1.0) * (height - 1))
        grid[height - 1 - y][x] = "*"
    for row_index, row in enumerate(grid):
        axis_value = v_high * (height - 1 - row_index) / (height - 1)
        lines.append(f"{axis_value:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}t={t_low:.0f}s ... t={t_high:.0f}s")
    return "\n".join(lines)
