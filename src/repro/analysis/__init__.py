"""Measurement and reporting utilities.

Latency/throughput accumulators for experiment drivers, the Section 5.2
economic-feasibility model, and ASCII renderers that print tables and
figures in the shape the paper reports them.
"""

from repro.analysis.metrics import (
    LatencyStats,
    summarize_outcomes,
    throughput_series,
)
from repro.analysis.economics import EconomicModel
from repro.analysis.reporting import (
    render_histogram,
    render_series,
    render_table,
)

__all__ = [
    "EconomicModel",
    "LatencyStats",
    "render_histogram",
    "render_series",
    "render_table",
    "summarize_outcomes",
    "throughput_series",
]
