"""The Section 5.2 economic-feasibility model.

"From our performance data, a US$5000 Pentium Pro server should be able
to support about 750 modems, or about 15,000 subscribers (assuming a
20:1 subscriber to modem ratio).  Amortized over 1 year, the marginal
cost per user is an amazing 25 cents/month.

"If we include the savings to the ISP due to a cache hit rate of 50% or
more ... we can eliminate the equivalent of 1-2 T1 lines per TranSend
installation, which reduces operating costs by about US$3000 per month.
Thus, we expect that the server would pay for itself in only two
months."

Note on arithmetic: $5000 over 15,000 subscribers over 12 months is
2.8 cents/user/month, not 25; the paper's headline figure matches an
amortization over the *modem* count (5000 / 750 / 12 ≈ 56 cents) or a
per-active-user basis more closely.  The model exposes each quantity
separately so EXPERIMENTS.md can report all interpretations alongside
the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class EconomicModel:
    """Cost model for one TranSend installation."""

    server_cost_usd: float = 5000.0
    modems_supported: int = 750
    subscribers_per_modem: float = 20.0
    amortization_months: int = 12
    #: ISP-side savings from caching.
    cache_byte_hit_rate: float = 0.5
    t1_monthly_cost_usd: float = 1500.0
    t1_lines_replaced: float = 2.0
    monthly_admin_cost_usd: float = 0.0  # "essentially no administration"

    def __post_init__(self) -> None:
        if self.server_cost_usd <= 0 or self.modems_supported <= 0:
            raise ValueError("costs and capacities must be positive")
        if not 0.0 <= self.cache_byte_hit_rate <= 1.0:
            raise ValueError("hit rate must be in [0, 1]")

    @property
    def subscribers(self) -> int:
        return int(self.modems_supported * self.subscribers_per_modem)

    def cost_per_subscriber_per_month(self) -> float:
        return (self.server_cost_usd
                / self.subscribers
                / self.amortization_months)

    def cost_per_modem_per_month(self) -> float:
        return (self.server_cost_usd
                / self.modems_supported
                / self.amortization_months)

    def monthly_bandwidth_savings(self) -> float:
        """Telecom savings, scaled by how much of the paper's assumed
        50 % byte hit rate the installation actually achieves."""
        effectiveness = min(1.0, self.cache_byte_hit_rate / 0.5)
        return (self.t1_lines_replaced * self.t1_monthly_cost_usd
                * effectiveness)

    def payback_months(self) -> float:
        """Months until savings cover the server."""
        net_monthly = (self.monthly_bandwidth_savings()
                       - self.monthly_admin_cost_usd)
        if net_monthly <= 0:
            return float("inf")
        return self.server_cost_usd / net_monthly

    def report(self) -> Dict[str, float]:
        return {
            "subscribers": float(self.subscribers),
            "cost_per_subscriber_per_month_usd":
                self.cost_per_subscriber_per_month(),
            "cost_per_modem_per_month_usd":
                self.cost_per_modem_per_month(),
            "monthly_bandwidth_savings_usd":
                self.monthly_bandwidth_savings(),
            "payback_months": self.payback_months(),
        }
