"""Chaos campaigns: stress the soft-state claims where they matter.

The paper argues that soft state + timeouts + process peers survive any
single fault with no recovery protocol (Sections 2.2.4, 3.1.3, 4.5) —
but its testbed only ever produced *clean* faults over a perfectly
reliable SAN.  This package builds the machinery to prove (or falsify)
the claim under the regimes that actually break cluster systems: lost
beacons, dropped load reports, duplicated datagrams, delay jitter,
slow-but-not-dead nodes, and overlapping fault sequences.

* :mod:`repro.chaos.campaign` — a composable fault-campaign layer that
  schedules sequences and mixes of faults against a running fabric;
* :mod:`repro.chaos.invariants` — an online checker asserting the
  paper's soft-state guarantees during and after each campaign;
* :mod:`repro.chaos.report` — harvest/yield availability accounting
  quantifying graceful degradation per fault window;
* :mod:`repro.chaos.batch` — multi-seed campaign batches fanned out
  across worker processes (:mod:`repro.fanout`) with deterministic
  report folding.
"""

from repro.chaos.batch import (
    CampaignBatchReport,
    batch_seeds,
    run_campaign_batch,
)
from repro.chaos.campaign import (
    CAMPAIGNS,
    AsymmetricLink,
    Campaign,
    CampaignRunner,
    CorruptOutput,
    CrashWorkerNode,
    FailSlowBrick,
    FailSlowWorker,
    GrayBrickFault,
    GrayWorkerFault,
    HangBrick,
    HangWorker,
    HealSAN,
    KillBrick,
    KillFrontEnd,
    KillManager,
    KillWorker,
    LeakWorker,
    LossyWindow,
    PartitionSAN,
    PartitionWorker,
    RollingKills,
    Straggle,
    ZombieBrick,
    ZombieWorker,
    get_campaign,
    run_campaign,
)
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.chaos.report import ChaosReport

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignBatchReport",
    "CampaignRunner",
    "ChaosReport",
    "batch_seeds",
    "run_campaign_batch",
    "AsymmetricLink",
    "CorruptOutput",
    "CrashWorkerNode",
    "FailSlowBrick",
    "FailSlowWorker",
    "GrayBrickFault",
    "GrayWorkerFault",
    "HangBrick",
    "HangWorker",
    "HealSAN",
    "InvariantChecker",
    "InvariantViolation",
    "KillBrick",
    "KillFrontEnd",
    "KillManager",
    "KillWorker",
    "LeakWorker",
    "LossyWindow",
    "PartitionSAN",
    "PartitionWorker",
    "RollingKills",
    "Straggle",
    "ZombieBrick",
    "ZombieWorker",
    "get_campaign",
    "run_campaign",
]
