"""Composable fault campaigns: scheduled sequences and mixes of faults.

A :class:`Campaign` is a declarative script — a workload plus a list of
fault *actions*, each pinned to a simulated time — that the
:class:`CampaignRunner` executes against a freshly built SNS fabric
while the :class:`~repro.chaos.invariants.InvariantChecker` watches.
Actions compose freely: clean kills and node crash-restart loops (the
paper's Section 4.5 faults) mix with the lossy-SAN fault model's
message loss, duplication, and delay jitter, straggler nodes, and
rolling kill loops, so overlapping fault sequences — the regime the
paper never measured — are one list literal away.

Preset campaigns live in :data:`CAMPAIGNS`; ``python -m repro chaos
<name>`` runs one from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantChecker
from repro.chaos.report import ChaosReport, build_report
from repro.core.config import SNSConfig
from repro.core.messages import BEACON_GROUP
from repro.experiments._harness import build_bench_fabric
from repro.recovery.ledger import RecoveryLedger
from repro.recovery.policy import RecoveryPolicy
from repro.sim.failures import FaultInjector, FaultRecord
from repro.sim.network import ANY_SCOPE, CHANNEL_SCOPE
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

WORKER_TYPE = "jpeg-distiller"


# -- the campaign DSL ---------------------------------------------------------

@dataclass
class Fault:
    """Base action: something bad happens at ``at`` seconds."""

    at: float

    @property
    def heals_at(self) -> float:
        """When this fault stops being injected (instant for kills)."""
        return self.at

    @property
    def needs_reregistration_check(self) -> bool:
        return False


@dataclass
class KillWorker(Fault):
    """Kill ``count`` live workers (SIGKILL, Section 4.5's fault)."""

    count: int = 1


@dataclass
class KillManager(Fault):
    """Kill the manager; front-end watchdogs must restart it."""


@dataclass
class KillFrontEnd(Fault):
    """Kill one front end; the manager must restart it."""


@dataclass
class CrashWorkerNode(Fault):
    """Crash the node hosting a worker (taking the worker with it),
    optionally restarting the node after ``restart_after`` seconds."""

    restart_after: Optional[float] = None

    @property
    def heals_at(self) -> float:
        if self.restart_after is None:
            return self.at
        return self.at + self.restart_after


@dataclass
class PartitionWorker(Fault):
    """Cut one worker off the SAN for ``duration_s`` (Section 2.2.4)."""

    duration_s: float = 10.0

    @property
    def heals_at(self) -> float:
        return self.at + self.duration_s

    @property
    def needs_reregistration_check(self) -> bool:
        return True


@dataclass
class PartitionSAN(Fault):
    """Split the SAN: the nodes named by ``isolate`` end up in their own
    multicast/channel domain, cut off from everyone else until the
    window ends (or a :class:`HealSAN` fires earlier).

    ``isolate`` entries are *symbolic node specs* resolved at fire time,
    because populations churn: ``"manager"`` is whatever node hosts the
    current manager (or consensus leader) at that moment,
    ``"worker:<i>"`` the node of the i-th alive worker (sorted by
    name), ``"frontend:<i>"`` likewise; anything else is taken as a
    literal node name.
    """

    isolate: List[str] = field(default_factory=lambda: ["manager"])
    duration_s: float = 15.0

    @property
    def heals_at(self) -> float:
        return self.at + self.duration_s

    @property
    def needs_reregistration_check(self) -> bool:
        return True


@dataclass
class HealSAN(Fault):
    """End every active SAN partition window immediately."""


@dataclass
class AsymmetricLink(Fault):
    """One-way SAN reachability failure: traffic from ``src`` to ``dst``
    is blackholed while the reverse direction still works — the gray
    network fault that breaks failure detectors built on 'I can hear
    you, so you can hear me'.  Specs resolve like
    :class:`PartitionSAN`'s."""

    src: str = "worker:0"
    dst: str = "manager"
    duration_s: float = 10.0

    @property
    def heals_at(self) -> float:
        return self.at + self.duration_s

    @property
    def needs_reregistration_check(self) -> bool:
        return True


@dataclass
class LossyWindow(Fault):
    """Impose the lossy-SAN fault model on a traffic scope for a while.

    ``scope`` is a multicast group name (default: the manager beacon
    group), :data:`~repro.sim.network.CHANNEL_SCOPE` for reliable
    connections, or :data:`~repro.sim.network.ANY_SCOPE` for everything.
    """

    duration_s: float = 20.0
    scope: str = BEACON_GROUP
    loss: float = 0.2
    duplicate: float = 0.0
    jitter_s: float = 0.0

    @property
    def heals_at(self) -> float:
        return self.at + self.duration_s

    @property
    def needs_reregistration_check(self) -> bool:
        # dropped beacons can silently expire workers from the manager's
        # view; after the window heals the soft-state machinery must put
        # them back
        return self.loss > 0


@dataclass
class Straggle(Fault):
    """Degrade the CPU of a worker's node to ``factor`` of nominal
    without killing it — the fail-slow fault connection-based failure
    detection cannot see."""

    factor: float = 0.25
    duration_s: Optional[float] = None

    @property
    def heals_at(self) -> float:
        if self.duration_s is None:
            return self.at
        return self.at + self.duration_s


@dataclass
class RollingKills(Fault):
    """Kill one worker every ``period_s`` seconds for ``duration_s`` —
    the crash-restart churn loop ("recovery paths must be exercised
    constantly to stay cheap")."""

    duration_s: float = 20.0
    period_s: float = 5.0

    @property
    def heals_at(self) -> float:
        return self.at + self.duration_s


@dataclass
class GrayWorkerFault(Fault):
    """Base for gray failures: the victim worker stays alive and keeps
    beaconing load reports while failing at its actual job (Section 4.5's
    operational incidents).  ``heals_at == at`` deliberately — nothing
    in the fault heals itself; healing is the supervision layer's job
    and is measured by the recovery ledger, not assumed by the schedule.

    ``victim`` indexes into the gray-healthy live workers (sorted by
    name) at fire time, so one campaign can hit distinct workers.
    """

    victim: int = 0
    kind = "gray"

    def apply(self, stub: Any, now: float) -> None:
        raise NotImplementedError


@dataclass
class FailSlowWorker(GrayWorkerFault):
    """Inflate one worker's service time by ``factor`` (a sick disk,
    a misbehaving process) without killing it."""

    factor: float = 6.0
    kind = "fail-slow"

    def apply(self, stub: Any, now: float) -> None:
        stub.gray.fail_slow(self.factor, now)


@dataclass
class HangWorker(GrayWorkerFault):
    """The worker accepts its next request and never replies; the queue
    backs up behind it ("the RPC call to the distiller times out")."""

    kind = "hang"

    def apply(self, stub: Any, now: float) -> None:
        stub.gray.hang(now)


@dataclass
class ZombieWorker(GrayWorkerFault):
    """The worker keeps beaconing load reports but silently drops every
    submitted request — the balancer *prefers* its empty queue."""

    kind = "zombie"

    def apply(self, stub: Any, now: float) -> None:
        stub.gray.zombify(now)


@dataclass
class LeakWorker(GrayWorkerFault):
    """Monotonically degrading service rate — the Section 4.5
    memory-leak distiller 'cured' by periodic restarts."""

    rate_per_s: float = 0.5
    kind = "leak"

    def apply(self, stub: Any, now: float) -> None:
        stub.gray.leak(self.rate_per_s, now)


@dataclass
class CorruptOutput(GrayWorkerFault):
    """Requests complete on time but the output bytes fail end-to-end
    validation."""

    kind = "corrupt-output"

    def apply(self, stub: Any, now: float) -> None:
        stub.gray.corrupt_output(now)


@dataclass
class KillBrick(Fault):
    """kill -9 the profile brick on ``slot`` (dstore backend); the
    supervisor must notice the corpse and respawn it empty — cheap
    recovery's whole claim is that this costs a constant, not a replay.

    On the ``single`` backend the same action models the only possible
    equivalent: the one store goes down for restart **plus WAL replay
    proportional to committed transactions** — the cost curve the brick
    design exists to flatten.  The outage is entered into the ledger as
    an instantly-detected case healed at replay end, so the two
    backends' MTTR land in the same report column.
    """

    slot: int = 0


@dataclass
class GrayBrickFault(Fault):
    """Base for brick gray failures (dstore backend only): the brick
    stays alive while failing at its job.  Healing is the supervision
    layer's job, measured by the ledger, never assumed."""

    slot: int = 0
    kind = "gray"

    def apply(self, brick: Any, now: float) -> None:
        raise NotImplementedError


@dataclass
class FailSlowBrick(GrayBrickFault):
    """Inflate one brick's per-op service time without killing it; the
    supervisor's probe must flag the slow-ratio."""

    factor: float = 8.0
    kind = "fail-slow"

    def apply(self, brick: Any, now: float) -> None:
        brick.gray.fail_slow(self.factor, now)


@dataclass
class HangBrick(GrayBrickFault):
    """The brick stops answering the data plane and probes; quorum
    reads fall through to its replica peers meanwhile."""

    kind = "hang"

    def apply(self, brick: Any, now: float) -> None:
        brick.gray.hang(now)


@dataclass
class ZombieBrick(GrayBrickFault):
    """The brick acks every write and silently drops it while serving
    stale reads — the failure mode replication is specifically for.
    Detected by the probe's write-read canary, never by liveness."""

    kind = "zombie"

    def apply(self, brick: Any, now: float) -> None:
        brick.gray.zombify(now)


@dataclass
class Campaign:
    """A named, reproducible chaos scenario."""

    name: str
    description: str
    duration_s: float
    actions: List[Fault] = field(default_factory=list)
    # workload + topology
    rate_rps: float = 15.0
    n_nodes: int = 12
    n_frontends: int = 2
    initial_workers: int = 2
    client_timeout_s: float = 20.0
    #: bound for the end-of-run bounded-reply latency check; defaults
    #: to ``client_timeout_s``.  Setting it *below* the client timeout
    #: turns "slow but answered" into a violation — an SLO check, used
    #: by the tests that force a deadline violation deterministically.
    slo_latency_s: Optional[float] = None
    settle_s: float = 8.0
    config_overrides: Dict[str, Any] = field(default_factory=dict)
    #: enable the self-healing supervision layer (repro.recovery) with
    #: this policy.  None (the default) runs without a supervisor, as
    #: all the clean-fault campaigns do.
    recovery: Optional[RecoveryPolicy] = None
    #: profile storage behind the service: None keeps the classic
    #: profile-less bench service (every existing campaign unchanged),
    #: "single" is the WAL-backed ProfileStore, "dstore" the replicated
    #: brick cluster.
    profile_backend: Optional[str] = None
    #: control plane behind the workers: None/"soft" is the paper's
    #: single soft-state manager, "consensus" the Paxos-replicated
    #: manager group (the CLI's ``--manager-backend`` switch).
    manager_backend: Optional[str] = None
    #: worker-selection policy at the manager stubs (a
    #: :mod:`repro.balance` spec, e.g. ``"p2c"`` or ``"ewma+eject"``;
    #: the CLI's ``--policy`` switch).  None keeps the config default
    #: (the paper's lottery), under either manager backend.
    routing_policy: Optional[str] = None
    n_bricks: int = 3
    brick_replicas: int = 2
    #: period of the deterministic profile-writer client (only runs
    #: when a backend is configured).
    profile_write_interval_s: float = 1.0
    #: minimum profile read availability; checked as an invariant when
    #: set (reads during brick faults must be masked by the quorum).
    profile_read_slo: Optional[float] = None
    #: piecewise-constant offered load ``[(duration_s, rate_rps), ...]``
    #: replacing the constant-rate process when set — how the
    #: flash-crowd campaigns script their 10x burst.  Overload *is* the
    #: fault here, so these campaigns need no ``actions``.
    arrival_schedule: Optional[List[Tuple[float, float]]] = None
    #: distinct URLs/clients the engine cycles through; large pools
    #: defeat the result cache and drive cold misses to the origin.
    pool_size: int = 40
    #: input size of every pool record; distillation cost is linear in
    #: it, so this knob sets worker capacity relative to offered load.
    record_bytes: int = 10240
    #: fraction of pool records marked ``priority="batch"`` — the class
    #: priority-admission (ladder level 4) sheds first.
    batch_fraction: float = 0.0
    #: service layer: None keeps the classic bench services,
    #: "degradable" installs the brownout service (repro.degrade).
    service_backend: Optional[str] = None
    #: "controller" starts the closed-loop DegradationController after
    #: boot; None runs whatever the config armed statically.
    degradation: Optional[str] = None
    #: minimum end-of-run yield; checked as an invariant when set (the
    #: brownout controller's harvest-for-yield claim).
    yield_slo: Optional[float] = None

    @property
    def final_heal_s(self) -> float:
        """When the last scheduled fault stops being injected."""
        return max((action.heals_at for action in self.actions),
                   default=0.0)

    def validate(self) -> "Campaign":
        for action in self.actions:
            if action.at < 0:
                raise ValueError(f"{action} scheduled before t=0")
            if action.heals_at == float("inf"):
                raise ValueError(f"{action} never heals")
        if self.final_heal_s >= self.duration_s:
            raise ValueError(
                f"campaign {self.name!r} ends at {self.duration_s}s "
                f"but its last fault heals at {self.final_heal_s}s; "
                "leave room to observe recovery")
        if self.arrival_schedule is not None:
            if not self.arrival_schedule:
                raise ValueError("arrival_schedule must not be empty")
            for duration, rate in self.arrival_schedule:
                if duration <= 0 or rate < 0:
                    raise ValueError(
                        f"bad arrival step ({duration}, {rate}): "
                        "duration must be positive, rate non-negative")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if not 0.0 <= self.batch_fraction < 1.0:
            raise ValueError("batch_fraction must be in [0, 1)")
        if self.degradation not in (None, "controller"):
            raise ValueError(
                f"unknown degradation mode {self.degradation!r}")
        if self.yield_slo is not None \
                and not 0.0 < self.yield_slo <= 1.0:
            raise ValueError("yield_slo must be in (0, 1]")
        return self


def chaos_config(**overrides) -> SNSConfig:
    """Campaign default config: fast soft-state refresh plus the
    hardened request path (deadline shedding + admission control)."""
    defaults: Dict[str, Any] = dict(
        beacon_interval_s=0.5,
        report_interval_s=0.5,
        spawn_threshold=6.0,
        spawn_damping_s=4.0,
        dispatch_timeout_s=3.0,
        worker_timeout_s=3.0,
        reap_after_s=60.0,
        frontend_connection_overhead_s=0.001,
        shed_expired_requests=True,
        admission_max_backlog_s=2.0,
    )
    defaults.update(overrides)
    return SNSConfig(**defaults)


# -- the runner ----------------------------------------------------------------

class CampaignRunner:
    """Builds a fabric, arms the campaign, runs it under load, and
    returns the availability report plus any invariant violations."""

    def __init__(self, campaign: Campaign, seed: int = 1997) -> None:
        self.campaign = campaign.validate()
        self.seed = seed
        self.fabric = build_bench_fabric(
            n_nodes=campaign.n_nodes, seed=seed,
            config=chaos_config(**campaign.config_overrides),
            profile_backend=campaign.profile_backend,
            n_bricks=campaign.n_bricks,
            brick_replicas=campaign.brick_replicas,
            manager_backend=campaign.manager_backend,
            routing_policy=campaign.routing_policy,
            service_backend=campaign.service_backend)
        self.cluster = self.fabric.cluster
        self.env = self.cluster.env
        self.faults = self.cluster.network.install_faults(
            self.cluster.streams.stream("chaos:netfaults"))
        self.injector = FaultInjector(
            self.env, self.cluster.streams.stream("chaos:faults"))
        self.checker = InvariantChecker(self.fabric)
        self.engine = PlaybackEngine(
            self.env, self.checker.checked_submit(self.fabric.submit),
            rng=RandomStreams(seed).stream("chaos:playback"),
            timeout_s=campaign.client_timeout_s)
        self.ledger = RecoveryLedger(self.env)
        if self.fabric.profile_bricks is not None:
            # rejoin records flow into the same ledger the report reads
            self.fabric.profile_bricks.ledger = self.ledger
        self.supervisor: Optional[Any] = None
        self.controller: Optional[Any] = None
        self._straggled: List[Any] = []
        #: deterministic profile-writer counters (attempted includes
        #: writes refused while the single store is down).
        self.profile_writes = {"attempted": 0, "committed": 0,
                               "failed": 0}

    # -- target selection (resolved at fire time: populations churn) -----

    def _alive_workers(self) -> List[Any]:
        return sorted(self.fabric.alive_workers(),
                      key=lambda stub: stub.name)

    def _at(self, time: float, fire: Callable[[], None]) -> None:
        def later():
            yield self.env.timeout(max(0.0, time - self.env.now))
            fire()
        self.env.process(later())

    def _resolve_node_spec(self, spec: str) -> Optional[str]:
        """Turn a symbolic node spec into a node name at fire time."""
        if spec == "manager":
            manager = self.fabric.manager
            if manager is None and self.fabric.manager_group is not None:
                group = self.fabric.manager_group
                manager = group.leader or group.replicas[0]
            return manager.node.name if manager is not None else None
        if spec.startswith("worker:"):
            workers = self._alive_workers()
            if not workers:
                return None
            index = int(spec.split(":", 1)[1])
            return workers[index % len(workers)].node.name
        if spec.startswith("frontend:"):
            frontends = sorted(self.fabric.alive_frontends(),
                               key=lambda fe: fe.name)
            if not frontends:
                return None
            index = int(spec.split(":", 1)[1])
            return frontends[index % len(frontends)].node.name
        return spec

    # -- arming actions ---------------------------------------------------------

    def _arm(self, action: Fault) -> None:
        if isinstance(action, KillWorker):
            def kill_workers(action=action):
                for stub in self._alive_workers()[:action.count]:
                    self.injector.kill_now(stub)
            self._at(action.at, kill_workers)
        elif isinstance(action, KillManager):
            def kill_manager():
                manager = self.fabric.manager
                if manager is not None and manager.alive:
                    self.injector.kill_now(manager)
            self._at(action.at, kill_manager)
        elif isinstance(action, KillFrontEnd):
            def kill_frontend():
                frontends = self.fabric.alive_frontends()
                if len(frontends) > 1:  # keep one to restart the manager
                    self.injector.kill_now(
                        sorted(frontends, key=lambda fe: fe.name)[-1])
            self._at(action.at, kill_frontend)
        elif isinstance(action, CrashWorkerNode):
            def crash_node(action=action):
                workers = self._alive_workers()
                if not workers:
                    return
                node = workers[0].node
                node.crash()
                self.injector.log.append(
                    FaultRecord(self.env.now, "node-crash", node.name))
                for stub in list(self.fabric.workers.values()):
                    if stub.alive and stub.node is node:
                        self.injector.kill_now(stub)
                if action.restart_after is not None:
                    self._at(self.env.now + action.restart_after,
                             node.restart)
            self._at(action.at, crash_node)
        elif isinstance(action, PartitionWorker):
            def partition(action=action):
                workers = self._alive_workers()
                if workers:
                    self.injector.partition_at(
                        self.env.now, workers[0], action.duration_s)
            self._at(action.at, partition)
        elif isinstance(action, PartitionSAN):
            def partition_san(action=action):
                partitions = self.cluster.install_partitions()
                groups = {}
                for spec in action.isolate:
                    node_name = self._resolve_node_spec(spec)
                    if node_name is not None:
                        groups[node_name] = "isolated"
                if not groups:
                    return
                partitions.split(groups, duration_s=action.duration_s)
                self.injector.log.append(FaultRecord(
                    self.env.now, "san-partition",
                    "+".join(sorted(groups))))
            self._at(action.at, partition_san)
        elif isinstance(action, HealSAN):
            def heal_san():
                partitions = self.cluster.network.partitions
                if partitions is not None and partitions.active():
                    partitions.heal()
                    self.injector.log.append(
                        FaultRecord(self.env.now, "san-heal", "all"))
            self._at(action.at, heal_san)
        elif isinstance(action, AsymmetricLink):
            def asymmetric(action=action):
                partitions = self.cluster.install_partitions()
                src = self._resolve_node_spec(action.src)
                dst = self._resolve_node_spec(action.dst)
                if src is None or dst is None or src == dst:
                    return
                partitions.one_way(src, dst,
                                   duration_s=action.duration_s)
                self.injector.log.append(FaultRecord(
                    self.env.now, "san-oneway", f"{src}->{dst}"))
            self._at(action.at, asymmetric)
        elif isinstance(action, LossyWindow):
            self.faults.impose(
                scope=action.scope, loss=action.loss,
                duplicate=action.duplicate, jitter_s=action.jitter_s,
                start=action.at, duration_s=action.duration_s)
        elif isinstance(action, Straggle):
            def straggle(action=action):
                workers = self._alive_workers()
                if not workers:
                    return
                node = workers[-1].node
                node.degrade(action.factor)
                self._straggled.append(node)
                if action.duration_s is not None:
                    self._at(self.env.now + action.duration_s,
                             node.recover_speed)
            self._at(action.at, straggle)
        elif isinstance(action, GrayWorkerFault):
            def inject_gray(action=action):
                candidates = [stub for stub in self._alive_workers()
                              if not stub.gray.is_gray]
                if not candidates:
                    return
                stub = candidates[action.victim % len(candidates)]
                now = self.env.now
                action.apply(stub, now)
                self.injector.log.append(
                    FaultRecord(now, action.kind, stub.name))
                self.ledger.inject(action.kind, stub.name)
            self._at(action.at, inject_gray)
        elif isinstance(action, RollingKills):
            self.injector.rolling_kills(
                self._alive_workers, start=action.at,
                period_s=action.period_s,
                stop_at=action.at + action.duration_s)
        elif isinstance(action, KillBrick):
            def kill_brick(action=action):
                bricks = self.fabric.profile_bricks
                if bricks is not None:
                    brick = bricks.brick_at(action.slot)
                    if brick is not None and brick.alive:
                        self.ledger.inject("brick-kill", brick.name)
                        self.injector.kill_now(brick)
                elif self.fabric.profile_store is not None:
                    self._kill_single_store()
            self._at(action.at, kill_brick)
        elif isinstance(action, GrayBrickFault):
            def inject_brick_gray(action=action):
                bricks = self.fabric.profile_bricks
                if bricks is None:
                    return  # single backend has no gray surface
                brick = bricks.brick_at(action.slot)
                if brick is None or not brick.alive \
                        or brick.gray.is_gray:
                    return
                now = self.env.now
                action.apply(brick, now)
                self.injector.log.append(
                    FaultRecord(now, action.kind, brick.name))
                self.ledger.inject(action.kind, brick.name)
            self._at(action.at, inject_brick_gray)
        else:
            raise TypeError(f"unknown campaign action {action!r}")

    def _kill_single_store(self) -> None:
        """Single-backend equivalent of a brick kill: the one store is
        down for restart **plus WAL replay proportional to committed
        transactions**.  The outage enters the ledger as an instantly
        detected case healed at replay end, so both backends' MTTR land
        in the same report column."""
        from repro.experiments._harness import (SINGLE_REPLAY_PER_TXN_S,
                                                SINGLE_RESTART_S)
        store = self.fabric.profile_store
        service = self.fabric.service
        now = self.env.now
        outage = SINGLE_RESTART_S + \
            SINGLE_REPLAY_PER_TXN_S * store.commits
        service.store_down_until = max(service.store_down_until,
                                       now + outage)
        self.injector.log.append(
            FaultRecord(now, "store-kill", "profile-store"))
        case = self.ledger.inject("brick-kill", "profile-store")
        case.detected_at = now
        case.detector = "restart-watchdog"
        case.detail = f"WAL replay of {store.commits} txns"
        self._at(now + outage,
                 lambda: self.ledger.note_healed(
                     case, "restart+replay", "profile-store"))

    # -- profile write load ------------------------------------------------

    def _profile_writer(self):
        """Deterministic profile-write client: round-robins users and
        front ends so the committed-write-loss invariant has state
        worth losing.  Versioned-tombstone deletes are part of the mix
        (every 10th op)."""
        from repro.dstore.store import QuorumError
        campaign = self.campaign
        service = self.fabric.service
        counter = 0
        while self.env.now + campaign.profile_write_interval_s \
                < campaign.duration_s:
            yield self.env.timeout(campaign.profile_write_interval_s)
            frontends = sorted(self.fabric.alive_frontends(),
                               key=lambda fe: fe.name)
            if not frontends:
                continue
            cache = service.profile_cache_for(
                frontends[counter % len(frontends)].name)
            user = f"client{counter % 40}"
            self.profile_writes["attempted"] += 1
            if not service.store_available:
                self.profile_writes["failed"] += 1
            else:
                try:
                    if counter % 10 == 9:
                        cache.delete(user, "quality")
                    elif counter % 3 == 0:
                        cache.set(user, "scale",
                                  round(0.1 + (counter % 9) / 10.0, 1))
                    else:
                        cache.set(user, "quality",
                                  5 + (counter * 7) % 90)
                    self.profile_writes["committed"] += 1
                except QuorumError:
                    self.profile_writes["failed"] += 1
            counter += 1

    def _profile_results(self) -> Dict[str, Any]:
        """Final profile-path verification + numbers for the report."""
        service = self.fabric.service
        store = self.fabric.profile_store
        lost = self.checker.final_profile_checks(
            store, service, read_slo=self.campaign.profile_read_slo)
        results = {
            "backend": self.campaign.profile_backend,
            "reads": service.profile_reads,
            "read_failures": service.profile_read_failures,
            "read_availability": service.profile_read_availability,
            "writes": dict(self.profile_writes),
            "lost_writes": lost,
            "store": (store.stats() if hasattr(store, "stats")
                      else {"commits": store.commits,
                            "aborts": store.aborts}),
        }
        if self.fabric.profile_bricks is not None:
            results["bricks"] = self.fabric.profile_bricks.stats()
        return results

    # -- execution ---------------------------------------------------------------

    def run(self) -> ChaosReport:
        campaign = self.campaign
        self.fabric.boot(
            n_frontends=campaign.n_frontends,
            initial_workers={WORKER_TYPE: campaign.initial_workers})
        if campaign.recovery is not None:
            self.supervisor = self.fabric.start_supervisor(
                campaign.recovery, ledger=self.ledger)
        if campaign.degradation == "controller":
            self.controller = self.fabric.start_degradation()
        self.cluster.run(until=2.0)

        # every Nth record is batch-class when a batch fraction is set,
        # so priority admission has a class to shed deterministically
        batch_every = (round(1.0 / campaign.batch_fraction)
                       if campaign.batch_fraction > 0 else 0)
        pool = [
            TraceRecord(0.0, f"client{index}",
                        f"http://chaos/img{index}.jpg", "image/jpeg",
                        campaign.record_bytes,
                        priority=("batch" if batch_every
                                  and index % batch_every
                                  == batch_every - 1
                                  else "interactive"))
            for index in range(campaign.pool_size)
        ]
        if campaign.arrival_schedule is not None:
            self.env.process(self.engine.ramp(
                campaign.arrival_schedule, pool))
        else:
            self.env.process(self.engine.constant_rate(
                campaign.rate_rps, campaign.duration_s, pool))
        if campaign.profile_backend is not None:
            self.env.process(self._profile_writer())

        for action in campaign.actions:
            self._arm(action)
            if action.needs_reregistration_check:
                self.checker.expect_reregistration(action.heals_at)
        self.checker.expect_convergence(
            campaign.final_heal_s + campaign.settle_s)

        run_until = campaign.duration_s + campaign.client_timeout_s + \
            campaign.settle_s
        self.cluster.run(until=run_until)

        self.checker.final_checks(
            self.engine,
            max_latency_s=(campaign.slo_latency_s
                           if campaign.slo_latency_s is not None
                           else campaign.client_timeout_s))
        if campaign.yield_slo is not None:
            self.checker.final_yield_check(self.engine,
                                           campaign.yield_slo)
        profile = (self._profile_results()
                   if campaign.profile_backend is not None else None)
        consensus = None
        if self.fabric.manager_group is not None:
            self.checker.final_consensus_checks(self.fabric.manager_group)
            consensus = self.fabric.manager_group.stats()
        return build_report(
            campaign=campaign, seed=self.seed, fabric=self.fabric,
            engine=self.engine, checker=self.checker,
            injector=self.injector, faults=self.faults,
            ledger=self.ledger, supervisor=self.supervisor,
            profile=profile, consensus=consensus,
            degradation=(self.controller.summary()
                         if self.controller is not None else None))


def run_campaign(campaign: Campaign, seed: int = 1997) -> ChaosReport:
    """Build, run, and report one campaign."""
    return CampaignRunner(campaign, seed=seed).run()


# -- preset campaigns ----------------------------------------------------------

def _smoke() -> Campaign:
    return Campaign(
        name="smoke",
        description="one worker kill + a short lossy-beacon window "
                    "(fast, deterministic; the CI gate)",
        duration_s=45.0,
        actions=[
            KillWorker(at=8.0),
            LossyWindow(at=12.0, duration_s=10.0, loss=0.3),
        ],
        rate_rps=10.0,
        n_nodes=8,
    )


def _mixed() -> Campaign:
    """The acceptance scenario: manager crash + 20% beacon loss + one
    straggler + a rolling worker-kill loop, all overlapping."""
    return Campaign(
        name="mixed",
        description="manager crash + lossy multicast (20% beacon loss) "
                    "+ straggler node + rolling worker-kill loop",
        duration_s=75.0,
        actions=[
            LossyWindow(at=10.0, duration_s=35.0, loss=0.20),
            Straggle(at=12.0, factor=0.25, duration_s=28.0),
            KillManager(at=16.0),
            RollingKills(at=18.0, duration_s=18.0, period_s=4.5),
        ],
    )


def _lossy_san() -> Campaign:
    return Campaign(
        name="lossy-san",
        description="escalating loss, duplication, and jitter on "
                    "beacons, then on everything including channels",
        duration_s=70.0,
        actions=[
            LossyWindow(at=8.0, duration_s=12.0, loss=0.3),
            LossyWindow(at=22.0, duration_s=12.0, loss=0.5,
                        duplicate=0.2, jitter_s=0.05),
            LossyWindow(at=36.0, duration_s=12.0, scope=ANY_SCOPE,
                        loss=0.2, jitter_s=0.02),
            LossyWindow(at=36.0, duration_s=12.0, scope=CHANNEL_SCOPE,
                        loss=0.15, jitter_s=0.05),
        ],
    )


def _partition_heal() -> Campaign:
    return Campaign(
        name="partition-heal",
        description="SAN partition + beacon loss overlapping, the "
                    "Section 2.2.4 scenario made dirty",
        duration_s=60.0,
        actions=[
            PartitionWorker(at=10.0, duration_s=15.0),
            LossyWindow(at=18.0, duration_s=14.0, loss=0.25),
            KillWorker(at=20.0),
        ],
    )


def _stragglers() -> Campaign:
    return Campaign(
        name="stragglers",
        description="fail-slow nodes under churn: two straggle windows "
                    "plus kills",
        duration_s=60.0,
        actions=[
            Straggle(at=8.0, factor=0.2, duration_s=20.0),
            KillWorker(at=14.0),
            Straggle(at=20.0, factor=0.5, duration_s=15.0),
            KillWorker(at=30.0),
        ],
        config_overrides=dict(load_metric="weighted-cost"),
    )


def _duplication() -> Campaign:
    return Campaign(
        name="duplication",
        description="heavy datagram duplication + jitter: registration "
                    "storms and double-delivery stress",
        duration_s=50.0,
        actions=[
            LossyWindow(at=8.0, duration_s=20.0, duplicate=0.5,
                        jitter_s=0.1),
            KillManager(at=14.0),
        ],
    )


def _crash_restart() -> Campaign:
    return Campaign(
        name="crash-restart",
        description="node crash-restart loops with beacon loss",
        duration_s=65.0,
        actions=[
            CrashWorkerNode(at=10.0, restart_after=15.0),
            LossyWindow(at=12.0, duration_s=20.0, loss=0.2),
            CrashWorkerNode(at=30.0, restart_after=10.0),
        ],
    )


def _gray_failures() -> Campaign:
    """The robustness acceptance scenario: every gray-failure mode
    injected into a supervised fabric, all of them detected and healed
    without human intervention."""
    return Campaign(
        name="gray-failures",
        description="fail-slow + hang + zombie + leak + corrupt-output "
                    "under self-healing supervision (probes, "
                    "RPC-timeout kills, load-outlier detection)",
        duration_s=110.0,
        actions=[
            HangWorker(at=10.0, victim=0),
            ZombieWorker(at=25.0, victim=1),
            FailSlowWorker(at=40.0, victim=0, factor=6.0),
            LeakWorker(at=55.0, victim=1, rate_per_s=0.5),
            CorruptOutput(at=70.0, victim=0),
        ],
        rate_rps=15.0,
        n_nodes=12,
        n_frontends=2,
        initial_workers=3,
        settle_s=25.0,
        recovery=RecoveryPolicy(),
    )


def _gray_smoke() -> Campaign:
    """Reduced-duration gray-failure campaign for the CI gate."""
    return Campaign(
        name="gray-smoke",
        description="hang + zombie + fail-slow under supervision "
                    "(reduced duration; the CI gate)",
        duration_s=60.0,
        actions=[
            HangWorker(at=8.0),
            ZombieWorker(at=20.0),
            FailSlowWorker(at=32.0, factor=6.0),
        ],
        rate_rps=12.0,
        n_nodes=10,
        n_frontends=2,
        initial_workers=3,
        settle_s=20.0,
        recovery=RecoveryPolicy(),
    )


def _brick_failures() -> Campaign:
    """The cheap-recovery acceptance scenario: kill and gray-fail
    profile bricks under live read+write load.  The invariants: zero
    committed profile writes lost (quorum overlap + authority protocol)
    and read availability ≥ 0.99 (faults masked by replica peers).
    Faults are spaced so anti-entropy finishes between them — two
    *overlapping* replica losses in an N=3/R=2 placement may lose the
    single surviving copy by design (that is the R=2 contract, not a
    bug)."""
    return Campaign(
        name="brick-failures",
        description="brick kill -9 x2 + fail-slow + zombie + hang "
                    "against the replicated profile store (N=3, R=2) "
                    "under supervision; zero committed-write loss and "
                    "0.99 read availability are invariants",
        duration_s=120.0,
        actions=[
            KillBrick(at=10.0, slot=0),
            FailSlowBrick(at=35.0, slot=1, factor=8.0),
            KillBrick(at=55.0, slot=2),
            ZombieBrick(at=75.0, slot=1),
            HangBrick(at=90.0, slot=0),
        ],
        rate_rps=12.0,
        n_nodes=10,
        n_frontends=2,
        initial_workers=3,
        settle_s=25.0,
        recovery=RecoveryPolicy(),
        profile_backend="dstore",
        n_bricks=3,
        brick_replicas=2,
        profile_write_interval_s=0.8,
        profile_read_slo=0.99,
    )


def _brick_smoke() -> Campaign:
    """Reduced brick-failure campaign for the CI gate."""
    return Campaign(
        name="brick-smoke",
        description="brick kill + fail-slow + zombie under supervision "
                    "(reduced duration; the CI gate for committed-write "
                    "loss)",
        duration_s=70.0,
        actions=[
            KillBrick(at=8.0, slot=0),
            FailSlowBrick(at=25.0, slot=1, factor=8.0),
            ZombieBrick(at=40.0, slot=2),
        ],
        rate_rps=10.0,
        n_nodes=8,
        n_frontends=2,
        initial_workers=3,
        settle_s=20.0,
        recovery=RecoveryPolicy(),
        profile_backend="dstore",
        n_bricks=3,
        brick_replicas=2,
        profile_write_interval_s=0.8,
        profile_read_slo=0.99,
    )


def _brick_failures_single() -> Campaign:
    """The comparison baseline: the same kill schedule against the
    single WAL-backed store.  Each kill takes the whole profile path
    down for restart + replay proportional to the commit count, so
    MTTR grows with log length and read availability dips — the exact
    numbers EXPERIMENTS.md tables against the dstore run."""
    return Campaign(
        name="brick-failures-single",
        description="the brick-failures kill schedule against the "
                    "single-node WAL store: outage = restart + replay "
                    "of the whole log (the cost cheap recovery "
                    "flattens)",
        duration_s=120.0,
        actions=[
            KillBrick(at=10.0),
            KillBrick(at=55.0),
        ],
        rate_rps=12.0,
        n_nodes=10,
        n_frontends=2,
        initial_workers=3,
        settle_s=25.0,
        profile_backend="single",
        profile_write_interval_s=0.8,
    )


#: name -> zero-argument factory returning a fresh Campaign.
def _partition_failures() -> Campaign:
    """The consensus acceptance scenario: isolate the manager's node
    from the SAN twice (the second cut lands on whoever took over) with
    a one-way worker->manager gray link in between.  Run it under both
    ``--manager-backend`` values: the soft single manager gets deposed
    and replaced on stale views, the Paxos group fails over by
    election and must show zero wrong-decision dispatches.
    """
    return Campaign(
        name="partition-failures",
        description="two SAN partitions isolating the current manager "
                    "+ an asymmetric worker->manager link; soft vs "
                    "consensus control planes",
        duration_s=95.0,
        actions=[
            PartitionSAN(at=15.0, isolate=["manager"], duration_s=20.0),
            AsymmetricLink(at=45.0, src="worker:0", dst="manager",
                           duration_s=10.0),
            PartitionSAN(at=60.0, isolate=["manager"], duration_s=15.0),
        ],
        n_nodes=12,
        config_overrides={"manager_self_deposition": True},
    )


def _partition_smoke() -> Campaign:
    """Reduced partition campaign for the CI gate (both backends)."""
    return Campaign(
        name="partition-smoke",
        description="one SAN partition isolating the manager + a short "
                    "asymmetric link (fast; the CI partition gate)",
        duration_s=60.0,
        actions=[
            PartitionSAN(at=10.0, isolate=["manager"], duration_s=12.0),
            AsymmetricLink(at=30.0, src="worker:0", dst="manager",
                           duration_s=8.0),
        ],
        rate_rps=10.0,
        n_nodes=10,
        config_overrides={"manager_self_deposition": True},
    )


#: the flash-crowd load shape: 20s warm-up at the nominal rate, a 15s
#: 10x burst, then 45s of recovery at the nominal rate again.
_FLASH_SCHEDULE: List[Tuple[float, float]] = [
    (20.0, 12.0), (15.0, 120.0), (45.0, 12.0)]


def _flash_crowd_campaign(**kwargs) -> Campaign:
    """Shared shape of the two flash-crowd arms: identical topology,
    load, pool, and degradable service — the arms differ *only* in
    whether the brownout defenses are armed, so the yield gap between
    the reports is attributable to the controller."""
    base: Dict[str, Any] = dict(
        duration_s=80.0,
        actions=[],
        arrival_schedule=list(_FLASH_SCHEDULE),
        n_nodes=8,
        n_frontends=2,
        initial_workers=3,
        client_timeout_s=20.0,
        settle_s=8.0,
        pool_size=400,
        batch_fraction=0.15,
        record_bytes=24576,
        profile_backend="dstore",
        service_backend="degradable",
    )
    base.update(kwargs)
    overrides: Dict[str, Any] = dict(
        frontend_threads=60,
        # pin capacity: the burst must not be rescued by the autoscaler
        # mid-flight, or the arms would measure spawn latency instead
        # of the degradation ladder
        spawn_threshold=1000.0,
        spawn_damping_s=60.0,
    )
    overrides.update(base.pop("config_overrides", {}))
    base["config_overrides"] = overrides
    return Campaign(**base)


def _flash_crowd() -> Campaign:
    """The brownout acceptance scenario: a 10x offered-load burst that
    the controller must ride out by spending harvest — forced
    low-fidelity distillation, stale serves, relaxed profile reads —
    while the retry budget and origin breaker keep the overload from
    amplifying itself.  Yield >= 0.99 is an invariant."""
    return _flash_crowd_campaign(
        name="flash-crowd",
        description="10x offered-load burst against the brownout "
                    "controller (ladder + retry budget + origin "
                    "breaker); yield >= 0.99 is an invariant",
        degradation="controller",
        yield_slo=0.99,
        config_overrides=dict(
            admission_exit_backlog_s=1.0,
            retry_budget_ratio=0.1,
            retry_budget_cap=10.0,
            origin_breaker_failures=3,
            degrade_util_target=0.85,
        ),
    )


def _flash_crowd_baseline() -> Campaign:
    """The comparison arm: same burst, same service and cost model,
    every brownout defense off — binary admission control only,
    unlimited retries, no breaker.  EXPERIMENTS.md tables its yield
    against the controller arm's."""
    return _flash_crowd_campaign(
        name="flash-crowd-baseline",
        description="the same 10x burst with every brownout defense "
                    "off: binary shed only, unlimited retries, no "
                    "origin breaker",
    )


CAMPAIGNS: Dict[str, Callable[[], Campaign]] = {
    "smoke": _smoke,
    "mixed": _mixed,
    "lossy-san": _lossy_san,
    "partition-heal": _partition_heal,
    "stragglers": _stragglers,
    "duplication": _duplication,
    "crash-restart": _crash_restart,
    "gray-failures": _gray_failures,
    "gray-smoke": _gray_smoke,
    "brick-failures": _brick_failures,
    "brick-smoke": _brick_smoke,
    "brick-failures-single": _brick_failures_single,
    "partition-failures": _partition_failures,
    "partition-smoke": _partition_smoke,
    "flash-crowd": _flash_crowd,
    "flash-crowd-baseline": _flash_crowd_baseline,
}


def get_campaign(name: str) -> Campaign:
    if name not in CAMPAIGNS:
        raise KeyError(
            f"unknown campaign {name!r}; "
            f"available: {', '.join(sorted(CAMPAIGNS))}")
    return CAMPAIGNS[name]()
