"""Online invariant checker for chaos campaigns.

Each invariant is one of the paper's soft-state guarantees, restated as
something falsifiable while faults are still landing:

* **reregistration** — every worker that was live at a heal re-registers
  with the manager within ``k`` beacon periods (counting only periods a
  manager was alive to hear it), Section 3.1.3's "a newly restarted
  manager reconstructs the whole picture from re-registrations";
* **convergence** — after the final heal the manager's worker view
  becomes *exactly* the set of live, reachable workers, within a bound;
* **bounded-reply** — no client reply event hangs past the client
  timeout: every submitted request reaches an outcome and no completion
  exceeds the bound;
* **single-completion** — no request is answered twice, even under
  duplicated datagram delivery.

Violations are collected, not raised: a campaign runs to completion and
reports everything it caught, which is what lets the "checker has
teeth" test show a deliberately weakened system failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass
class InvariantViolation:
    """One observed violation of a soft-state guarantee."""

    time: float
    invariant: str
    detail: str
    #: trace id of the offending request, when span tracing sampled it.
    trace_id: Optional[str] = None
    #: rendered span tree of the offending request (repro.obs), so the
    #: report shows *where* the violated request spent its time.
    span_tree: Optional[str] = None

    def __repr__(self) -> str:
        return (f"<Violation {self.invariant} @ {self.time:.2f}s: "
                f"{self.detail}>")


class InvariantChecker:
    """Watches a fabric (and its playback engine) during a campaign."""

    def __init__(self, fabric: Any,
                 reregister_periods: Optional[int] = None) -> None:
        self.fabric = fabric
        self.config = fabric.config
        self.env = fabric.cluster.env
        self.reregister_periods = (
            reregister_periods if reregister_periods is not None
            else 2 * self.config.beacon_loss_tolerance)
        #: the environment's span tracer (None when tracing is off);
        #: lets violations carry the offending request's span tree.
        self.tracer = self.env.tracer
        self.violations: List[InvariantViolation] = []
        # single-completion bookkeeping
        self.submitted = 0
        self._completions: Dict[int, int] = {}
        # measured outcomes, surfaced in the report
        self.reregistration_times: List[float] = []
        self.convergence_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, invariant: str, detail: str,
                  trace_id: Optional[str] = None) -> None:
        self.violations.append(InvariantViolation(
            self.env.now, invariant, detail, trace_id=trace_id,
            span_tree=self._span_tree_for(trace_id)))

    def _span_tree_for(self, trace_id: Optional[str]) -> Optional[str]:
        """Rendered span tree of the offending request, when the tracer
        sampled it."""
        tracer = (self.tracer if self.tracer is not None
                  else self.env.tracer)
        if trace_id is None or tracer is None:
            return None
        spans = tracer.trace(trace_id)
        if not spans:
            return None
        from repro.obs.attribution import render_span_tree
        return render_span_tree(spans)

    # -- single-completion ---------------------------------------------------

    def checked_submit(self, submit: Callable[[Any], Any]
                       ) -> Callable[[Any], Any]:
        """Wrap a submit function so every reply event is audited: each
        client request must complete at most once."""
        def wrapped(record: Any):
            event = submit(record)
            key = self.submitted
            self.submitted += 1
            if event.callbacks is not None:
                event.callbacks.append(
                    lambda _event, key=key: self._completed(key))
            else:
                # already processed before we could watch it: count it
                self._completed(key)
            return event
        return wrapped

    def _completed(self, key: int) -> None:
        count = self._completions.get(key, 0) + 1
        self._completions[key] = count
        if count > 1:
            self.violation(
                "single-completion",
                f"request {key} completed {count} times")

    # -- reregistration after a heal -----------------------------------------

    def expect_reregistration(self, heal_time: float,
                              periods: Optional[int] = None) -> None:
        """Assert that every worker live at ``heal_time`` re-registers
        within ``periods`` beacon periods of it (default
        ``2 * beacon_loss_tolerance``).  Periods with no live manager
        (it may itself be mid-restart) do not count against the budget;
        workers killed after the heal drop out of the requirement."""
        self.env.process(self._reregistration_check(
            heal_time,
            periods if periods is not None else self.reregister_periods))

    def _ground_truth(self) -> List[Any]:
        """Workers a correct manager must know: alive, reachable, and on
        an up node."""
        return [
            stub for stub in self.fabric.workers.values()
            if stub.alive and not stub.is_partitioned and stub.node.up
        ]

    def _reregistration_check(self, heal_time: float, periods: int):
        yield self.env.timeout(max(0.0, heal_time - self.env.now))
        expected = {stub.name for stub in self._ground_truth()}
        if not expected:
            return  # nothing was live at the heal: nothing to assert
        interval = self.config.beacon_interval_s
        live_polls = 0
        while True:
            yield self.env.timeout(interval)
            manager = self.fabric.manager
            if manager is None or not manager.alive:
                continue  # a manager restart is in progress
            live_polls += 1
            still_due = {
                stub.name for stub in self._ground_truth()
                if stub.name in expected
            }
            missing = sorted(still_due - set(manager.workers))
            if not missing:
                self.reregistration_times.append(
                    self.env.now - heal_time)
                return
            if live_polls >= periods:
                self.violation(
                    "reregistration",
                    f"{missing} not re-registered {periods} beacon "
                    f"periods after heal at {heal_time:.1f}s")
                return

    # -- convergence to ground truth -----------------------------------------

    def expect_convergence(self, after_time: float,
                           within_s: Optional[float] = None) -> None:
        """Assert the manager's worker view equals ground truth within
        ``within_s`` seconds of ``after_time`` (default 10 beacon
        periods) and record how long convergence took."""
        budget = (within_s if within_s is not None
                  else 10 * self.config.beacon_interval_s)
        self.env.process(self._convergence_check(after_time, budget))

    def _convergence_check(self, after_time: float, within_s: float):
        yield self.env.timeout(max(0.0, after_time - self.env.now))
        deadline = self.env.now + within_s
        while True:
            manager = self.fabric.manager
            truth = {stub.name for stub in self._ground_truth()}
            view = (set(manager.workers)
                    if manager is not None and manager.alive else None)
            # an empty ground truth never converges: the manager's job
            # is to keep the pool alive, so "view == truth == {}" is
            # service extinction, not agreement
            if view == truth and truth:
                self.convergence_s = self.env.now - after_time
                return
            if self.env.now >= deadline:
                if not truth:
                    self.violation(
                        "convergence",
                        "service extinct: no live reachable workers "
                        f"{within_s:.1f}s after final heal")
                else:
                    self.violation(
                        "convergence",
                        f"manager view "
                        f"{sorted(view) if view else view} != "
                        f"ground truth {sorted(truth)} "
                        f"{within_s:.1f}s after final heal")
                return
            yield self.env.timeout(self.config.beacon_interval_s)

    # -- bounded reply --------------------------------------------------------

    def final_checks(self, engine: Any,
                     max_latency_s: float) -> None:
        """End-of-run assertions over the playback engine's record."""
        from repro.analysis.metrics import LatencyStats
        if engine.in_flight:
            self.violation(
                "bounded-reply",
                f"{engine.in_flight} requests still hanging at end of "
                f"run (reply events that never fired or timed out)")
        if self.submitted != len(engine.outcomes) + engine.in_flight:
            self.violation(
                "bounded-reply",
                f"{self.submitted} submitted but only "
                f"{len(engine.outcomes)} outcomes recorded")
        stats = LatencyStats.from_samples(engine.latencies())
        worst = stats.maximum
        if worst > max_latency_s + 1e-9:
            # attach the offending request's span tree when sampled
            offender = max(
                (outcome for outcome in engine.outcomes
                 if outcome.ok and outcome.latency is not None),
                key=lambda outcome: outcome.latency)
            self.violation(
                "bounded-reply",
                f"completion took {worst:.2f}s, past the "
                f"{max_latency_s:.2f}s client deadline",
                trace_id=getattr(offender, "trace_id", None))

    # -- consensus safety -----------------------------------------------------

    def final_consensus_checks(self, group: Any) -> None:
        """End-of-run Paxos safety audit over the replicated manager
        group: across every replica's learner state, no log slot may
        hold two different chosen values — the one property consensus
        exists to provide, and the one a partition must never break."""
        for problem in group.safety_violations():
            self.violation("paxos-safety", problem)

    # -- profile durability and availability ---------------------------------

    def final_profile_checks(self, store: Any, service: Any,
                             read_slo: Optional[float] = None
                             ) -> List[Dict[str, Any]]:
        """End-of-run profile-path assertions.

        **committed-write-loss** — every cell the coordinator reported
        committed must still be readable at its committed (or newer)
        version once the campaign settles; anything unavailable, absent,
        or stale is a durability violation, the one result a replicated
        store exists to prevent.  Checked through the store's own
        ``verify_committed`` oracle when it has one (the single WAL
        store can't lose acknowledged commits in this model, so it
        vacuously passes).

        **profile-read-availability** — when the campaign set an SLO,
        the fraction of profile reads answered must meet it: replica
        peers masking brick faults is the availability claim.

        Returns the list of lost-write reports for the chaos report.
        """
        verify = getattr(store, "verify_committed", None)
        lost: List[Dict[str, Any]] = verify() if verify else []
        for report in lost:
            self.violation(
                "committed-write-loss",
                f"committed cell {report['user']}/{report['key']} "
                f"v{report['version']} {report['reason']} after settle")
        if read_slo is not None:
            availability = service.profile_read_availability
            if availability < read_slo - 1e-12:
                self.violation(
                    "profile-read-availability",
                    f"profile reads {availability:.4f} available, "
                    f"below the {read_slo:.2f} SLO "
                    f"({service.profile_read_failures} of "
                    f"{service.profile_reads} failed)")
        return lost

    # -- graceful degradation -------------------------------------------------

    def final_yield_check(self, engine: Any, yield_slo: float) -> None:
        """End-of-run yield-SLO assertion for brownout campaigns.

        Yield is the fraction of submitted requests answered at all —
        a degraded (stale, low-fidelity, fallback) answer still counts,
        an error page or timeout does not.  The brownout claim is that
        the controller holds yield near 1.0 through a flash crowd by
        spending harvest instead; this is the gate CI fails when the
        controller stops earning its keep.
        """
        submitted = len(engine.outcomes) + engine.in_flight
        answered = sum(
            1 for outcome in engine.outcomes
            if outcome.ok
            and getattr(outcome.response, "status", "ok") != "error")
        achieved = answered / submitted if submitted else 1.0
        if achieved < yield_slo - 1e-12:
            self.violation(
                "yield-slo",
                f"yield {achieved:.4f} ({answered} of {submitted} "
                f"answered), below the {yield_slo:.2f} SLO")
