"""Campaign batches: many seeded runs of one campaign, fanned out.

A single campaign run answers "did the invariants hold under this fault
schedule for this seed?".  A **batch** answers the robustness question
the paper's operators actually cared about: does it hold across many
seeds — and it is embarrassingly parallel, so the batch shards one run
per seed through :mod:`repro.fanout`.  Seeds are deterministic: run 0
uses the master seed (so a one-run batch reproduces the classic single
run), run *k* derives ``chaos:<campaign>:run<k>`` from the master seed.

Merging folds the per-run :class:`~repro.chaos.report.ChaosReport`
objects in run order: summed request/yield tallies, summed fault-path
counters, exactly-pooled latency percentiles
(:func:`repro.fanout.merge.merge_latency`), and the batch's own harvest
fraction — a crashed run degrades the batch, it does not sink it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.campaign import CampaignRunner, get_campaign
from repro.chaos.report import ChaosReport
from repro.fanout import (
    ShardResult,
    ShardSpec,
    merge_latency,
    run_sharded,
    sum_counters,
)
from repro.sim.rng import derive_seed

__all__ = ["CampaignBatchReport", "batch_seeds", "run_campaign_batch",
           "run_campaign_shard"]


def run_campaign_shard(name: str, seed: int,
                       profile_backend: Optional[str] = None,
                       manager_backend: Optional[str] = None,
                       routing_policy: Optional[str] = None
                       ) -> ChaosReport:
    """One batch unit: build and run ``name`` under ``seed``.

    Module-level so :class:`ShardSpec` can pickle it into worker
    processes.  ``profile_backend``, ``manager_backend``, and
    ``routing_policy`` override the campaign's configured backends and
    worker-selection policy (the CLI's ``--profile-backend`` /
    ``--manager-backend`` / ``--policy`` switches).
    """
    campaign = get_campaign(name)
    if profile_backend is not None:
        campaign.profile_backend = profile_backend
    if manager_backend is not None:
        campaign.manager_backend = manager_backend
    if routing_policy is not None:
        campaign.routing_policy = routing_policy
    return CampaignRunner(campaign, seed=seed).run()


def batch_seeds(name: str, master_seed: int, runs: int) -> List[int]:
    """The deterministic seed list for a batch: the master seed first
    (a one-run batch is the classic single run), then derived seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    return [master_seed] + [
        derive_seed(master_seed, f"chaos:{name}:run{index}")
        for index in range(1, runs)
    ]


@dataclass
class CampaignBatchReport:
    """Everything a batch of campaign runs produced.

    ``runs`` holds one :class:`~repro.fanout.ShardResult` per seed in
    batch order; failed shards carry the error instead of a report.
    Rendering includes nothing wall-clock- or jobs-dependent, so the
    report is byte-identical at any parallelism.
    """

    campaign: str
    description: str
    master_seed: int
    seeds: List[int]
    runs: List[ShardResult] = field(default_factory=list)

    @property
    def reports(self) -> List[ChaosReport]:
        """Reports of the runs that completed, in batch order."""
        return [run.value for run in self.runs if run.ok]

    @property
    def harvest(self) -> float:
        """Fraction of runs that produced a report (the runner's own
        graceful-degradation measure)."""
        if not self.runs:
            return 1.0
        return sum(1 for run in self.runs if run.ok) / len(self.runs)

    @property
    def violations(self) -> int:
        return sum(len(report.violations) for report in self.reports)

    @property
    def ok(self) -> bool:
        """Every run completed and every invariant held."""
        return self.harvest == 1.0 and all(
            report.ok for report in self.reports)

    # -- folded aggregates --------------------------------------------------

    @property
    def submitted(self) -> int:
        return sum(report.submitted for report in self.reports)

    @property
    def answered(self) -> int:
        return sum(report.answered for report in self.reports)

    @property
    def overall_yield(self) -> float:
        submitted = self.submitted
        return self.answered / submitted if submitted else 1.0

    def merged_latency(self):
        return merge_latency(
            report.latency_stats for report in self.reports)

    def merged_counters(self) -> Dict[str, int]:
        return sum_counters(report.counters for report in self.reports)

    def render(self, verbose: bool = False) -> str:
        """Batch summary; ``verbose`` appends every run's full report."""
        lines = [
            f"campaign batch  {self.campaign} x {len(self.runs)} "
            f"(master seed {self.master_seed})",
            f"                {self.description}",
        ]
        for run, seed in zip(self.runs, self.seeds):
            if run.ok:
                report = run.value
                verdict = ("ok" if report.ok
                           else f"VIOLATIONS({len(report.violations)})")
                healing = ""
                if report.recovery_cases:
                    healed = sum(1 for case in report.recovery_cases
                                 if case.healed)
                    healing = (f" healed {healed}/"
                               f"{len(report.recovery_cases)}")
                lines.append(
                    f"  run {run.index}  seed {seed:<20} {verdict:<14} "
                    f"yield {report.overall_yield:.3f}  "
                    f"harvest {report.overall_harvest:.3f}{healing}")
            else:
                lines.append(
                    f"  run {run.index}  seed {seed:<20} FAILED: "
                    f"{run.error}")
        completed = sum(1 for run in self.runs if run.ok)
        lines.append(
            f"batch harvest   {completed}/{len(self.runs)} run(s) "
            f"completed ({self.harvest:.3f})")
        if self.reports:
            latency = self.merged_latency()
            lines.append(
                f"aggregate       yield {self.overall_yield:.3f} over "
                f"{self.submitted} requests; latency p50 "
                f"{latency.p50:.2f}s p95 {latency.p95:.2f}s p99 "
                f"{latency.p99:.2f}s (pooled over runs)")
            interesting = {name: value for name, value
                           in self.merged_counters().items() if value}
            if interesting:
                lines.append("counters        " + ", ".join(
                    f"{name}={value}"
                    for name, value in interesting.items()))
        lines.append("verdict         " + (
            "OK" if self.ok else
            f"DEGRADED: {len(self.runs) - completed} failed run(s), "
            f"{self.violations} violation(s)"))
        if verbose:
            for run, seed in zip(self.runs, self.seeds):
                if run.ok:
                    lines.append("")
                    lines.append(f"--- run {run.index} (seed {seed}) ---")
                    lines.append(run.value.render())
        return "\n".join(lines)


def run_campaign_batch(name: str, master_seed: int = 1997,
                       runs: int = 1, jobs: int = 1, *,
                       profile_backend: Optional[str] = None,
                       manager_backend: Optional[str] = None,
                       routing_policy: Optional[str] = None,
                       timeout_s: Optional[float] = None,
                       retries: int = 0,
                       progress=None) -> CampaignBatchReport:
    """Run ``runs`` seeded repetitions of campaign ``name`` across
    ``jobs`` worker processes and fold the reports.

    ``progress`` (see :func:`repro.fanout.run_sharded`) receives each
    finished run as it lands — the long-sweep observability hook the
    CLI wires to stderr.
    """
    campaign = get_campaign(name)   # validate the name up front
    seeds = batch_seeds(name, master_seed, runs)
    specs = [
        ShardSpec(shard_id=f"{name}#run{index}:seed={seed}",
                  fn=run_campaign_shard,
                  args=(name, seed, profile_backend, manager_backend,
                        routing_policy))
        for index, seed in enumerate(seeds)
    ]
    sweep = run_sharded(specs, jobs=jobs, timeout_s=timeout_s,
                        retries=retries, progress=progress)
    return CampaignBatchReport(
        campaign=campaign.name,
        description=campaign.description,
        master_seed=master_seed,
        seeds=seeds,
        runs=sweep.results,
    )
