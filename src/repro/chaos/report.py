"""Harvest/yield availability reporting for chaos campaigns.

The paper frames availability as *harvest* and *yield* (Section 2.3.1):
yield is the fraction of submitted requests answered at all, harvest the
fraction of answers carrying the full-quality result rather than a BASE
approximation.  A :class:`ChaosReport` carries both as a per-beacon time
series alongside the fault timeline, the invariant checker's verdicts,
and the fault-path counters, so one object answers "did the soft-state
machinery hold, and what did availability cost while it did?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import (
    LatencyStats,
    harvest_yield_series,
    yield_recovery_time,
)
from repro.chaos.invariants import InvariantViolation
from repro.degrade.ladder import level_name as _ladder_name

#: yield must return to this level after the final heal.
RECOVERY_TARGET = 0.95


@dataclass
class ChaosReport:
    """Everything one campaign run produced."""

    campaign: str
    description: str
    seed: int
    duration_s: float
    beacon_interval_s: float
    final_heal_s: float
    fault_timeline: List[Any] = field(default_factory=list)
    series: List[Dict[str, float]] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    recovery_s: Optional[float] = None
    convergence_s: Optional[float] = None
    reregistration_times: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    spawn_failures: List[Any] = field(default_factory=list)
    #: completed-request latency percentiles (LatencyStats.summary()).
    latency: Dict[str, float] = field(default_factory=dict)
    #: the raw accumulator behind :attr:`latency`, kept so campaign
    #: batches can pool samples exactly (LatencyStats.merge) instead of
    #: averaging percentiles; not rendered.
    latency_stats: Optional[LatencyStats] = None
    #: per-fault gray-failure cases (repro.recovery FaultCase objects).
    recovery_cases: List[Any] = field(default_factory=list)
    #: RecoveryLedger.summary() numbers: MTTD/MTTR, availability...
    recovery_summary: Dict[str, Any] = field(default_factory=dict)
    #: profile-path results when the campaign ran a profile backend:
    #: reads/availability, write counters, lost committed cells (the
    #: durability invariant), store stats, brick stats with rejoins.
    profile: Dict[str, Any] = field(default_factory=dict)
    #: SAN-partition results when the run installed a partition model:
    #: backend, wrong decisions, lease stalls, misroutes, stall time.
    partition: Dict[str, Any] = field(default_factory=dict)
    #: replicated-manager stats when the run used the consensus
    #: backend: elections, ballots, log length, lease handoffs, stalls.
    consensus: Dict[str, Any] = field(default_factory=dict)
    #: brownout-controller summary when the campaign ran the
    #: degradation ladder: peak level/pressure, transitions, and
    #: seconds spent at each ladder level.
    degradation: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No invariant violations."""
        return not self.violations

    @property
    def submitted(self) -> int:
        return int(sum(row["submitted"] for row in self.series))

    @property
    def answered(self) -> int:
        return int(sum(row["answered"] for row in self.series))

    @property
    def overall_yield(self) -> float:
        submitted = self.submitted
        return self.answered / submitted if submitted else 1.0

    @property
    def overall_harvest(self) -> float:
        answered = self.answered
        degraded = sum(row["degraded"] for row in self.series)
        return (answered - degraded) / answered if answered else 1.0

    @property
    def degraded_replies(self) -> int:
        """Answered below full quality: the harvest cost of degrading."""
        return int(sum(row["degraded"] for row in self.series))

    @property
    def shed_replies(self) -> int:
        """Refused by admission control: a deliberate yield cost,
        broken out from the generic error/timeout path."""
        return int(sum(row.get("shed", 0) for row in self.series))

    @property
    def recovered(self) -> bool:
        """Yield returned to the target after the final heal."""
        return self.recovery_s is not None

    @property
    def recovery_beacon_periods(self) -> Optional[float]:
        if self.recovery_s is None:
            return None
        return self.recovery_s / self.beacon_interval_s

    @property
    def all_gray_healed(self) -> bool:
        """Every injected gray failure was detected AND healed."""
        return all(case.healed for case in self.recovery_cases)

    def min_yield(self) -> float:
        return min((row["yield"] for row in self.series
                    if row["submitted"]), default=1.0)

    def _recovery_case_lines(self) -> List[str]:
        lines = []
        for case in self.recovery_cases:
            detect = (f"detected +{case.mttd:.1f}s ({case.detector})"
                      if case.mttd is not None else "NOT DETECTED")
            if case.mttr is not None:
                heal = f"healed +{case.mttr:.1f}s"
                if case.replacement:
                    heal += f" -> {case.replacement}"
            else:
                heal = "NOT HEALED"
            lines.append(f"{case.kind:<15} {case.target:<20} "
                         f"@{case.injected_at:5.1f}s  {detect:<28} "
                         f"{heal}")
        return lines

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"campaign   {self.campaign} (seed {self.seed})",
            f"           {self.description}",
            f"duration   {self.duration_s:.0f}s simulated, final heal "
            f"at {self.final_heal_s:.0f}s",
            f"requests   {self.submitted} submitted, {self.answered} "
            f"answered",
            f"yield      {self.overall_yield:.3f} overall, "
            f"{self.min_yield():.3f} at the worst beacon interval",
            f"harvest    {self.overall_harvest:.3f} of answers at full "
            f"quality",
        ]
        if self.degraded_replies or self.shed_replies:
            # the BASE ledger: degrading trades harvest (answers below
            # full quality), shedding trades yield (requests refused on
            # purpose) — keep the two costs visibly distinct
            lines.append(
                f"base       {self.degraded_replies} degraded "
                f"answer(s) (harvest loss), {self.shed_replies} "
                f"shed (deliberate yield loss)")
        if self.recovery_s is not None:
            lines.append(
                f"recovery   yield back over {RECOVERY_TARGET:.0%} "
                f"{self.recovery_s:.1f}s "
                f"({self.recovery_beacon_periods:.1f} beacon periods) "
                f"after the final heal")
        else:
            lines.append(
                f"recovery   yield never returned to "
                f"{RECOVERY_TARGET:.0%} after the final heal")
        if self.convergence_s is not None:
            lines.append(
                f"converge   manager view matched ground truth "
                f"{self.convergence_s:.1f}s after the final heal")
        if self.reregistration_times:
            worst = max(self.reregistration_times)
            lines.append(
                f"reregister {len(self.reregistration_times)} heal(s) "
                f"checked, slowest re-registration {worst:.1f}s")
        if self.recovery_cases:
            summary = self.recovery_summary
            parts = [f"{summary.get('healed', 0)}/"
                     f"{summary.get('injected', 0)} healed"]
            if summary.get("mttd_mean") is not None:
                parts.append(f"MTTD {summary['mttd_mean']:.1f}s mean / "
                             f"{summary['mttd_max']:.1f}s max")
            if summary.get("mttr_mean") is not None:
                parts.append(f"MTTR {summary['mttr_mean']:.1f}s mean / "
                             f"{summary['mttr_max']:.1f}s max")
            if summary.get("availability") is not None:
                parts.append(
                    f"availability {summary['availability']:.4f}")
            lines.append("healing    " + ", ".join(parts))
            for case_line in self._recovery_case_lines():
                lines.append("           " + case_line)
            if summary.get("false_alarms"):
                lines.append(f"           false alarms: "
                             f"{summary['false_alarms']}")
            if summary.get("rejuvenations"):
                lines.append(f"           rejuvenations: "
                             f"{summary['rejuvenations']}")
            if summary.get("rejoins"):
                lines.append(
                    f"           brick rejoins: {summary['rejoins']}, "
                    f"{summary['rejoin_mean_s']:.1f}s mean / "
                    f"{summary['rejoin_max_s']:.1f}s max to serving")
        if self.profile:
            profile = self.profile
            writes = profile.get("writes", {})
            lines.append(
                f"profile    backend={profile['backend']}  "
                f"reads {profile['reads']} "
                f"(availability {profile['read_availability']:.4f})  "
                f"writes {writes.get('committed', 0)}/"
                f"{writes.get('attempted', 0)} committed")
            lost = profile.get("lost_writes") or []
            if lost:
                lines.append(
                    f"           COMMITTED WRITES LOST: {len(lost)}")
            else:
                committed = profile.get("store", {}).get(
                    "committed_cells",
                    profile.get("store", {}).get("commits", 0))
                lines.append(
                    f"           committed-write loss: 0 "
                    f"(all {committed} committed cells verified)")
            for record in profile.get("bricks", {}).get("rejoins", []):
                sync = (f"synced +{record['sync_s']:.1f}s"
                        if record.get("sync_s") is not None
                        else "sync pending")
                lines.append(
                    f"           rejoin {record['brick']}: serving "
                    f"+{record['rejoin_s']:.1f}s "
                    f"({record['cells_at_kill']} cells at kill), "
                    f"{sync}")
        if self.partition:
            part = self.partition
            lines.append(
                f"partition  backend={part['backend']}  "
                f"wrong-decisions {part['wrong_decisions']}  "
                f"lease-stalls {part['lease_stalls']}  "
                f"misroutes {part['partition_misroutes']}")
            lines.append(
                f"           dispatch stalled "
                f"{part['dispatch_stall_s']:.1f}s, worst beacon gap "
                f"{part['failover_max_s']:.1f}s, blocked "
                f"{part['multicast_blocked']} multicasts / "
                f"{part['channel_blocked']} channel sends, "
                f"{part['deposed_managers']} deposed manager(s), "
                f"{part['stale_beacons_rejected']} stale beacon(s) "
                f"rejected")
        if self.consensus:
            cons = self.consensus
            lines.append(
                f"consensus  {cons['replicas']} replicas, "
                f"{cons['elections']} election(s), "
                f"{cons['lease_handoffs']} lease handoff(s), "
                f"max ballot {cons['max_ballot']}, "
                f"log length {cons['log_length']}")
            lines.append(
                f"           {cons['campaigns']} campaign(s), minority "
                f"stall {cons['minority_stall_s']:.1f}s")
            for regime in cons.get("regimes", []):
                lines.append(
                    f"           regime b{regime['ballot']} "
                    f"{regime['leader']} @{regime['at']:.1f}s after "
                    f"{regime['stalled_s']:.1f}s stall")
        if self.degradation:
            deg = self.degradation
            lines.append(
                f"degrade    peak level {deg['peak_level']} "
                f"({_ladder_name(deg['peak_level'])}), peak pressure "
                f"{deg['peak_pressure']:.2f}, "
                f"{len(deg['transitions'])} transition(s), ended at "
                f"level {deg['level']}")
            lines.append("           time at level: " + ", ".join(
                f"{name} {seconds:.1f}s"
                for name, seconds in deg["level_time"].items()))
            for move in deg["transitions"][:12]:
                lines.append(
                    f"           @{move['at']:6.1f}s {move['from']} -> "
                    f"{move['to']} (pressure {move['pressure']:.2f})")
        lines.append("faults     " + (", ".join(
            f"{record.kind} {record.target} @ {record.time:.0f}s"
            for record in self.fault_timeline) or "none recorded"))
        interesting = {name: value
                       for name, value in sorted(self.counters.items())
                       if value}
        if interesting:
            lines.append("counters   " + ", ".join(
                f"{name}={value}"
                for name, value in interesting.items()))
        if self.spawn_failures:
            lines.append("spawns     " + "; ".join(
                repr(failure) for failure in self.spawn_failures[:5]))
        if self.violations:
            lines.append(f"VIOLATIONS ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"  - {violation!r}")
                if violation.span_tree:
                    lines.append(
                        f"    offending request {violation.trace_id}:")
                    lines.extend(
                        "      " + tree_line for tree_line
                        in violation.span_tree.splitlines())
        else:
            lines.append("invariants all held")
        return "\n".join(lines)


def build_report(campaign: Any, seed: int, fabric: Any, engine: Any,
                 checker: Any, injector: Any, faults: Any,
                 ledger: Any = None, supervisor: Any = None,
                 profile: Optional[Dict[str, Any]] = None,
                 consensus: Optional[Dict[str, Any]] = None,
                 degradation: Optional[Dict[str, Any]] = None
                 ) -> ChaosReport:
    """Assemble the report from a finished campaign's pieces."""
    beacon_s = fabric.config.beacon_interval_s
    series = harvest_yield_series(engine.outcomes, bucket_s=beacon_s)
    recovery = yield_recovery_time(series, campaign.final_heal_s,
                                   target=RECOVERY_TARGET)
    # the control plane under audit: all group replicas in consensus
    # mode (counters are summed across them), else the soft manager
    if getattr(fabric, "manager_group", None) is not None:
        managers = list(fabric.manager_group.replicas)
    else:
        managers = [fabric.manager] if fabric.manager is not None else []
    counters: Dict[str, int] = {
        "datagrams_lost": faults.datagrams_lost,
        "datagrams_duplicated": faults.datagrams_duplicated,
        "messages_jittered": faults.messages_jittered,
        "channel_retransmits": faults.channel_retransmits,
        "manager_restarts": fabric.manager_restarts,
        "frontend_restarts": fabric.frontend_restarts,
        "requests_shed": sum(fe.shed
                             for fe in fabric.frontends.values()),
        "dispatch_retries": sum(fe.stub.retries
                                for fe in fabric.frontends.values()),
        "deadline_expiries": sum(fe.stub.deadline_expiries
                                 for fe in fabric.frontends.values()),
        "backoff_waits": sum(fe.stub.backoff_waits
                             for fe in fabric.frontends.values()),
        "worker_expired_sheds": sum(stub.expired
                                    for stub in fabric.workers.values()),
        "spawn_failures": sum(m.spawn_failures for m in managers),
    }
    # brownout-path counters: every attribute is getattr-probed so
    # campaigns without the degradable service render unchanged (the
    # zero-valued keys are filtered out of the counter line anyway)
    frontends = list(fabric.frontends.values())
    counters["degraded_replies"] = sum(
        getattr(fe, "degraded", 0) for fe in frontends)
    counters["priority_sheds"] = sum(
        getattr(fe, "shed_priority", 0) for fe in frontends)
    counters["deadline_sheds"] = sum(
        getattr(fe, "shed_deadline", 0) for fe in frontends)
    counters["retry_budget_denials"] = sum(
        getattr(fe.stub, "retry_budget_denials", 0) for fe in frontends)
    service = getattr(fabric, "service", None)
    counters["stale_served"] = getattr(service, "stale_served", 0)
    counters["low_fidelity_served"] = getattr(
        service, "low_fidelity_served", 0)
    counters["breaker_fallbacks"] = getattr(
        service, "breaker_fallbacks", 0)
    counters["origin_fetches"] = getattr(service, "origin_fetches", 0)
    breaker = getattr(service, "origin_breaker", None)
    if breaker is not None:
        counters["breaker_opens"] = breaker.opens
        counters["breaker_short_circuits"] = breaker.short_circuits
    counters["relaxed_profile_reads"] = getattr(
        fabric.profile_store, "relaxed_reads", 0)
    if managers:
        counters["reaps"] = sum(m.reaps for m in managers)
        counters["reap_redispatches"] = sum(m.reap_redispatches
                                            for m in managers)
        counters["reap_drops"] = sum(m.reap_drops for m in managers)
    if supervisor is not None:
        counters["recovery_probes"] = supervisor.probes_sent
        counters["recovery_suspicions"] = supervisor.suspicions
        counters["recovery_restarts"] = supervisor.restarts
        counters["recovery_rejuvenations"] = supervisor.rejuvenations
        counters["quarantined_nodes"] = len(supervisor.quarantined_nodes)
    recovery_cases: List[Any] = []
    recovery_summary: Dict[str, Any] = {}
    if ledger is not None and (ledger.cases or ledger.false_alarms
                               or ledger.rejuvenations
                               or ledger.rejoins):
        recovery_cases = list(ledger.cases)
        # brick campaigns widen the availability denominator: the
        # population under fault is workers plus bricks
        n_bricks = (campaign.n_bricks
                    if getattr(campaign, "profile_backend", None)
                    == "dstore" else 0)
        recovery_summary = ledger.summary(
            campaign.duration_s,
            population=max(1, campaign.initial_workers + n_bricks))
    spawn_log = [failure for m in managers
                 for failure in m.spawn_failure_log]
    latency_stats = LatencyStats.from_samples(engine.latencies())
    partitions = getattr(fabric.cluster.network, "partitions", None)
    partition: Dict[str, Any] = {}
    if partitions is not None:
        stubs = [fe.stub for fe in fabric.frontends.values()]
        partition = {
            "backend": fabric.manager_backend,
            "wrong_decisions": sum(s.wrong_decisions for s in stubs),
            "lease_stalls": sum(s.lease_stalls for s in stubs),
            "partition_misroutes": sum(s.partition_misroutes
                                       for s in stubs),
            "stale_beacons_rejected": sum(s.stale_beacons_rejected
                                          for s in stubs),
            "dispatch_stall_s": round(
                sum(s.stall_s for s in stubs), 3),
            "failover_max_s": round(
                max((s.beacon_gap_max_s for s in stubs), default=0.0),
                3),
            "multicast_blocked": partitions.multicast_blocked,
            "channel_blocked": partitions.channel_blocked,
            "deposed_managers": len(fabric.deposed_managers),
        }
    return ChaosReport(
        campaign=campaign.name,
        description=campaign.description,
        seed=seed,
        duration_s=campaign.duration_s,
        beacon_interval_s=beacon_s,
        final_heal_s=campaign.final_heal_s,
        fault_timeline=list(injector.log),
        series=series,
        violations=list(checker.violations),
        recovery_s=recovery,
        convergence_s=checker.convergence_s,
        reregistration_times=list(checker.reregistration_times),
        counters=counters,
        spawn_failures=spawn_log,
        latency=latency_stats.summary(),
        latency_stats=latency_stats,
        recovery_cases=recovery_cases,
        recovery_summary=recovery_summary,
        profile=profile or {},
        partition=partition,
        consensus=consensus or {},
        degradation=degradation or {},
    )
