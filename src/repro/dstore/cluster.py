"""Brick membership: placement, cheap rejoin, anti-entropy repair.

The :class:`BrickCluster` owns the slot -> brick mapping (one dedicated
``bricknode`` per slot, mirroring the paper's dedicated cache nodes),
the global version clock that stamps every cell write, and the two
repair mechanisms of "Cheap Recovery": the constant-time rejoin and the
background anti-entropy sweep.

**Rejoin is O(1), not O(log).**  ``respawn(slot)`` waits one process
fork (:data:`BRICK_SPAWN_S`) and starts an *empty* brick that serves
writes immediately — there is no WAL to replay, so the wait is the same
whether the dead incarnation held ten cells or ten million.  Each rejoin
is recorded (``rejoin_s``, plus ``cells_at_kill`` to demonstrate the
independence) and pushed into the
:class:`~repro.recovery.ledger.RecoveryLedger` when one is attached.

**Repair is lazy.**  Reads repair individual users on access (the
coordinator's job, :mod:`repro.dstore.store`); the sweep spawned by each
recovering brick copies whole partitions from an authoritative peer in
the background, charging time proportional to the data moved — recovery
work scales with state size, *rejoin* does not.  When no authoritative
peer survives for a partition (every replica lost memory at once), the
lowest live slot promotes its own — possibly empty — copy so the
partition does not stay unreadable forever; the promotion is counted,
and the committed-write-loss invariant is what decides whether it
actually lost anything.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.dstore.brick import Brick
from repro.dstore.partition import Partitioner
from repro.sim.cluster import Cluster

#: process-fork latency for a (re)started brick: the whole rejoin cost.
BRICK_SPAWN_S = 0.4

#: pause between anti-entropy sweep passes on a recovering brick.
ANTI_ENTROPY_INTERVAL_S = 0.5

#: per-partition sync overhead + per-cell copy cost.
SYNC_BASE_S = 0.01
SYNC_CELL_S = 0.0002


class BrickCluster:
    """Slot placement, version clock, and repair for the brick store."""

    def __init__(self, cluster: Cluster, n_bricks: int = 3,
                 replicas: int = 2, n_partitions: int = 16,
                 ledger: Any = None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.partitioner = Partitioner(n_bricks, replicas, n_partitions)
        self.n_bricks = n_bricks
        self.replicas = replicas
        #: optional RecoveryLedger; rejoin records are mirrored into it.
        self.ledger = ledger
        self.nodes: List[Any] = []
        #: slot -> current brick incarnation (may be dead, awaiting
        #: supervision; never None after boot()).
        self.bricks: List[Optional[Brick]] = [None] * n_bricks
        self._incarnations = [itertools.count(1) for _ in range(n_bricks)]
        self._version_clock = 0
        #: rejoin measurements: brick, slot, rejoin_s, cells_at_kill,
        #: sync_s (None until the sweep finishes).
        self.rejoins: List[Dict[str, Any]] = []
        self._pending_sync: Dict[str, Dict[str, Any]] = {}
        # repair counters
        self.partitions_synced = 0
        self.cells_synced = 0
        self.data_loss_promotions = 0

    # -- boot ----------------------------------------------------------------

    def boot(self) -> "BrickCluster":
        """One dedicated node + one authoritative empty brick per slot."""
        for slot in range(self.n_bricks):
            node = self.cluster.add_node(f"bricknode{slot}")
            # permanent reservation: a dead brick detaching must not
            # make this node look free to worker placement while the
            # replacement is forking
            node.attach(f"brickslot{slot}")
            self.nodes.append(node)
            self._start_brick(slot, recovering=False)
        return self

    def _start_brick(self, slot: int, recovering: bool) -> Brick:
        incarnation = next(self._incarnations[slot])
        brick = Brick(self.cluster, self.nodes[slot],
                      f"brick{slot}.{incarnation}", slot,
                      self.partitioner.partitions_of_slot(slot), self)
        if recovering:
            brick.mark_recovering()
        else:
            brick.mark_authoritative()
        brick.start()  # spawns the anti-entropy sweep iff recovering
        self.bricks[slot] = brick
        return brick

    # -- lookups -------------------------------------------------------------

    def brick_at(self, slot: int) -> Optional[Brick]:
        return self.bricks[slot]

    def population(self) -> Dict[str, Brick]:
        """Current incarnations by name — dead ones included, so the
        supervisor's dead-brick scan can see them."""
        return {brick.name: brick for brick in self.bricks
                if brick is not None}

    def replica_bricks(self, partition: int) -> List[Brick]:
        return [self.bricks[slot]
                for slot in self.partitioner.slots_of(partition)
                if self.bricks[slot] is not None]

    def next_version(self) -> int:
        """Monotonic cell-version stamp (deterministic, cluster-wide)."""
        self._version_clock += 1
        return self._version_clock

    # -- cheap rejoin --------------------------------------------------------

    def respawn(self, slot: int):
        """Process generator: restart the brick on ``slot`` with empty
        memory.  Returns the new (recovering) incarnation.

        The only wait here is the process fork — deliberately **no**
        term depends on how much data the dead incarnation held.
        """
        previous = self.bricks[slot]
        cells_at_kill = previous.cell_count() if previous else 0
        mark = self.env.now
        yield self.env.timeout(BRICK_SPAWN_S)
        node = self.nodes[slot]
        if not node.up:
            node.restart()
        brick = self._start_brick(slot, recovering=True)
        record = {
            "brick": brick.name,
            "slot": slot,
            "rejoin_s": self.env.now - mark,
            "rejoined_at": self.env.now,
            "cells_at_kill": cells_at_kill,
            "sync_s": None,
        }
        self.rejoins.append(record)
        self._pending_sync[brick.name] = record
        if self.ledger is not None \
                and hasattr(self.ledger, "note_rejoin"):
            self.ledger.note_rejoin(record)
        return brick

    # -- anti-entropy --------------------------------------------------------

    def _authoritative_peer(self, partition: int,
                            exclude: Brick) -> Optional[Brick]:
        for brick in self.replica_bricks(partition):
            if brick is not exclude and brick.responsive \
                    and partition in brick.authoritative:
                return brick
        return None

    def _lowest_live_slot(self, partition: int) -> Optional[int]:
        for slot in sorted(self.partitioner.slots_of(partition)):
            brick = self.bricks[slot]
            if brick is not None and brick.responsive:
                return slot
        return None

    def anti_entropy_sweep(self, brick: Brick):
        """Process generator run *by* a recovering brick: copy each
        recovering partition from an authoritative peer, then exit."""
        while brick.alive and not brick.fully_authoritative:
            yield self.env.timeout(ANTI_ENTROPY_INTERVAL_S)
            if not brick.alive:
                return
            for partition in brick.recovering_partitions:
                peer = self._authoritative_peer(partition, brick)
                if peer is None:
                    # every replica lost memory at once: nothing
                    # authoritative survives, so the lowest live slot
                    # promotes what it has (possibly nothing) — the
                    # write-loss invariant decides if that cost data
                    if self._lowest_live_slot(partition) == brick.slot:
                        brick.authoritative.add(partition)
                        brick.repaired_users.pop(partition, None)
                        self.data_loss_promotions += 1
                    continue
                snapshot = peer.snapshot(partition)
                if snapshot is None:
                    continue  # peer failed between check and copy
                cells = sum(len(cell) for cell in snapshot.values())
                yield self.env.timeout(SYNC_BASE_S + SYNC_CELL_S * cells)
                if not brick.alive:
                    return
                self.cells_synced += brick.apply_sync(partition, snapshot)
                self.partitions_synced += 1
        record = self._pending_sync.pop(brick.name, None)
        if record is not None and brick.alive:
            record["sync_s"] = self.env.now - record["rejoined_at"]

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        live = [brick for brick in self.bricks
                if brick is not None and brick.alive]
        return {
            "n_bricks": self.n_bricks,
            "replicas": self.replicas,
            "n_partitions": self.partitioner.n_partitions,
            "live": len(live),
            "authoritative": sum(
                1 for brick in live if brick.fully_authoritative),
            "rejoins": [dict(record) for record in self.rejoins],
            "partitions_synced": self.partitions_synced,
            "cells_synced": self.cells_synced,
            "data_loss_promotions": self.data_loss_promotions,
        }
