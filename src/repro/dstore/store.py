"""The quorum coordinator: a drop-in ProfileStore over brick replicas.

:class:`ReplicatedProfileStore` speaks the exact surface of
:class:`repro.tacc.customization.ProfileStore` — ``get`` / ``set`` /
``delete`` / ``begin()`` transactions / ``recover`` / ``checkpoint`` —
so the front end's :class:`~repro.tacc.customization.WriteThroughCache`,
TranSend's profile plumbing, and every service sit on either backend
unchanged.  Underneath, each user's profile lives as versioned cells on
``R`` replica bricks (:mod:`repro.dstore.partition`), and the ACID
guarantees narrow to DStore's: atomic *per key*, not per transaction —
the store is a cluster hash table, not a database (Huang & Fox; the
paper's §2.3 database remains available as the ``single`` backend).

**Writes** stamp every cell from the cluster-wide version clock and push
to all replicas of the user's partition; commit requires acks from
``write_quorum`` replicas (default: all ``R``), relaxed to
"every responsive replica, at least one" while peers are down — such
commits are counted ``degraded_writes``.  Zero acks raises
:class:`QuorumError` and nothing is recorded as committed.

**Reads** consult every replica and merge cells by highest version, so
one surviving up-to-date copy is enough (W + RQ > R with RQ = 1;
reading all responsive replicas instead of exactly RQ buys freshness
against zombies and drives repair).  Replicas that answered stale,
missing, or "recovering — unknown" get the merged result pushed back
(**read-repair**), which is how a rejoined amnesiac brick becomes
authoritative for hot users long before the anti-entropy sweep reaches
their partition.  No authoritative copy reachable raises
:class:`ReadUnavailable` — the availability number chaos campaigns
score.

The coordinator keeps the **committed-cells log**: every quorum-acked
``(user, key) -> (version, value)``.  It exists purely as the oracle for
the chaos invariant "no committed write is ever lost" — after a
campaign, every entry must still be readable at ``>=`` that version.

Data-plane calls are synchronous (same rationale as supervisor probes:
the SAN is stateful, and brick traffic riding it would perturb request
scheduling and break fault-free determinism).  Each call prices itself
analytically into :attr:`last_op_cost_s` — per-replica hop RTT plus the
brick's gray-inflated service time, plus a timeout charge per
unresponsive replica — which the service layer turns into simulated
latency and span annotations.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dstore.brick import TOMBSTONE, Cell
from repro.dstore.cluster import BrickCluster
from repro.tacc.customization import (
    Transaction,
    TransactionError,
    _TOMBSTONE,
)

#: one coordinator->brick hop (SAN round trip, analytic).
QUORUM_HOP_S = 0.001

#: charge for giving up on an unresponsive (hung/dead-node) replica.
BRICK_TIMEOUT_S = 0.05


class QuorumError(Exception):
    """A write could not reach its ack quorum; nothing was committed."""


class ReadUnavailable(Exception):
    """No authoritative replica reachable for this user right now."""


class ReplicatedProfileStore:
    """ProfileStore facade over a :class:`BrickCluster` (quorum R/W)."""

    def __init__(self, bricks: BrickCluster,
                 write_quorum: Optional[int] = None,
                 validator: Optional[Callable[[str, str, Any],
                                              None]] = None) -> None:
        self.bricks = bricks
        self.partitioner = bricks.partitioner
        self.write_quorum = (bricks.replicas if write_quorum is None
                             else write_quorum)
        if not 1 <= self.write_quorum <= bricks.replicas:
            raise ValueError("write_quorum must be in [1, replicas]")
        self._validator = validator
        #: the invariant oracle: every quorum-acked cell ever committed.
        self.committed: Dict[Tuple[str, str], Cell] = {}
        self._open_tx: Optional[Transaction] = None
        self._next_tx = 1
        # ProfileStore-surface compatibility
        self.log_path: Optional[str] = None
        self.generation = 0
        self.commits = 0
        self.aborts = 0
        # quorum counters
        self.quorum_reads = 0
        self.quorum_writes = 0
        self.degraded_writes = 0
        self.failed_writes = 0
        self.unavailable_reads = 0
        self.read_repairs = 0
        #: brownout controller (repro.degrade), wired by the fabric;
        #: at the relaxed-reads ladder level reads stop at the first
        #: authoritative replica (R=1) and skip read repair.  Writes
        #: keep their quorum unconditionally — degraded harvest only,
        #: never degraded durability.
        self.degradation: Optional[Any] = None
        self.relaxed_reads = 0
        #: analytic price of the most recent read/write, for the
        #: service layer to charge as simulated time.
        self.last_op_cost_s = 0.0
        self.last_op_hops = 0

    # -- reads ---------------------------------------------------------------

    def get(self, user_id: str) -> Dict[str, Any]:
        """A copy of the user's merged profile (quorum read)."""
        merged = self._quorum_read(user_id)
        return {key: value for key, (_, value) in merged.items()
                if value != TOMBSTONE}

    def get_value(self, user_id: str, key: str, default: Any = None) -> Any:
        merged = self._quorum_read(user_id)
        cell = merged.get(key)
        if cell is None or cell[1] == TOMBSTONE:
            return default
        return cell[1]

    def users(self) -> List[str]:
        """Users with at least one committed live cell (oracle view —
        membership is coordinator state, not a cluster scan)."""
        live = set()
        for (user_id, _key), (_version, value) in self.committed.items():
            if value != TOMBSTONE:
                live.add(user_id)
        return sorted(live)

    def __contains__(self, user_id: str) -> bool:
        return any(user == user_id and value != TOMBSTONE
                   for (user, _), (_, value) in self.committed.items())

    def _quorum_read(self, user_id: str) -> Dict[str, Cell]:
        partition = self.partitioner.partition_of(user_id)
        cost = 0.0
        hops = 0
        relaxed = (self.degradation is not None
                   and self.degradation.relaxed_reads_active)
        #: (brick, cells-or-None-for-recovering) from responsive replicas
        answers = []
        for slot in self.partitioner.slots_of(partition):
            brick = self.bricks.brick_at(slot)
            if brick is None or not brick.alive:
                continue
            hops += 1
            if not brick.responsive:
                cost += BRICK_TIMEOUT_S
                continue
            cost += QUORUM_HOP_S + brick.service_s()
            answers.append((brick, brick.read_user(partition, user_id)))
            if relaxed and answers[-1][1] is not None:
                # R=1: the first authoritative answer wins — possibly
                # missing a newer version on an unread replica, which
                # is exactly the harvest this level trades away
                self.relaxed_reads += 1
                break
        self.quorum_reads += 1
        self.last_op_cost_s = cost
        self.last_op_hops = hops
        authoritative = [cells for _, cells in answers
                         if cells is not None]
        if not authoritative:
            self.unavailable_reads += 1
            raise ReadUnavailable(user_id)
        merged: Dict[str, Cell] = {}
        for cells in authoritative:
            for key, (version, value) in cells.items():
                current = merged.get(key)
                if current is None or current[0] < version:
                    merged[key] = (version, value)
        if not relaxed:
            for brick, cells in answers:
                if cells is None or any(
                        key not in cells or cells[key][0] < version
                        for key, (version, _) in merged.items()):
                    brick.apply_repair(partition, user_id, dict(merged))
                    self.read_repairs += 1
        return merged

    # -- writes --------------------------------------------------------------

    def begin(self) -> Transaction:
        if self._open_tx is not None:
            raise TransactionError("a transaction is already open "
                                   "(single-writer store)")
        tx = Transaction(self, self._next_tx)
        self._next_tx += 1
        self._open_tx = tx
        return tx

    def set(self, user_id: str, key: str, value: Any) -> None:
        with self.begin() as tx:
            tx.set(user_id, key, value)

    def delete(self, user_id: str, key: str) -> None:
        with self.begin() as tx:
            tx.delete(user_id, key)

    def _validate(self, user_id: str, key: str, value: Any) -> None:
        try:
            json.dumps(value)
        except (TypeError, ValueError) as error:
            raise TransactionError(
                f"value for {user_id}/{key} is not JSON-serializable"
            ) from error
        if self._validator is not None:
            self._validator(user_id, key, value)

    def _commit(self, tx: Transaction) -> None:
        """Push the batch to replicas, user by user.

        Each user's cells commit (enter the oracle) the moment their
        quorum acks — atomicity is per key, so an ack failure on a
        later user raises :class:`QuorumError` without undoing earlier
        users.  That is DStore's contract, weaker than the single-node
        store's transactions; services that need cross-key atomicity
        keep the ``single`` backend.
        """
        if tx is not self._open_tx:
            raise TransactionError("commit of a non-current transaction")
        try:
            by_user: Dict[str, List[Tuple[str, Any]]] = {}
            for user_id, key, value in tx._writes:
                by_user.setdefault(user_id, []).append((key, value))
            cost = 0.0
            hops = 0
            for user_id, writes in by_user.items():
                partition = self.partitioner.partition_of(user_id)
                cells = [
                    (key, self.bricks.next_version(),
                     TOMBSTONE if (value is _TOMBSTONE
                                   or value == _TOMBSTONE) else value)
                    for key, value in writes
                ]
                acks = 0
                responsive = 0
                for slot in self.partitioner.slots_of(partition):
                    brick = self.bricks.brick_at(slot)
                    if brick is None or not brick.alive:
                        continue
                    hops += 1
                    if not brick.responsive:
                        cost += BRICK_TIMEOUT_S
                        continue
                    responsive += 1
                    cost += QUORUM_HOP_S + brick.service_s()
                    if brick.put_cells(partition, user_id, cells):
                        acks += 1
                required = max(1, min(self.write_quorum, responsive))
                if acks < required:
                    self.failed_writes += 1
                    raise QuorumError(
                        f"user {user_id}: {acks} acks, "
                        f"needed {required} "
                        f"({responsive} responsive replicas)")
                if acks < self.write_quorum:
                    self.degraded_writes += 1
                for key, version, value in cells:
                    self.committed[(user_id, key)] = (version, value)
            self.quorum_writes += 1
            self.commits += 1
            self.last_op_cost_s = cost
            self.last_op_hops = hops
        finally:
            self._open_tx = None

    def _abort(self, tx: Transaction) -> None:
        # lenient on purpose: a QuorumError mid-commit already released
        # the slot, and the context manager still calls abort()
        if tx is self._open_tx:
            self._open_tx = None
        self.aborts += 1

    # -- ProfileStore surface compatibility ----------------------------------

    def recover(self) -> int:
        """Cheap recovery has no replay: the coordinator holds no
        durable log to rebuild from.  Constant time, nothing applied."""
        return 0

    def checkpoint(self) -> None:
        """No log to compact."""

    def close(self) -> None:
        """No file handles to release."""

    # -- invariant + reporting -----------------------------------------------

    def verify_committed(self) -> List[Dict[str, Any]]:
        """The committed-write-loss check: quorum-read every cell in
        the oracle; report each one lost or stale.  Bypasses every
        front-end cache by construction (reads hit the bricks)."""
        lost = []
        for (user_id, key), (version, value) in sorted(
                self.committed.items()):
            try:
                merged = self._quorum_read(user_id)
            except ReadUnavailable:
                lost.append({"user": user_id, "key": key,
                             "version": version, "reason": "unavailable"})
                continue
            cell = merged.get(key)
            if cell is None:
                lost.append({"user": user_id, "key": key,
                             "version": version, "reason": "missing"})
            elif cell[0] < version:
                lost.append({"user": user_id, "key": key,
                             "version": version, "reason": "stale",
                             "found_version": cell[0]})
        return lost

    def stats(self) -> Dict[str, Any]:
        return {
            "write_quorum": self.write_quorum,
            "committed_cells": len(self.committed),
            "commits": self.commits,
            "aborts": self.aborts,
            "quorum_reads": self.quorum_reads,
            "quorum_writes": self.quorum_writes,
            "degraded_writes": self.degraded_writes,
            "failed_writes": self.failed_writes,
            "unavailable_reads": self.unavailable_reads,
            "read_repairs": self.read_repairs,
            "relaxed_reads": self.relaxed_reads,
        }
