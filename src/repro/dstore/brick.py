"""One brick: a node-hosted in-memory replica of profile partitions.

A brick is deliberately dumb storage — versioned cells in RAM, no log,
no disk.  Durability comes from its replica peers, which is the whole
"cheap recovery" bet: a kill -9'd brick restarts *empty* and rejoins in
constant time, because there is no log to replay; correctness survives
amnesia through the authority protocol below plus quorum overlap at the
coordinator (:mod:`repro.dstore.store`).

**Authority.**  A brick answers reads for a partition only while it is
*authoritative* for it.  First-incarnation bricks are authoritative for
everything they host (nothing was ever written before them).  A
restarted brick comes back with every hosted partition marked
*recovering*: it accepts writes immediately (new versions are new data —
amnesia cannot have lost them) but answers reads with "unknown" instead
of a false "absent", so the coordinator keeps asking peers that may
still hold the surviving copies of committed writes.  A recovering
partition becomes authoritative again cell-by-cell through read-repair
(per user, on access) and wholesale through the background anti-entropy
sweep (:class:`~repro.dstore.cluster.BrickCluster`).

Gray failures reuse the worker :class:`~repro.recovery.gray.GrayState`:
a fail-slow brick inflates its per-op service estimate, a hung brick
stops answering the data plane and probes, and a zombie brick keeps
acking writes while silently dropping them — the failure mode quorum
replication is specifically there to survive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.component import Component
from repro.recovery.gray import GrayState

#: deletion marker stored in a cell; versioned like any value so a
#: delete is never resurrected by read-repair from a stale replica.
TOMBSTONE = "__tombstone__"

#: nominal service time of one brick operation (hash lookup + copy).
BRICK_OP_S = 0.0005

#: Cell = (version, value) — value may be TOMBSTONE.
Cell = Tuple[int, Any]


class Brick(Component):
    """In-memory versioned cell store for a set of partitions."""

    kind = "brick"
    #: probe-surface compatibility with WorkerStub (bricks sit on
    #: dedicated nodes the partition faults never target).
    is_partitioned = False

    def __init__(self, cluster, node, name: str, slot: int,
                 partitions: List[int], owner: Any) -> None:
        super().__init__(cluster, node, name)
        self.slot = slot
        #: the BrickCluster that placed us (anti-entropy peers, ledger).
        self.owner = owner
        #: partition -> user -> key -> (version, value).
        self.cells: Dict[int, Dict[str, Dict[str, Cell]]] = {
            partition: {} for partition in partitions
        }
        #: partitions answering reads; a first-incarnation brick is
        #: authoritative everywhere, a restarted one nowhere.
        self.authoritative: Set[int] = set()
        #: per recovering partition: users made authoritative early by
        #: read-repair ("repairs lazily on access").
        self.repaired_users: Dict[int, Set[str]] = {}
        self.gray = GrayState()
        # counters
        self.puts = 0          # cell writes applied over this life
        self.gets = 0
        self.repairs_received = 0
        self.syncs_received = 0

    def _start_processes(self) -> None:
        # the data plane is synchronous (like supervisor probes, it
        # stays off the SAN so brick traffic cannot perturb request
        # scheduling); the only process a brick ever runs is the
        # anti-entropy sweep, and only when it has partitions to repair
        # — a first-incarnation brick schedules nothing, preserving
        # fault-free determinism
        if self.recovering_partitions:
            self.spawn(self.owner.anti_entropy_sweep(self))

    # -- membership ---------------------------------------------------------

    def mark_recovering(self) -> None:
        """Rejoin with amnesia: every hosted partition needs repair."""
        self.authoritative.clear()
        self.repaired_users = {partition: set() for partition in self.cells}

    def mark_authoritative(self) -> None:
        self.authoritative = set(self.cells)
        self.repaired_users = {}

    @property
    def recovering_partitions(self) -> List[int]:
        return sorted(partition for partition in self.cells
                      if partition not in self.authoritative)

    @property
    def fully_authoritative(self) -> bool:
        return all(partition in self.authoritative
                   for partition in self.cells)

    @property
    def responsive(self) -> bool:
        """Can the data plane get any answer out of this brick?"""
        return self.alive and self.node.up and not self.gray.hung

    def service_s(self) -> float:
        """Analytic per-op service time (gray inflation included)."""
        return (BRICK_OP_S / self.node.speed
                * self.gray.inflation(self.env.now))

    # -- data plane ---------------------------------------------------------

    def put_cells(self, partition: int, user_id: str,
                  cells: List[Tuple[str, int, Any]]) -> bool:
        """Store versioned cells; returns the ack.

        A zombie brick acks and drops — the coordinator counts the ack
        toward its write quorum, which is exactly why W > 1 copies are
        kept.  Lower-version cells never overwrite higher ones (a
        delayed write cannot resurrect stale data).
        """
        if not self.responsive or partition not in self.cells:
            return False
        if self.gray.zombie:
            self.gray.dropped += len(cells)
            return True  # the lie that makes zombies dangerous
        users = self.cells[partition]
        profile = users.setdefault(user_id, {})
        for key, version, value in cells:
            current = profile.get(key)
            if current is None or current[0] < version:
                profile[key] = (version, value)
                self.puts += 1
        return True

    def read_user(self, partition: int,
                  user_id: str) -> Optional[Dict[str, Cell]]:
        """The brick's cells for ``user_id``, or ``None`` when this
        brick is not (yet) authoritative for them."""
        if not self.responsive or partition not in self.cells:
            return None
        if partition not in self.authoritative \
                and user_id not in self.repaired_users.get(partition,
                                                           ()):
            return None  # amnesia: "unknown", never a false "absent"
        self.gets += 1
        return dict(self.cells[partition].get(user_id, {}))

    def known_users(self, partition: int) -> List[str]:
        if partition not in self.cells \
                or partition not in self.authoritative:
            return []
        return sorted(self.cells[partition])

    # -- repair intake -------------------------------------------------------

    def apply_repair(self, partition: int, user_id: str,
                     cells: Dict[str, Cell]) -> None:
        """Read-repair push: merge the winning cells and make this user
        authoritative here (an empty ``cells`` is an authoritative
        "absent")."""
        if not self.responsive or partition not in self.cells:
            return
        if self.gray.zombie:
            # a zombie drops repairs like any other write — otherwise
            # read-repair would quietly launder its staleness away
            self.gray.dropped += len(cells)
            return
        users = self.cells[partition]
        profile = users.setdefault(user_id, {})
        for key, (version, value) in cells.items():
            current = profile.get(key)
            if current is None or current[0] < version:
                profile[key] = (version, value)
                self.repairs_received += 1
        if not profile:
            users.pop(user_id, None)
        if partition not in self.authoritative:
            self.repaired_users.setdefault(partition, set()).add(user_id)

    def snapshot(self, partition: int) -> Optional[Dict[str, Dict[str, Cell]]]:
        """Full partition copy for anti-entropy, authoritative only."""
        if not self.responsive or partition not in self.authoritative:
            return None
        return {user: dict(cells)
                for user, cells in self.cells[partition].items()}

    def apply_sync(self, partition: int,
                   data: Dict[str, Dict[str, Cell]]) -> int:
        """Anti-entropy merge: absorb a peer snapshot, become
        authoritative for the whole partition.  Returns cells merged."""
        merged = 0
        users = self.cells[partition]
        for user_id, cells in data.items():
            profile = users.setdefault(user_id, {})
            for key, (version, value) in cells.items():
                current = profile.get(key)
                if current is None or current[0] < version:
                    profile[key] = (version, value)
                    merged += 1
        self.authoritative.add(partition)
        self.repaired_users.pop(partition, None)
        self.syncs_received += 1
        return merged

    # -- supervision surface -------------------------------------------------

    def probe_reply(self) -> Optional[tuple]:
        """Answer an end-to-end health probe, or ``None`` if no answer
        will ever come (same contract as
        :meth:`~repro.core.worker_stub.WorkerStub.probe_reply`).

        The probe is a synthetic write-read canary: a zombie brick acks
        the write and then cannot produce the bytes back, so
        ``output_ok`` is False — the detection signal beacon-style
        liveness can never see.
        """
        if not self.alive or not self.node.up:
            return None
        if self.gray.hung:
            return None
        nominal_s = BRICK_OP_S / self.node.speed
        service_s = nominal_s * self.gray.inflation(self.env.now)
        output_ok = not self.gray.zombie and not self.gray.corrupt
        return service_s, nominal_s, output_ok

    def cell_count(self) -> int:
        return sum(len(cells) for users in self.cells.values()
                   for cells in users.values())

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        mode = ("authoritative" if self.fully_authoritative
                else f"recovering({len(self.recovering_partitions)})")
        return (f"<Brick {self.name} slot {self.slot} {state} {mode} "
                f"{self.cell_count()} cells>")
