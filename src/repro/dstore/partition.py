"""Hash partitioning with R-way replica placement for the brick store.

The profile keyspace (user ids) is hashed onto a fixed ring of
``n_partitions`` partitions; each partition is replicated on ``replicas``
consecutive brick *slots* (DStore's replica groups — "Cheap Recovery",
PAPERS.md).  Slots are stable identities: a brick process that dies and
restarts occupies the same slot, so placement never moves data around —
exactly the property that makes recovery cheap (the rejoining brick
knows which partitions it owns before it holds a single byte of them).

The hash is :func:`hashlib.md5` over the key bytes, **not** Python's
builtin ``hash``: the builtin is salted per process, and partition
placement must be identical across the fan-out runner's worker
processes for ``--jobs N`` output to stay byte-identical to serial.
"""

from __future__ import annotations

import hashlib
from typing import List


class Partitioner:
    """Stable key -> partition -> replica-slot placement."""

    def __init__(self, n_bricks: int, replicas: int = 2,
                 n_partitions: int = 16) -> None:
        if n_bricks < 1:
            raise ValueError("need at least one brick")
        if not 1 <= replicas <= n_bricks:
            raise ValueError("replicas must be in [1, n_bricks]")
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_bricks = n_bricks
        self.replicas = replicas
        self.n_partitions = n_partitions

    def partition_of(self, key: str) -> int:
        digest = hashlib.md5(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.n_partitions

    def slots_of(self, partition: int) -> List[int]:
        """The replica slots hosting ``partition``, preference order."""
        if not 0 <= partition < self.n_partitions:
            raise ValueError(f"no such partition {partition}")
        first = partition % self.n_bricks
        return [(first + offset) % self.n_bricks
                for offset in range(self.replicas)]

    def replica_slots(self, key: str) -> List[int]:
        return self.slots_of(self.partition_of(key))

    def partitions_of_slot(self, slot: int) -> List[int]:
        """Every partition replicated on brick slot ``slot``."""
        return [partition for partition in range(self.n_partitions)
                if slot in self.slots_of(partition)]
