"""DStore-style replicated cluster hash table for the profile store.

The paper keeps one hard-state component — the ACID customization
database (§2.3).  This package replaces that single point of failure
with the design of its direct descendant, "Cheap Recovery: A Key to
Self-Managing State" (Huang & Fox): partitioned, replicated in-memory
bricks with quorum reads/writes and constant-time amnesiac rejoin.

* :mod:`repro.dstore.partition` — key -> partition -> replica slots;
* :mod:`repro.dstore.brick` — one brick: versioned cells, authority
  protocol, gray-failure surface;
* :mod:`repro.dstore.cluster` — membership, cheap rejoin, anti-entropy;
* :mod:`repro.dstore.store` — the quorum coordinator, a drop-in
  :class:`~repro.tacc.customization.ProfileStore` replacement.
"""

from repro.dstore.brick import BRICK_OP_S, Brick, TOMBSTONE
from repro.dstore.cluster import BRICK_SPAWN_S, BrickCluster
from repro.dstore.partition import Partitioner
from repro.dstore.store import (
    QuorumError,
    ReadUnavailable,
    ReplicatedProfileStore,
)

__all__ = [
    "BRICK_OP_S",
    "BRICK_SPAWN_S",
    "Brick",
    "BrickCluster",
    "Partitioner",
    "QuorumError",
    "ReadUnavailable",
    "ReplicatedProfileStore",
    "TOMBSTONE",
]
