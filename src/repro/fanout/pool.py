"""The process-pool scale-out runner.

``run_sharded`` executes a list of :class:`~repro.fanout.shard.ShardSpec`
units either in-process (``jobs <= 1``, the default — nothing changes
without opt-in) or across ``jobs`` worker processes with bounded
in-flight shards.  Either way the returned
:class:`~repro.fanout.shard.SweepResult` lists results in **spec
order**, so merging is independent of completion order and parallel
output is byte-identical to serial output.

Failure policy is graceful degradation, the same harvest/yield stance
the paper takes for the services themselves (Section 2.3.1): a shard
that raises, crashes its process, or exceeds its timeout is retried up
to its retry budget and then *reported* — the sweep keeps going, the
result carries an explicit harvest fraction, and the caller decides
whether partial data is acceptable.  One sick simulation cannot sink a
campaign sweep.

Span tracing composes: while a :func:`repro.obs.capture_traces` context
is active in the parent, worker processes open their own capture, ship
serialized spans back inside the :class:`ShardResult`, and the parent
folds them into its capture **in shard order** — so ``--trace-out``
writes the same trace file at any ``--jobs``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.fanout.shard import ShardResult, ShardSpec, SweepResult
from repro.obs import runtime as obs_runtime

__all__ = ["run_sharded"]

#: how long the parent blocks waiting for worker events each loop.
_WAIT_S = 0.05

ProgressFn = Callable[[ShardResult, int, int], None]


# -- the worker-process side ------------------------------------------------

def _shard_worker(spec: ShardSpec,
                  trace_settings: Optional[Dict[str, Any]],
                  conn) -> None:
    """Run one shard in a fresh process and ship the outcome back.

    Runs with a clean observability slate: a forked child inherits the
    parent's capture hook and tracer list, which must not leak into the
    shard's own capture.
    """
    try:
        obs_runtime.reset_capture()
        tracer_states: List[Dict[str, Any]] = []
        if trace_settings is not None:
            with obs_runtime.capture_traces(**trace_settings) as tracers:
                value = spec.fn(*spec.args, **dict(spec.kwargs))
            tracer_states = [tracer.state() for tracer in tracers]
        else:
            value = spec.fn(*spec.args, **dict(spec.kwargs))
        try:
            conn.send(("ok", value, tracer_states))
        except Exception as error:   # unpicklable result
            conn.send(("error",
                       f"result not transportable: "
                       f"{type(error).__name__}: {error}", []))
    except BaseException as error:
        try:
            conn.send(("error", "".join(traceback.format_exception_only(
                type(error), error)).strip(), []))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# -- the parent side --------------------------------------------------------

def _context(mp_context: Optional[str]):
    if mp_context is not None:
        return multiprocessing.get_context(mp_context)
    methods = multiprocessing.get_all_start_methods()
    # fork is the cheap path (no re-import per shard) and keeps
    # monkeypatched state visible to shards; fall back where missing.
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def run_sharded(specs: Sequence[ShardSpec], jobs: int = 1, *,
                timeout_s: Optional[float] = None, retries: int = 0,
                progress: Optional[ProgressFn] = None,
                mp_context: Optional[str] = None) -> SweepResult:
    """Execute independent shards, serially or across worker processes.

    ``jobs <= 1`` runs in-process (exceptions isolated per shard;
    timeouts are not enforceable without a process boundary).
    ``jobs > 1`` keeps at most ``jobs`` worker processes in flight.
    ``timeout_s``/``retries`` are pool-wide defaults each spec may
    override; ``progress`` is called once per finished shard (in
    completion order) with ``(result, n_done, n_total)``.
    """
    specs = list(specs)
    # jobs > 1 always takes the pool, even for a single shard: the
    # process boundary is what provides timeout and crash isolation.
    if jobs <= 1 or not specs:
        return _run_serial(specs, progress)
    return _run_pool(specs, jobs, timeout_s, retries, progress,
                     mp_context)


def _run_serial(specs: List[ShardSpec],
                progress: Optional[ProgressFn]) -> SweepResult:
    results: List[ShardResult] = []
    for index, spec in enumerate(specs):
        start = time.perf_counter()
        try:
            value = spec.fn(*spec.args, **dict(spec.kwargs))
            result = ShardResult(spec.shard_id, index, True, value=value)
        except Exception as error:
            result = ShardResult(
                spec.shard_id, index, False,
                error="".join(traceback.format_exception_only(
                    type(error), error)).strip())
        result.elapsed_s = time.perf_counter() - start
        results.append(result)
        if progress is not None:
            progress(result, len(results), len(specs))
    return SweepResult(results=results, jobs=1,
                       max_inflight=1 if specs else 0)


class _Inflight:
    """One live worker process and its bookkeeping."""

    __slots__ = ("index", "spec", "attempt", "process", "conn",
                 "deadline", "started")

    def __init__(self, index, spec, attempt, process, conn, deadline,
                 started):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.started = started


def _run_pool(specs: List[ShardSpec], jobs: int,
              timeout_s: Optional[float], retries: int,
              progress: Optional[ProgressFn],
              mp_context: Optional[str]) -> SweepResult:
    context = _context(mp_context)
    trace_settings = obs_runtime.tracing_settings()
    pending: List[tuple] = [(index, spec, 1)
                            for index, spec in enumerate(specs)]
    pending.reverse()   # pop() keeps spec order
    inflight: Dict[Any, _Inflight] = {}
    results: Dict[int, ShardResult] = {}
    max_inflight = 0
    done = 0

    def launch(index: int, spec: ShardSpec, attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_shard_worker, args=(spec, trace_settings, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        shard_timeout = (spec.timeout_s if spec.timeout_s is not None
                         else timeout_s)
        deadline = (time.monotonic() + shard_timeout
                    if shard_timeout is not None else None)
        inflight[parent_conn] = _Inflight(
            index, spec, attempt, process, parent_conn, deadline,
            time.perf_counter())

    def finish(entry: _Inflight, ok: bool, value: Any, error: Optional[str],
               tracer_states: List[Dict[str, Any]]) -> None:
        nonlocal done
        shard_retries = (entry.spec.retries
                         if entry.spec.retries is not None else retries)
        if not ok and entry.attempt <= shard_retries:
            pending.append((entry.index, entry.spec, entry.attempt + 1))
            return
        result = ShardResult(
            entry.spec.shard_id, entry.index, ok, value=value,
            error=error, attempts=entry.attempt,
            elapsed_s=time.perf_counter() - entry.started,
            tracer_states=tracer_states)
        results[entry.index] = result
        done += 1
        if progress is not None:
            progress(result, done, len(specs))

    try:
        while pending or inflight:
            while pending and len(inflight) < jobs:
                index, spec, attempt = pending.pop()
                launch(index, spec, attempt)
                max_inflight = max(max_inflight, len(inflight))
            ready = multiprocessing.connection.wait(
                list(inflight), timeout=_WAIT_S)
            for conn in ready:
                entry = inflight.pop(conn)
                try:
                    kind, payload, tracer_states = conn.recv()
                except EOFError:
                    entry.process.join()
                    finish(entry, False, None,
                           f"worker crashed (exit code "
                           f"{entry.process.exitcode})", [])
                    continue
                finally:
                    conn.close()
                entry.process.join()
                if kind == "ok":
                    finish(entry, True, payload, None, tracer_states)
                else:
                    finish(entry, False, None, payload, [])
            now = time.monotonic()
            for conn, entry in list(inflight.items()):
                expired = (entry.deadline is not None
                           and now > entry.deadline)
                died = not entry.process.is_alive() and not conn.poll()
                if not expired and not died:
                    continue
                del inflight[conn]
                if expired:
                    entry.process.terminate()
                entry.process.join()
                conn.close()
                shard_timeout = (entry.spec.timeout_s
                                 if entry.spec.timeout_s is not None
                                 else timeout_s)
                finish(entry, False, None,
                       (f"timed out after {shard_timeout:g}s"
                        if expired else
                        f"worker crashed (exit code "
                        f"{entry.process.exitcode})"), [])
    finally:
        for entry in inflight.values():
            entry.process.terminate()
            entry.process.join()
            entry.conn.close()

    ordered = [results[index] for index in sorted(results)]
    # fold shipped spans into the parent's capture, in shard order —
    # identical to what an in-process serial run would have recorded.
    if trace_settings is not None:
        for result in ordered:
            if result.tracer_states:
                obs_runtime.absorb_tracer_states(result.tracer_states)
    return SweepResult(results=ordered, jobs=jobs,
                       max_inflight=max_inflight)
