"""Order-independent merge adapters for sharded sweep results.

Shards come back in spec order (:class:`~repro.fanout.shard.SweepResult`
guarantees it), so merging is a deterministic fold over that order.
These helpers cover the three aggregate shapes the repo's sweeps
produce: latency sample pools (via the existing
:meth:`~repro.analysis.metrics.LatencyStats.merge`), summed counter
dicts (chaos report folding), and experiment tables assembled row by
row from per-point values.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.analysis.metrics import LatencyStats

__all__ = ["merge_latency", "sum_counters", "assemble_rows"]


def merge_latency(parts: Iterable[Optional[LatencyStats]]
                  ) -> LatencyStats:
    """Pool per-shard latency accumulators into one exact summary.

    Built on :meth:`LatencyStats.merge`: samples are pooled, so merged
    percentiles are exact and independent of shard boundaries or
    completion order.  ``None`` entries (failed shards) are skipped.
    """
    merged = LatencyStats()
    for part in parts:
        if part is not None:
            merged.merge(part)
    return merged


def sum_counters(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Fold per-shard counter dicts by summation, keys sorted so the
    merged dict's iteration order is deterministic."""
    totals: Dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            totals[key] = totals.get(key, 0) + value
    return {key: totals[key] for key in sorted(totals)}


def assemble_rows(values: Iterable[Any],
                  row_fn: Optional[Callable[[Any], Any]] = None
                  ) -> List[Any]:
    """Experiment-table assembly: one row per shard value, in shard
    order (``row_fn`` maps a shard value to its table row)."""
    if row_fn is None:
        return list(values)
    return [row_fn(value) for value in values]
