"""Deterministic multi-core fan-out for sweeps, campaigns, benchmarks.

The paper's thesis is that independent, stateless work scales linearly
when fanned out across nodes (Section 3; Table 2 measures it).  This
package applies that thesis to the reproduction itself: every sweep in
the repo — experiment grids, chaos campaign batches, multi-seed
benchmarks — is a list of independent simulations that previously ran
back-to-back on one core.  ``run_sharded`` shards them across worker
processes while keeping three guarantees:

* **Determinism.**  Per-shard seeds derive from the master seed and the
  shard id alone (:func:`shard_seed`), and results merge in spec order
  regardless of completion order, so ``--jobs N`` output is
  byte-identical to ``--jobs 1`` — including merged span-trace files.
* **Graceful degradation.**  A crashing, raising, or timed-out shard is
  retried, then reported; the sweep completes with an explicit harvest
  fraction instead of sinking (the runner practices the harvest/yield
  stance the paper prescribes for giant-scale services).
* **Opt-in.**  ``jobs=1`` (the default everywhere) runs in-process with
  unchanged behaviour.
"""

from repro.fanout.merge import assemble_rows, merge_latency, sum_counters
from repro.fanout.pool import run_sharded
from repro.fanout.shard import (
    FanoutError,
    ShardResult,
    ShardSpec,
    SweepResult,
    shard_seed,
    specs_for_seeds,
)
from repro.fanout.timeshard import (
    DriftReport,
    ReplaySpec,
    ShardedReplayResult,
    WindowResult,
    drift_check,
    replay_serial,
    replay_sharded,
    window_edges,
)

__all__ = [
    "DriftReport",
    "FanoutError",
    "ReplaySpec",
    "ShardResult",
    "ShardSpec",
    "ShardedReplayResult",
    "SweepResult",
    "WindowResult",
    "assemble_rows",
    "drift_check",
    "merge_latency",
    "replay_serial",
    "replay_sharded",
    "run_sharded",
    "shard_seed",
    "specs_for_seeds",
    "sum_counters",
    "window_edges",
]
