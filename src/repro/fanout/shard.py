"""The shard protocol: picklable units of independent simulation work.

A **shard** is one self-contained simulation the fan-out runner can
execute anywhere: one experiment grid point, one chaos campaign run,
one benchmark seed.  A :class:`ShardSpec` names the unit (the id doubles
as the merge key), points at a **module-level** entry function (so the
spec pickles by reference under both ``fork`` and ``spawn`` start
methods), and carries its arguments.  Results come back as
:class:`ShardResult` rows collected into a :class:`SweepResult`, always
in spec order — merge is order-independent by construction, which is
what makes ``--jobs N`` output byte-identical to ``--jobs 1``.

Per-shard seeding uses :func:`repro.sim.rng.derive_seed`, the same
SHA-256 derivation behind every named RNG stream: a shard's seed is a
function of the master seed and the shard's name only, never of which
worker process ran it or in what order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import derive_seed

__all__ = ["ShardSpec", "ShardResult", "SweepResult", "shard_seed",
           "FanoutError"]


def shard_seed(master_seed: int, shard_id: str) -> int:
    """The deterministic seed for one shard of a sharded sweep."""
    return derive_seed(master_seed, f"fanout:{shard_id}")


class FanoutError(RuntimeError):
    """A sharded sweep failed beyond what the caller tolerates."""


@dataclass(frozen=True)
class ShardSpec:
    """One independent unit of work.

    ``fn`` must be importable (module-level); closures and lambdas do
    not survive pickling into a worker process.  ``timeout_s`` and
    ``retries`` override the pool-wide defaults for this shard only.
    """

    shard_id: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout_s: Optional[float] = None
    retries: Optional[int] = None


@dataclass
class ShardResult:
    """What one shard produced (or how it failed).

    ``elapsed_s`` is wall-clock bookkeeping for progress reporting and
    benchmarks; merge adapters must never fold it into deterministic
    output.
    """

    shard_id: str
    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    #: serialized tracer states shipped from the worker process
    #: (:meth:`repro.obs.Tracer.state`); empty when tracing is off or
    #: the shard ran in-process (ambient capture already has them).
    tracer_states: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class SweepResult:
    """All shards of one sweep, in spec order, plus the harvest.

    The runner practices the paper's graceful degradation: a crashed or
    timed-out shard is reported, not fatal, and :attr:`harvest` says
    exactly what fraction of the sweep's data survived (harvest/yield
    framing of Section 2.3.1 applied to the runner itself).
    """

    results: List[ShardResult]
    jobs: int = 1
    #: peak number of simultaneously live worker processes (parent-side
    #: accounting; 1 for in-process execution of non-empty sweeps).
    max_inflight: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def failed(self) -> List[ShardResult]:
        return [result for result in self.results if not result.ok]

    @property
    def harvest(self) -> float:
        """Fraction of shards that produced data (1.0 when empty)."""
        if not self.results:
            return 1.0
        return self.completed / len(self.results)

    @property
    def complete(self) -> bool:
        return self.harvest == 1.0

    def values(self) -> List[Any]:
        """Every shard's value, in spec order, failures raised.

        For sweeps whose callers need all points (experiment tables),
        partial data is an error: raise :class:`FanoutError` naming the
        failed shards instead of silently assembling a gappy table.
        """
        if not self.complete:
            raise FanoutError(
                f"{len(self.failed)}/{self.total} shard(s) failed "
                f"(harvest {self.harvest:.3f}): " + "; ".join(
                    f"{result.shard_id}: {result.error}"
                    for result in self.failed))
        return [result.value for result in self.results]

    def ok_values(self) -> List[Any]:
        """Values of the shards that completed, in spec order."""
        return [result.value for result in self.results if result.ok]


def specs_for_seeds(fn: Callable[..., Any], name: str, master_seed: int,
                    seeds: Sequence[int], *, seed_kwarg: str = "seed",
                    args: Tuple[Any, ...] = (),
                    kwargs: Optional[Dict[str, Any]] = None
                    ) -> List[ShardSpec]:
    """Specs for a multi-seed run of the same unit (benchmark seeds,
    campaign repetitions): one shard per seed, id ``name#k:seed``."""
    base = dict(kwargs or {})
    specs = []
    for index, seed in enumerate(seeds):
        shard_kwargs = dict(base)
        shard_kwargs[seed_kwarg] = seed
        specs.append(ShardSpec(
            shard_id=f"{name}#{index}:seed={seed}",
            fn=fn, args=args, kwargs=shard_kwargs))
    return specs
