"""Time-sharded single-run trace replay.

The other fan-out axes in this package parallelize *many* independent
simulations (grid points, campaign repetitions, benchmark seeds).  This
module parallelizes **one long replay**: a multi-million-request trace
is split into contiguous time windows, each window replays in its own
worker process against its own fresh service instance, and the window
aggregates merge into one result — so ``--jobs N`` accelerates a single
10M-request run instead of only batches of runs.

What makes the split sound is the trace generator's bucket determinism
(:class:`~repro.workload.tracegen.TraceGenerator`): every one-second
bucket of the arrival process derives its RNG stream from ``(seed,
bucket)`` alone, so any window ``[a, b)`` regenerates exactly the
records the full-trace run would see there, with **no RNG hand-off
state** between shards.  Three explicit hand-off mechanisms cover the
rest of the window edges:

* **RNG stream positions** — eliminated by construction (per-bucket
  derivation), nothing to ship;
* **warm state** — each shard replays an *uncounted* ``warmup_s``
  lead-in before its window so queues and in-flight population at the
  window start approximate the steady state the serial run would have
  (the first window of the trace has no lead-in, exactly like the
  serial run's own cold start);
* **in-flight drain** — each shard runs its simulation to event-heap
  exhaustion after the last window record, so every submitted request
  completes inside its own shard and ``completed`` merges exactly.

The correctness contract is *toleranced*, not byte-exact, and
:func:`drift_check` states it precisely: submitted / completed / failed
counts must merge **exactly** equal to the serial run's, while mean
latency may drift within a small relative tolerance — the residual
boundary effect of warm-up approximating (rather than replaying) the
cross-window queue state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.fanout.pool import run_sharded
from repro.fanout.shard import ShardSpec
from repro.sim.kernel import Environment
from repro.sim.network import MBPS, Network
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import TraceGenerator

__all__ = [
    "ReplaySpec",
    "WindowResult",
    "ShardedReplayResult",
    "DriftReport",
    "drift_check",
    "replay_serial",
    "replay_sharded",
    "run_window",
    "window_edges",
    "SERVICE_FACTORIES",
]


# -- service factories -------------------------------------------------------
#
# A shard runs in a worker process, so the spec cannot carry a live
# service object (or a closure).  It carries a *name* into this
# registry instead; the factory builds a fresh service inside the
# shard's own Environment and returns the submit adapter.

def _queue_san_service(env: Environment,
                       spec: "ReplaySpec") -> Callable:
    """The benchmark service: a shared queue drained by ``n_servers``
    workers, each reply paying the SAN transfer delay for the content —
    the same shape ``benchmarks/test_bench_kernel.py`` replays against.
    Servers are callback-driven (dequeue, schedule the reply, re-arm)
    so a request costs no generator resumes on the service side.
    """
    network = Network(env, bandwidth_bps=spec.bandwidth_mbps * MBPS)
    requests = env.queue()

    def _reply_ok(event):
        event._value.succeed("ok")

    def _serve(event):
        record, reply = event._value
        delay = network.transfer_delay(record.size_bytes)
        env.schedule_call(delay, _reply_ok, reply)
        requests.get().callbacks.append(_serve)

    for _ in range(spec.n_servers):
        requests.get().callbacks.append(_serve)

    def submit(record):
        reply = env.event()
        requests.put_nowait((record, reply))
        return reply

    return submit


SERVICE_FACTORIES: Dict[str, Callable] = {
    "queue-san": _queue_san_service,
}


# -- specs and results -------------------------------------------------------


@dataclass(frozen=True)
class ReplaySpec:
    """One time-shardable replay: the trace model plus the service.

    Frozen and module-level so it pickles into worker processes intact.
    The generated trace is fully determined by ``(seed, n_users,
    mean_rate_rps, with_daily_cycle, with_bursts)`` — two shards built
    from equal specs regenerate identical windows.
    """

    duration_s: float
    seed: int = 1997
    mean_rate_rps: float = 2000.0
    n_users: int = 2000
    with_daily_cycle: bool = False
    with_bursts: bool = True
    service: str = "queue-san"
    n_servers: int = 8
    bandwidth_mbps: float = 1000.0
    #: uncounted lead-in replayed before each window (except the first)
    #: to approximate the serial run's warm queue state at the edge.
    warmup_s: float = 2.0

    def generator(self) -> TraceGenerator:
        return TraceGenerator(
            seed=self.seed,
            n_users=self.n_users,
            mean_rate_rps=self.mean_rate_rps,
            with_daily_cycle=self.with_daily_cycle,
            with_bursts=self.with_bursts,
        )


@dataclass
class WindowResult:
    """Aggregate outcome of one replayed window (or the whole trace)."""

    start_s: float
    end_s: float
    submitted: int
    completed: int
    failed: int
    latency_sum: float
    latency_min: float
    latency_max: float
    max_in_flight: int
    n_events: int
    sim_end: float

    @property
    def mean_latency(self) -> Optional[float]:
        if not self.completed:
            return None
        return self.latency_sum / self.completed


@dataclass
class ShardedReplayResult:
    """All windows of one sharded replay plus the exact-merged totals."""

    windows: List[WindowResult]
    merged: WindowResult
    jobs: int
    elapsed_s: float = 0.0
    window_elapsed_s: List[float] = field(default_factory=list)


@dataclass
class DriftReport:
    """Sharded-vs-serial comparison under the tolerance contract."""

    ok: bool
    checks: List[str]
    mean_latency_rel_diff: float


# -- the per-window unit (module-level: pickled into workers) ----------------


def run_window(spec: ReplaySpec, start_s: float,
               end_s: float) -> WindowResult:
    """Replay one window of the spec's trace in a fresh simulation.

    Counted records are exactly the trace restricted to
    ``[start_s, end_s)``.  A window starting mid-trace first replays an
    uncounted ``warmup_s`` lead-in through a throwaway engine sharing
    the same service, then runs to event-heap exhaustion so every
    counted request drains inside this window.
    """
    if not 0.0 <= start_s < end_s <= spec.duration_s:
        raise ValueError(
            f"window [{start_s}, {end_s}) outside trace "
            f"[0, {spec.duration_s})")
    factory = SERVICE_FACTORIES.get(spec.service)
    if factory is None:
        raise ValueError(
            f"unknown replay service {spec.service!r}; registered: "
            f"{sorted(SERVICE_FACTORIES)}")
    env = Environment()
    submit = factory(env, spec)
    generator = spec.generator()

    warm_start = max(0.0, start_s - spec.warmup_s)
    # the simulation clock starts at 0 == warm_start on the trace
    # timeline, so warm-up and counted records pace each other exactly
    # as the unsharded run would
    clock_origin = warm_start
    engine = PlaybackEngine(env, submit, record_outcomes=False)

    # two callback-driven arrival pumps on the same absolute timeline:
    # every warm-up timestamp precedes every counted one, so the pumps
    # interleave exactly as one sequential player would
    if warm_start < start_s:
        warm_engine = PlaybackEngine(env, submit,
                                     record_outcomes=False)
        warm_engine.play_scheduled(
            generator.iter_generate(start_s - warm_start,
                                    start_s=warm_start),
            clock_origin)
    engine.play_scheduled(
        generator.iter_generate(end_s - start_s, start_s=start_s),
        clock_origin)
    env.run()  # to exhaustion: drains all in-flight requests
    stats = engine.stats
    return WindowResult(
        start_s=start_s,
        end_s=end_s,
        submitted=stats.submitted,
        completed=stats.completed,
        failed=stats.failed,
        latency_sum=stats.latency_sum,
        latency_min=stats.latency_min,
        latency_max=stats.latency_max,
        max_in_flight=engine.max_in_flight,
        n_events=env._seq,
        sim_end=env.now,
    )


# -- window planning and merge -----------------------------------------------


def window_edges(duration_s: float, n_windows: int) -> List[float]:
    """Contiguous edges covering ``[0, duration_s)`` in ``n_windows``.

    Interior edges snap to whole seconds when the trace is long enough
    — windows then align with the generator's one-second buckets and
    no bucket is regenerated by two shards — falling back to exact
    fractional splits for short traces.  Correctness never depends on
    the alignment (partial buckets filter by timestamp); only shard
    cost does.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if n_windows < 1:
        raise ValueError("need at least one window")
    raw = [duration_s * index / n_windows
           for index in range(1, n_windows)]
    snapped = [float(round(edge)) for edge in raw]
    edges = [0.0] + snapped + [float(duration_s)]
    if any(b <= a for a, b in zip(edges, edges[1:])):
        edges = [0.0] + raw + [float(duration_s)]
    return edges


def _merge_windows(windows: Sequence[WindowResult]) -> WindowResult:
    merged = WindowResult(
        start_s=windows[0].start_s,
        end_s=windows[-1].end_s,
        submitted=0, completed=0, failed=0,
        latency_sum=0.0, latency_min=float("inf"), latency_max=0.0,
        max_in_flight=0, n_events=0, sim_end=0.0,
    )
    for window in windows:
        merged.submitted += window.submitted
        merged.completed += window.completed
        merged.failed += window.failed
        merged.latency_sum += window.latency_sum
        merged.latency_min = min(merged.latency_min, window.latency_min)
        merged.latency_max = max(merged.latency_max, window.latency_max)
        merged.max_in_flight = max(merged.max_in_flight,
                                   window.max_in_flight)
        merged.n_events += window.n_events
        merged.sim_end = max(merged.sim_end, window.sim_end)
    return merged


# -- entry points ------------------------------------------------------------


def replay_serial(spec: ReplaySpec) -> WindowResult:
    """The whole trace in one window, in-process — the reference run."""
    return run_window(spec, 0.0, spec.duration_s)


def replay_sharded(spec: ReplaySpec, jobs: int,
                   n_windows: Optional[int] = None,
                   timeout_s: Optional[float] = None
                   ) -> ShardedReplayResult:
    """One replay, time-sharded across ``jobs`` worker processes.

    ``n_windows`` defaults to ``jobs`` (one window per worker); more
    windows than jobs trades per-window warm-up overhead for better
    load balance on skewed traces.  Any failed shard raises
    :class:`~repro.fanout.shard.FanoutError` — a replay with a missing
    window is not a partial result, it is no result.
    """
    n_windows = n_windows if n_windows is not None else max(1, jobs)
    edges = window_edges(spec.duration_s, n_windows)
    specs = [
        ShardSpec(
            shard_id=f"replay[{start:g},{end:g})",
            fn=run_window,
            args=(spec, start, end),
        )
        for start, end in zip(edges, edges[1:])
    ]
    sweep = run_sharded(specs, jobs=jobs, timeout_s=timeout_s)
    windows = sweep.values()  # raises FanoutError on any failed shard
    return ShardedReplayResult(
        windows=windows,
        merged=_merge_windows(windows),
        jobs=jobs,
        window_elapsed_s=[result.elapsed_s for result in sweep.results],
    )


def drift_check(serial: WindowResult, sharded: WindowResult,
                latency_tolerance: float = 0.05) -> DriftReport:
    """The sharded-replay tolerance contract, checked.

    Exact: ``submitted``, ``completed`` and ``failed`` — bucket
    determinism plus per-shard drain make the counts invariant under
    any window split.  Toleranced: mean latency within
    ``latency_tolerance`` relative — window-edge warm-up approximates
    the serial run's queue state instead of replaying it.
    """
    checks: List[str] = []
    ok = True
    for name in ("submitted", "completed", "failed"):
        serial_value = getattr(serial, name)
        sharded_value = getattr(sharded, name)
        if serial_value == sharded_value:
            checks.append(f"{name}: {serial_value} == {sharded_value}")
        else:
            ok = False
            checks.append(f"{name}: MISMATCH serial {serial_value} "
                          f"!= sharded {sharded_value}")
    serial_mean = serial.mean_latency or 0.0
    sharded_mean = sharded.mean_latency or 0.0
    if serial_mean > 0:
        rel = abs(sharded_mean - serial_mean) / serial_mean
    else:
        rel = 0.0 if sharded_mean == 0.0 else float("inf")
    if rel <= latency_tolerance:
        checks.append(f"mean latency: {sharded_mean * 1e3:.3f}ms vs "
                      f"{serial_mean * 1e3:.3f}ms "
                      f"(rel {rel:.4f} <= {latency_tolerance:g})")
    else:
        ok = False
        checks.append(f"mean latency: DRIFT {sharded_mean * 1e3:.3f}ms "
                      f"vs {serial_mean * 1e3:.3f}ms "
                      f"(rel {rel:.4f} > {latency_tolerance:g})")
    return DriftReport(ok=ok, checks=checks, mean_latency_rel_diff=rel)
