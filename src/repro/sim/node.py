"""Simulated workstation nodes.

A :class:`Node` models one commodity machine in the cluster (the paper's
SPARC 10/20 and Ultra-1 boxes): a name, a CPU with a speed factor and a
fixed number of processors, optional local disk, and a flag marking it as
part of the dedicated pool or the overflow pool (Section 2.2.3).

CPU contention is modelled with processor slots: a node with ``cpus=2``
runs two compute bursts concurrently; further bursts queue FIFO.  Work is
expressed in *reference seconds* (seconds on a speed-1.0 node) so
heterogeneous clusters can be assembled, mirroring the paper's mixed
SPARCstation generations.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Set

from repro.sim.kernel import Environment, Interrupt, Queue


class NodeDown(Exception):
    """Raised when compute is attempted on a node that is down."""


class Node:
    """One machine in the cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cpus: int = 1,
        speed: float = 1.0,
        memory_mb: int = 256,
        has_disk: bool = True,
        overflow: bool = False,
    ) -> None:
        if cpus < 1:
            raise ValueError("cpus must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.env = env
        self.name = name
        self.cpus = cpus
        self.speed = speed
        #: nominal speed; ``speed`` drops below it while straggling.
        self.base_speed = speed
        self.memory_mb = memory_mb
        self.has_disk = has_disk
        self.overflow = overflow
        self.up = True
        #: flap-detected by the supervision layer: excluded from worker
        #: placement until an operator restarts the node.
        self.quarantined = False
        #: components (by name) currently hosted; used by the manager when
        #: looking for an "unused node" to spawn a new worker on.
        self.components: Set[str] = set()
        self._slots: Queue = env.queue()
        for index in range(cpus):
            self._slots.put_nowait(index)
        #: cumulative busy reference-seconds, for utilization reporting.
        self.busy_time = 0.0

    # -- component bookkeeping ---------------------------------------------

    def attach(self, component_name: str) -> None:
        self.components.add(component_name)

    def detach(self, component_name: str) -> None:
        self.components.discard(component_name)

    @property
    def is_free(self) -> bool:
        """True if no components are hosted here (candidate for spawning)."""
        return self.up and not self.quarantined and not self.components

    # -- failure model -------------------------------------------------------

    def crash(self) -> None:
        """Mark the node down.  Processes must be killed by the caller
        (the :class:`~repro.sim.failures.FaultInjector` handles both)."""
        self.up = False

    def restart(self) -> None:
        """Bring a crashed node back with cold caches and free slots."""
        self.up = True
        self.speed = self.base_speed  # a reboot clears any straggle
        self.quarantined = False      # ... and a flap quarantine

    def quarantine(self) -> None:
        """Remove the node from future placement without killing what is
        already here.  Set by flap detection when restarts on this node
        keep not sticking; cleared by :meth:`restart` (operator reboot)."""
        self.quarantined = True

    # -- straggler model ------------------------------------------------------

    def degrade(self, factor: float) -> None:
        """Make the node a *straggler*: CPU slows to ``factor`` of its
        nominal speed without the node dying.  This is the fail-slow
        fault the paper's testbed never produced on demand — the node
        keeps answering (so broken-connection detection never fires) but
        work started here takes ``1/factor`` times longer.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.speed = self.base_speed * factor

    def recover_speed(self) -> None:
        """End a straggle: restore the nominal CPU speed."""
        self.speed = self.base_speed

    @property
    def is_straggling(self) -> bool:
        return self.up and self.speed < self.base_speed

    # -- CPU model -----------------------------------------------------------

    def compute(self, work: float) -> Generator:
        """Process generator: occupy a CPU slot for ``work`` ref-seconds.

        Usage inside a component process::

            yield from node.compute(0.008 * size_kb)

        Raises :class:`NodeDown` if the node is down when work starts.
        """
        if work < 0:
            raise ValueError("work must be non-negative")
        if not self.up:
            raise NodeDown(self.name)
        slot = yield self._slots.get()
        try:
            if not self.up:
                raise NodeDown(self.name)
            duration = work / self.speed
            yield self.env.timeout(duration)
            self.busy_time += duration
        finally:
            self._slots.put_nowait(slot)

    def utilization(self, elapsed: float) -> float:
        """Fraction of capacity used over ``elapsed`` simulated seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.cpus))

    def __repr__(self) -> str:
        pool = "overflow" if self.overflow else "dedicated"
        state = "up" if self.up else "DOWN"
        return f"<Node {self.name} {self.cpus}cpu x{self.speed} {pool} {state}>"
