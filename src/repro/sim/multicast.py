"""Unreliable IP multicast over the SAN.

The paper's SNS layer leans on IP multicast for all soft-state
distribution: the manager beacons its existence and load hints, workers
announce load, and the monitor listens to everything (Sections 3.1.2,
3.1.7).  Multicast provides the level of indirection that lets components
find each other without configuration — and because it is *unreliable*,
saturating the SAN silently drops beacons, which is exactly the failure
mode measured in Section 4.6.

A :class:`MulticastGroup` delivers a published message to every current
subscriber after the SAN transfer delay, independently dropping each copy
with the network's current drop probability.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.kernel import Environment, Queue
from repro.sim.network import Network
from repro.sim.rng import Stream


class Subscription:
    """A subscriber's mailbox on a multicast group."""

    def __init__(self, group: "MulticastGroup", name: str,
                 queue: Queue) -> None:
        self.group = group
        self.name = name
        self.queue = queue
        self.active = True

    def get(self):
        """Event for the next delivered message (FIFO)."""
        return self.queue.get()

    def cancel(self) -> None:
        """Stop receiving; pending messages remain readable."""
        self.active = False
        self.group._drop_subscription(self)


class MulticastGroup:
    """One multicast address (e.g. the manager's beacon channel)."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        name: str,
        rng: Stream,
        mailbox_capacity: Optional[int] = 1024,
    ) -> None:
        self.env = env
        self.network = network
        self.name = name
        self.rng = rng
        self.mailbox_capacity = mailbox_capacity
        self._subscriptions: List[Subscription] = []
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        #: copies lost/duplicated by the lossy-SAN fault model (distinct
        #: from saturation drops, which the paper's baseline produces).
        self.fault_dropped = 0
        self.fault_duplicated = 0
        #: copies blocked by an active SAN partition (the sender and the
        #: subscriber sat on opposite sides of the split).
        self.partition_dropped = 0

    def subscribe(self, subscriber_name: str) -> Subscription:
        queue = self.env.queue(self.mailbox_capacity)
        subscription = Subscription(self, subscriber_name, queue)
        self._subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def publish(self, message: Any, size_bytes: int = 256,
                sender: str = "?") -> None:
        """Fire-and-forget datagram to all current subscribers.

        Each copy independently crosses the SAN and may be dropped when the
        SAN is saturated.  Delivery is asynchronous; the publisher never
        blocks (datagram semantics).
        """
        self.published += 1
        faults = self.network.faults
        partitions = self.network.partitions
        for subscription in list(self._subscriptions):
            if partitions is not None and not partitions.reachable(
                    sender, subscription.name):
                # datagram blackholed at the partitioned switch; no
                # bandwidth charged, no randomness drawn
                self.dropped += 1
                self.partition_dropped += 1
                partitions.multicast_blocked += 1
                continue
            drop_probability = self.network.multicast_drop_probability()
            if drop_probability > 0 and self.rng.random() < drop_probability:
                self.dropped += 1
                continue
            copies, extra_delay = 1, 0.0
            if faults is not None:
                # the lossy-SAN fault model: per-copy loss, duplication,
                # and delay jitter scoped to this group's name
                copies, extra_delay = faults.datagram_fate(self.name)
                if copies == 0:
                    self.dropped += 1
                    self.fault_dropped += 1
                    continue
                if copies > 1:
                    self.fault_duplicated += 1
            for _ in range(copies):
                delay = self.network.transfer_delay(
                    size_bytes, control=True) + extra_delay
                # one scheduled callback per copy, not a delivery process:
                # beacons and load reports dominate control-plane events
                self.env.schedule_call(
                    delay, self._deliver, (subscription, message))

    def _deliver(self, event) -> None:
        subscription, message = event._value
        if not subscription.active:
            return
        if not subscription.queue.try_put(message):
            # Mailbox overflow: a slow receiver loses datagrams, just as a
            # full socket buffer would.
            self.dropped += 1
            return
        self.delivered += 1

    @property
    def loss_rate(self) -> float:
        attempted = self.delivered + self.dropped
        return self.dropped / attempted if attempted else 0.0


class MulticastBus:
    """Registry of named multicast groups sharing one network."""

    def __init__(self, env: Environment, network: Network,
                 rng: Stream) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self._groups: Dict[str, MulticastGroup] = {}

    def group(self, name: str) -> MulticastGroup:
        if name not in self._groups:
            self._groups[name] = MulticastGroup(
                self.env, self.network, name, self.rng)
        return self._groups[name]
