"""Named, seeded random-number streams.

Every stochastic choice in the reproduction — content sizes, inter-arrival
times, cache-miss penalties, lottery-scheduling draws, fault timing — comes
from a named stream derived from one master seed.  Two runs with the same
seed are bit-identical, and adding draws to one subsystem does not perturb
another (the paper's experiments are compared across configurations, so
cross-experiment determinism matters).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Deterministic child seed for ``name`` under ``master_seed``.

    The same derivation backs every named stream in the repo — and the
    per-shard seeds of :mod:`repro.fanout` — so a shard named
    ``"chaos:smoke:run3"`` draws an independent, reproducible seed no
    matter which worker process (or how many) executes it.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: backward-compatible alias (the original private spelling).
_derive_seed = derive_seed


class Stream:
    """One independent random stream with distribution helpers."""

    def __init__(self, seed: int) -> None:
        self._random = random.Random(seed)

    # Thin pass-throughs ---------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._random.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    # Distributions used by the workload and latency models ----------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal variate with underlying normal (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def lognormal_mean(self, mean: float, sigma: float) -> float:
        """Log-normal variate with a target arithmetic *mean*.

        Content sizes in the paper are reported as means (HTML 5131 B,
        GIF 3428 B, JPEG 12070 B); this helper converts a desired mean and
        shape into the underlying mu.
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        mu = math.log(mean) - sigma * sigma / 2.0
        return self._random.lognormvariate(mu, sigma)

    # Batched draws for vectorized workload generation -------------------

    def random_batch(self, n: int) -> List[float]:
        """``n`` uniform [0, 1) draws — same stream positions as ``n``
        calls to :meth:`random`, without per-draw method dispatch."""
        draw = self._random.random
        return [draw() for _ in range(n)]

    def exponential_batch(self, mean: float, n: int) -> List[float]:
        """``n`` exponential variates with the given mean.

        Draw-for-draw identical to ``n`` calls to :meth:`exponential`
        (same underlying ``expovariate`` sequence), so switching a
        caller to the batch form never perturbs a seeded trace.
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        draw = self._random.expovariate
        rate = 1.0 / mean
        return [draw(rate) for _ in range(n)]

    def zipf_rank_batch(self, n: int, alpha: float,
                        count: int) -> List[int]:
        """``count`` draws of :meth:`zipf_rank` with the inverse-CDF
        constants hoisted out of the loop.

        Draw-for-draw identical to ``count`` sequential calls to
        :meth:`zipf_rank` (one uniform per rank, same inversion).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        draw = self._random.random
        top = n - 1
        if alpha == 1.0:
            h_n = math.log(n) + 0.5772156649
            exp = math.exp
            ranks = [int(exp(draw() * h_n)) - 1 for _ in range(count)]
        else:
            one_minus = 1.0 - alpha
            c = (n ** one_minus - 1.0) / one_minus
            inv = 1.0 / one_minus
            ranks = [int((draw() * c * one_minus + 1.0) ** inv) - 1
                     for _ in range(count)]
        return [0 if rank < 0 else (top if rank > top else rank)
                for rank in ranks]

    def pareto(self, alpha: float, minimum: float) -> float:
        """Bounded-below Pareto variate (heavy tail for miss penalties)."""
        if alpha <= 0 or minimum <= 0:
            raise ValueError("alpha and minimum must be positive")
        return minimum * (self._random.paretovariate(alpha))

    def zipf_rank(self, n: int, alpha: float = 1.0) -> int:
        """Draw a 0-based rank from a Zipf(alpha) distribution over n items.

        Uses inverse-CDF over precomputed weights is O(n) to build, so we
        use rejection-free approximate inversion adequate for workload
        generation (document popularity for the cache study).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Approximate inversion: harmonic CDF sampled by bisection on the
        # continuous relaxation, then clamped.
        u = self._random.random()
        if alpha == 1.0:
            h_n = math.log(n) + 0.5772156649
            x = math.exp(u * h_n)
        else:
            c = (n ** (1.0 - alpha) - 1.0) / (1.0 - alpha)
            x = (u * c * (1.0 - alpha) + 1.0) ** (1.0 / (1.0 - alpha))
        # x is a continuous rank on [1, ~n]; shift to 0-based
        rank = int(x) - 1
        return max(0, min(n - 1, rank))

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        """Lottery draw: pick one item with probability ∝ weight.

        This is exactly the paper's lottery-scheduling primitive
        (Waldspurger & Weihl [63]) used by the manager stub to pick a
        distiller for each request.
        """
        if len(items) != len(weights):
            raise ValueError("items and weights length mismatch")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        ticket = self._random.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if ticket < cumulative:
                return item
        return items[-1]


class RandomStreams:
    """Factory of named :class:`Stream` objects from one master seed."""

    def __init__(self, master_seed: int = 1997) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = Stream(_derive_seed(self.master_seed, name))
        return self._streams[name]

    def __getitem__(self, name: str) -> Stream:
        return self.stream(name)

    def fork(self, name: str) -> "RandomStreams":
        """Derive an independent sub-factory (e.g. one per experiment run)."""
        return RandomStreams(_derive_seed(self.master_seed, f"fork:{name}"))
