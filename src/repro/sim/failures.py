"""Fault injection: the experimenter's kill switch.

Section 4.5's headline fault-tolerance result ("we manually killed the
first two distillers, causing the load on the remaining distiller to
rapidly increase...") is driven here: the :class:`FaultInjector` schedules
kills of components or whole nodes at chosen simulated times, or randomly
with a configurable mean time between failures.

A *killable* is anything with a ``name`` attribute and a ``kill()``
method; all SNS components satisfy this protocol.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.sim.kernel import Environment
from repro.sim.node import Node
from repro.sim.rng import Stream


class FaultRecord:
    """One injected fault, for post-run reporting."""

    def __init__(self, time: float, kind: str, target: str) -> None:
        self.time = time
        self.kind = kind
        self.target = target

    def __repr__(self) -> str:
        return f"<Fault {self.kind} {self.target} @ {self.time:.2f}s>"


class FaultInjector:
    """Schedules component kills and node crashes."""

    def __init__(self, env: Environment,
                 rng: Optional[Stream] = None) -> None:
        self.env = env
        self.rng = rng
        self.log: List[FaultRecord] = []

    # -- scheduled, deterministic faults -------------------------------------

    def kill_at(self, time: float, target: Any) -> None:
        """Kill ``target`` (a component with ``kill()``) at ``time``."""
        self.env.process(self._kill_later(time, target))

    def _kill_later(self, time: float, target: Any):
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"kill time {time} is in the past")
        yield self.env.timeout(delay)
        self._kill(target)

    def crash_node_at(self, time: float, node: Node,
                      components: Optional[List[Any]] = None,
                      restart_after: Optional[float] = None) -> None:
        """Crash a whole node (and everything on it) at ``time``."""
        self.env.process(
            self._crash_node_later(time, node, components or [],
                                   restart_after))

    def _crash_node_later(self, time: float, node: Node,
                          components: List[Any],
                          restart_after: Optional[float]):
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"crash time {time} is in the past")
        yield self.env.timeout(delay)
        node.crash()
        self.log.append(FaultRecord(self.env.now, "node-crash", node.name))
        for component in components:
            self._kill(component)
        if restart_after is not None:
            yield self.env.timeout(restart_after)
            node.restart()
            self.log.append(
                FaultRecord(self.env.now, "node-restart", node.name))

    def partition_at(self, time: float, target: Any,
                     duration_s: float) -> None:
        """Cut ``target`` (anything with ``partition(duration_s)``) off
        the network at ``time`` — the Section 2.2.4 SAN-partition fault."""
        self.env.process(self._partition_later(time, target, duration_s))

    def _partition_later(self, time: float, target: Any,
                         duration_s: float):
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"partition time {time} is in the past")
        yield self.env.timeout(delay)
        target.partition(duration_s)
        self.log.append(FaultRecord(
            self.env.now, "partition",
            getattr(target, "name", repr(target))))

    # -- random faults --------------------------------------------------------

    def random_kills(self, targets_provider: Callable[[], List[Any]],
                     mtbf_s: float, stop_at: float) -> None:
        """Kill a random live component every ~``mtbf_s`` seconds.

        ``targets_provider`` is called at each fault time so newly spawned
        (or restarted) components are eligible — the whole point of the
        paper's fault model is that the population churns.
        """
        if self.rng is None:
            raise ValueError("random faults require an RNG stream")
        self.env.process(
            self._random_kill_loop(targets_provider, mtbf_s, stop_at))

    def _random_kill_loop(self, targets_provider, mtbf_s: float,
                          stop_at: float):
        while True:
            gap = self.rng.exponential(mtbf_s)
            if self.env.now + gap > stop_at:
                return
            yield self.env.timeout(gap)
            targets = [t for t in targets_provider() if t is not None]
            if not targets:
                continue
            self._kill(self.rng.choice(targets))

    # -- internals --------------------------------------------------------------

    def _kill(self, target: Any) -> None:
        name = getattr(target, "name", repr(target))
        target.kill()
        self.log.append(FaultRecord(self.env.now, "kill", name))

    def faults_before(self, time: float) -> List[FaultRecord]:
        return [record for record in self.log if record.time <= time]
