"""Fault injection: the experimenter's kill switch.

Section 4.5's headline fault-tolerance result ("we manually killed the
first two distillers, causing the load on the remaining distiller to
rapidly increase...") is driven here: the :class:`FaultInjector` schedules
kills of components or whole nodes at chosen simulated times, or randomly
with a configurable mean time between failures.

A *killable* is anything with a ``name`` attribute and a ``kill()``
method; all SNS components satisfy this protocol.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.sim.kernel import Environment
from repro.sim.node import Node
from repro.sim.rng import Stream


class FaultRecord:
    """One injected fault, for post-run reporting."""

    def __init__(self, time: float, kind: str, target: str) -> None:
        self.time = time
        self.kind = kind
        self.target = target

    def __repr__(self) -> str:
        return f"<Fault {self.kind} {self.target} @ {self.time:.2f}s>"


class FaultInjector:
    """Schedules component kills and node crashes."""

    def __init__(self, env: Environment,
                 rng: Optional[Stream] = None) -> None:
        self.env = env
        self.rng = rng
        self.log: List[FaultRecord] = []

    def _validate_time(self, time: float, kind: str) -> None:
        """Past-time arguments are caller bugs: reject them *here*, at
        schedule time, where the caller can catch the ValueError —
        raising inside the spawned process would surface only as an
        unhandled simulation error at run time."""
        if time < self.env.now:
            raise ValueError(
                f"{kind} time {time} is in the past "
                f"(now {self.env.now})")

    # -- scheduled, deterministic faults -------------------------------------

    def kill_at(self, time: float, target: Any) -> None:
        """Kill ``target`` (a component with ``kill()``) at ``time``."""
        self._validate_time(time, "kill")
        self.env.process(self._kill_later(time, target))

    def _kill_later(self, time: float, target: Any):
        yield self.env.timeout(max(0.0, time - self.env.now))
        self._kill(target)

    def crash_node_at(self, time: float, node: Node,
                      components: Optional[List[Any]] = None,
                      restart_after: Optional[float] = None) -> None:
        """Crash a whole node (and everything on it) at ``time``."""
        self._validate_time(time, "crash")
        self.env.process(
            self._crash_node_later(time, node, components or [],
                                   restart_after))

    def _crash_node_later(self, time: float, node: Node,
                          components: List[Any],
                          restart_after: Optional[float]):
        yield self.env.timeout(max(0.0, time - self.env.now))
        node.crash()
        self.log.append(FaultRecord(self.env.now, "node-crash", node.name))
        for component in components:
            self._kill(component)
        if restart_after is not None:
            yield self.env.timeout(restart_after)
            node.restart()
            self.log.append(
                FaultRecord(self.env.now, "node-restart", node.name))

    def partition_at(self, time: float, target: Any,
                     duration_s: float) -> None:
        """Cut ``target`` (anything with ``partition(duration_s)``) off
        the network at ``time`` — the Section 2.2.4 SAN-partition fault."""
        self._validate_time(time, "partition")
        self.env.process(self._partition_later(time, target, duration_s))

    def _partition_later(self, time: float, target: Any,
                         duration_s: float):
        yield self.env.timeout(max(0.0, time - self.env.now))
        target.partition(duration_s)
        self.log.append(FaultRecord(
            self.env.now, "partition",
            getattr(target, "name", repr(target))))

    def degrade_node_at(self, time: float, node: Node, factor: float,
                        duration_s: Optional[float] = None) -> None:
        """Turn ``node`` into a straggler at ``time``: CPU slows to
        ``factor`` of nominal without the node dying (fail-slow).  Heals
        after ``duration_s`` when given, else persists."""
        self._validate_time(time, "degrade")
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.env.process(
            self._degrade_later(time, node, factor, duration_s))

    def _degrade_later(self, time: float, node: Node, factor: float,
                       duration_s: Optional[float]):
        yield self.env.timeout(max(0.0, time - self.env.now))
        node.degrade(factor)
        self.log.append(FaultRecord(
            self.env.now, "straggle", node.name))
        if duration_s is not None:
            yield self.env.timeout(duration_s)
            node.recover_speed()
            self.log.append(FaultRecord(
                self.env.now, "straggle-heal", node.name))

    def rolling_kills(self, targets_provider: Callable[[], List[Any]],
                      start: float, period_s: float,
                      stop_at: float) -> None:
        """Kill one target every ``period_s`` seconds between ``start``
        and ``stop_at`` — the deterministic crash-restart churn loop
        (random_kills' seeded cousin, for reproducible campaigns)."""
        self._validate_time(start, "rolling-kill start")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.env.process(self._rolling_kill_loop(
            targets_provider, start, period_s, stop_at))

    def _rolling_kill_loop(self, targets_provider, start: float,
                           period_s: float, stop_at: float):
        yield self.env.timeout(max(0.0, start - self.env.now))
        index = 0
        while self.env.now + period_s <= stop_at:
            yield self.env.timeout(period_s)
            targets = [t for t in targets_provider() if t is not None]
            if not targets:
                continue
            # round-robin, not random: reproducible without an RNG
            self._kill(targets[index % len(targets)])
            index += 1

    # -- random faults --------------------------------------------------------

    def random_kills(self, targets_provider: Callable[[], List[Any]],
                     mtbf_s: float, stop_at: float) -> None:
        """Kill a random live component every ~``mtbf_s`` seconds.

        ``targets_provider`` is called at each fault time so newly spawned
        (or restarted) components are eligible — the whole point of the
        paper's fault model is that the population churns.
        """
        if self.rng is None:
            raise ValueError("random faults require an RNG stream")
        self.env.process(
            self._random_kill_loop(targets_provider, mtbf_s, stop_at))

    def _random_kill_loop(self, targets_provider, mtbf_s: float,
                          stop_at: float):
        while True:
            gap = self.rng.exponential(mtbf_s)
            if self.env.now + gap > stop_at:
                return
            yield self.env.timeout(gap)
            targets = [t for t in targets_provider() if t is not None]
            if not targets:
                continue
            self._kill(self.rng.choice(targets))

    # -- internals --------------------------------------------------------------

    def kill_now(self, target: Any) -> None:
        """Kill ``target`` immediately, logging the fault (used by the
        chaos campaign layer, which resolves victims at fire time)."""
        self._kill(target)

    def _kill(self, target: Any) -> None:
        name = getattr(target, "name", repr(target))
        target.kill()
        self.log.append(FaultRecord(self.env.now, "kill", name))

    def faults_before(self, time: float) -> List[FaultRecord]:
        return [record for record in self.log if record.time <= time]
