"""Cluster assembly: nodes + SAN + multicast bus + RNG under one roof.

A :class:`Cluster` is the simulated counterpart of the paper's testbed
("15 Sun SPARC Ultra-1 workstations connected by 100 Mb/s switched
Ethernet"): a set of dedicated nodes, an optional overflow pool of
non-dedicated machines (Section 2.2.3), the interior SAN, and access
links for traffic entering or leaving the system.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.kernel import Environment
from repro.sim.multicast import MulticastBus
from repro.sim.network import MBPS, AccessLink, Network, PartitionState
from repro.sim.node import Node
from repro.sim.rng import RandomStreams


class ClusterError(Exception):
    """Cluster-level configuration or capacity errors."""


class Cluster:
    """Hardware plus shared services for one simulated installation."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        seed: int = 1997,
        san_bandwidth_bps: float = 100 * MBPS,
        san_latency_s: float = 0.0005,
    ) -> None:
        self.env = env if env is not None else Environment()
        self.streams = RandomStreams(seed)
        self.network = Network(self.env, san_bandwidth_bps, san_latency_s)
        self.multicast = MulticastBus(
            self.env, self.network, self.streams.stream("multicast"))
        self.nodes: Dict[str, Node] = {}
        if self.env.tracer is None:
            # opt-in span tracing for CLI-driven runs: the hook is only
            # armed inside repro.obs.capture_traces(); otherwise no-op.
            from repro.obs.runtime import attach_to_new_cluster
            attach_to_new_cluster(self)

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str, cpus: int = 1, speed: float = 1.0,
                 overflow: bool = False, **kwargs) -> Node:
        if name in self.nodes:
            raise ClusterError(f"duplicate node {name!r}")
        node = Node(self.env, name, cpus=cpus, speed=speed,
                    overflow=overflow, **kwargs)
        self.nodes[name] = node
        return node

    def add_nodes(self, count: int, prefix: str = "node",
                  overflow: bool = False, **kwargs) -> List[Node]:
        start = len([n for n in self.nodes if n.startswith(prefix)])
        return [
            self.add_node(f"{prefix}{start + index}", overflow=overflow,
                          **kwargs)
            for index in range(count)
        ]

    def add_access_link(self, name: str,
                        bandwidth_bps: float = 100 * MBPS) -> AccessLink:
        return self.network.add_access_link(name, bandwidth_bps)

    def locate_node(self, component_name: str) -> Optional[str]:
        """Name of the node hosting ``component_name``, if any.

        This is the SAN-partition model's resolver: multicast and
        channel deliveries map component names to nodes through it to
        decide which side of a split each party sits on.
        """
        for node in self.nodes.values():
            if component_name in node.components:
                return node.name
        return None

    def install_partitions(self) -> PartitionState:
        """Attach (or return) the SAN-partition model, wired to this
        cluster's component registry."""
        return self.network.install_partitions(self.locate_node)

    # -- node selection (used by the manager when spawning workers) ----------

    @property
    def dedicated_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if not n.overflow]

    @property
    def overflow_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.overflow]

    def _placeable(self, node: Node,
                   reachable_from: Optional[str]) -> bool:
        """Is ``node`` bidirectionally reachable from the named node?

        Placement must never pick a node the placer cannot talk to: a
        worker spawned across a partition would register into the void
        and a worker the manager cannot hear from is dead weight, so
        both directions are required.
        """
        if reachable_from is None:
            return True
        partitions = self.network.partitions
        if partitions is None:
            return True
        return (partitions.node_reachable(reachable_from, node.name)
                and partitions.node_reachable(node.name, reachable_from))

    def free_node(self, include_overflow: bool = False,
                  reachable_from: Optional[str] = None) -> Optional[Node]:
        """A node with nothing running on it, dedicated pool first.

        The paper's manager "can automatically spawn a new distiller on an
        unused node"; when the dedicated pool is exhausted it "can resort
        to starting up temporary distillers on a set of overflow nodes".
        ``reachable_from`` (a node name) additionally excludes nodes
        partitioned away from the placer.
        """
        for node in self.dedicated_nodes:
            if node.is_free and self._placeable(node, reachable_from):
                return node
        if include_overflow:
            for node in self.overflow_nodes:
                if node.is_free and self._placeable(node, reachable_from):
                    return node
        return None

    def least_loaded_node(self, include_overflow: bool = False,
                          reachable_from: Optional[str] = None) -> Node:
        """The up, unquarantined, reachable node hosting the fewest
        components (fallback placement)."""
        candidates = [n for n in self.dedicated_nodes
                      if n.up and not n.quarantined
                      and self._placeable(n, reachable_from)]
        if include_overflow:
            candidates += [n for n in self.overflow_nodes
                           if n.up and not n.quarantined
                           and self._placeable(n, reachable_from)]
        if not candidates:
            raise ClusterError("no nodes available")
        return min(candidates, key=lambda n: len(n.components))

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def run(self, until: Optional[float] = None):
        return self.env.run(until)
