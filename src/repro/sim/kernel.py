"""Generator-based discrete-event simulation kernel.

This is the clock that replaces the paper's wall-clock cluster.  Components
(front ends, the manager, distillers, cache nodes) are written as Python
generator functions that ``yield`` events; the :class:`Environment` drives
them in simulated-time order.  The design follows the classic SimPy model,
but is self-contained so the repository has no external simulation
dependency.

Example
-------
>>> env = Environment()
>>> log = []
>>> def ticker(env, period):
...     while True:
...         yield env.timeout(period)
...         log.append(env.now)
>>> _ = env.process(ticker(env, 10.0))
>>> env.run(until=35.0)
>>> log
[10.0, 20.0, 30.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Scheduling priorities.  Urgent events (interrupts, process resumes) are
#: handled before normal events scheduled for the same simulated time.
URGENT = 0
NORMAL = 1

PENDING = object()


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The SNS layer uses interrupts to model component crashes: killing a
    distiller interrupts its service loop, exactly as SIGKILL would end a
    worker process on a cluster node.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A happening at a point in simulated time.

    An event is *triggered* when given a value (or exception) and scheduled,
    and *processed* once its callbacks have run.  Processes wait on events
    by ``yield``-ing them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event will have ``exception`` raised at
        its ``yield`` statement.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._value = value
        self.delay = delay
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The event's value is the generator's return value.  If the generator
    raises, the process event fails with that exception (propagating to any
    process waiting on it, or aborting the simulation if unhandled).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a dead process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)
        # Detach from whatever the process was waiting on so that a later
        # trigger of that event does not resume the interrupted frame.
        # Mark the abandoned event defused: if it fails after losing its
        # only observer, that is not an unhandled error.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not self._target.callbacks:
                self._target._defused = True
        self._target = None

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return  # already terminated (e.g. raced interrupt)
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    exc = event._value
                    if isinstance(exc, Interrupt):
                        # re-wrap so each delivery is a distinct instance
                        exc = Interrupt(exc.cause)
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as error:  # generator died
                self._target = None
                self._ok = False
                self._value = error
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_event, Event):
                event = Event(self.env)
                event._ok = False
                event._value = TypeError(
                    f"process yielded non-event {next_event!r}")
                continue
            if next_event.env is not self.env:
                raise SimulationError("event from a different environment")
            if next_event.callbacks is not None:
                # not yet processed: wait for it
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # already processed: feed its value back immediately
            event = next_event
        self.env._active_process = None


class Condition(Event):
    """Fires when ``count`` of the given events have triggered successfully.

    Used via :meth:`Environment.any_of` / :meth:`Environment.all_of`.  The
    value is a dict mapping each triggered event to its value.
    """

    def __init__(self, env: "Environment", events: Iterable[Event],
                 count: int) -> None:
        super().__init__(env)
        self._events = list(events)
        self._need = min(count, len(self._events))
        self._done = 0
        if self._need == 0:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done >= self._need:
            self.succeed({
                ev: ev._value
                for ev in self._events
                if ev.processed and ev._ok
            })


class QueueFull(SimulationError):
    """Raised by :meth:`Queue.put_nowait` when a bounded queue is full."""


class Queue:
    """FIFO queue with blocking ``get`` and optional capacity.

    This is the building block for every service queue in the system — a
    distiller's request queue, a front end's accept queue, the manager's
    report inbox.  Queue length is the paper's load metric (Section 4.5),
    so :attr:`length` is cheap and always current.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Event] = []

    @property
    def length(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put_nowait(self, item: Any) -> None:
        """Enqueue ``item``; raise :class:`QueueFull` if at capacity."""
        if self.is_full:
            raise QueueFull(f"queue at capacity {self.capacity}")
        # hand directly to a waiting getter if any
        while self._getters:
            getter = self._getters.pop(0)
            if getter.triggered or not getter.callbacks:
                # Getter already resolved, or its process was interrupted
                # (the kernel detaches the resume callback on interrupt):
                # delivering here would lose the item.
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def try_put(self, item: Any) -> bool:
        """Enqueue ``item`` unless full; return whether it was accepted."""
        try:
            self.put_nowait(item)
        except QueueFull:
            return False
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Dequeue immediately; raise :class:`SimulationError` if empty."""
        if not self._items:
            raise SimulationError("queue is empty")
        return self._items.pop(0)

    def clear(self) -> List[Any]:
        """Drop and return all queued items (used when a worker crashes)."""
        items, self._items = self._items, []
        return items


class Environment:
    """The simulation world: event heap, clock, and process factory."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[Any] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: opt-in span tracer (see repro.obs); None means tracing is
        #: off and every instrumentation site is a single attr check.
        self.tracer: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def queue(self, capacity: Optional[int] = None) -> Queue:
        return Queue(self, capacity)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, count=1)

    def all_of(self, events: Iterable[Event]) -> Condition:
        events = list(events)
        return Condition(self, events, count=len(events))

    # -- scheduling and execution ------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events")
        self._now, _, _, event = heapq.heappop(self._heap)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and \
                not getattr(event, "_defused", False):
            # A failed event nobody was waiting on: a process died with an
            # unhandled exception.  Surface it rather than losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        Returns the event's value when ``until`` is an event.
        """
        stop_at = float("inf")
        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past")

        try:
            while self._heap and self._heap[0][0] <= stop_at:
                self.step()
        except StopSimulation as stop:
            event = stop.args[0]
            if not event._ok:
                raise event._value
            return event._value
        if stop_at != float("inf"):
            self._now = stop_at
        return None
