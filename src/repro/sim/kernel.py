"""Generator-based discrete-event simulation kernel.

This is the clock that replaces the paper's wall-clock cluster.  Components
(front ends, the manager, distillers, cache nodes) are written as Python
generator functions that ``yield`` events; the :class:`Environment` drives
them in simulated-time order.  The design follows the classic SimPy model,
but is self-contained so the repository has no external simulation
dependency.

The kernel is the innermost loop of every experiment — a million-request
trace replay pushes tens of millions of events through
:meth:`Environment.run` — so the hot paths are deliberately low-level:
events use ``__slots__``, queues use :class:`collections.deque`, the
scheduler inlines its heap pushes, and the run loop avoids per-event
method dispatch.  ``benchmarks/test_bench_kernel.py`` tracks the
resulting events/second in ``BENCH_kernel.json``.

Example
-------
>>> env = Environment()
>>> log = []
>>> def ticker(env, period):
...     while True:
...         yield env.timeout(period)
...         log.append(env.now)
>>> _ = env.process(ticker(env, 10.0))
>>> env.run(until=35.0)
>>> log
[10.0, 20.0, 30.0]
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Scheduling priorities.  Urgent events (interrupts, process resumes) are
#: handled before normal events scheduled for the same simulated time.
URGENT = 0
NORMAL = 1

PENDING = object()


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The SNS layer uses interrupts to model component crashes: killing a
    distiller interrupts its service loop, exactly as SIGKILL would end a
    worker process on a cluster node.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A happening at a point in simulated time.

    An event is *triggered* when given a value (or exception) and scheduled,
    and *processed* once its callbacks have run.  Processes wait on events
    by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event will have ``exception`` raised at
        its ``yield`` statement.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, NORMAL, seq, self))
        return self

    def _abandon(self) -> None:
        """Hook: the last observer detached (e.g. its process was
        interrupted).  Subclasses tied to a container can deregister."""

    def __repr__(self) -> str:
        state = "processed" if self.callbacks is None else (
            "triggered" if self._value is not PENDING else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    A timeout is *pending* until the delay elapses: it reports
    ``triggered == False`` while scheduled, and its value only becomes
    readable once the clock reaches it (the run loop installs the value
    at fire time).  It cannot be triggered by hand — the clock owns it.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._pending_value = value
        self.delay = delay
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now + delay, NORMAL, seq, self))

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError(
            "a Timeout fires by the clock and cannot be triggered manually")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError(
            "a Timeout fires by the clock and cannot be failed manually")


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, URGENT, seq, self))


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The event's value is the generator's return value.  If the generator
    raises, the process event fails with that exception (propagating to any
    process waiting on it, or aborting the simulation if unhandled).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a dead process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)
        # Detach from whatever the process was waiting on so that a later
        # trigger of that event does not resume the interrupted frame.
        # Mark the abandoned event defused: if it fails after losing its
        # only observer, that is not an unhandled error.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks:
                target._defused = True
                # Eagerly deregister events that live in a container
                # (e.g. queue getters): chaos campaigns interrupt
                # blocked consumers in tight loops, and stale entries
                # would otherwise accumulate until the next put.
                target._abandon()
        self._target = None

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already terminated (e.g. raced interrupt)
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    exc = event._value
                    if isinstance(exc, Interrupt):
                        # re-wrap so each delivery is a distinct instance
                        exc = Interrupt(exc.cause)
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self._value = stop.value
                env._seq = seq = env._seq + 1
                heappush(env._heap, (env._now, NORMAL, seq, self))
                break
            except BaseException as error:  # generator died
                self._target = None
                self._ok = False
                self._value = error
                env._seq = seq = env._seq + 1
                heappush(env._heap, (env._now, NORMAL, seq, self))
                break

            if type(next_event) is not Event and \
                    not isinstance(next_event, Event):
                event = Event(env)
                event._ok = False
                event._value = TypeError(
                    f"process yielded non-event {next_event!r}")
                continue
            if next_event.env is not env:
                raise SimulationError("event from a different environment")
            callbacks = next_event.callbacks
            if callbacks is not None:
                # not yet processed: wait for it
                callbacks.append(self._resume)
                self._target = next_event
                break
            # already processed: feed its value back immediately
            event = next_event
        env._active_process = None


class Condition(Event):
    """Fires when ``count`` of the given events have triggered successfully.

    Used via :meth:`Environment.any_of` / :meth:`Environment.all_of`.  The
    value is a dict mapping each triggered event to its value.
    """

    __slots__ = ("_events", "_need", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 count: int) -> None:
        super().__init__(env)
        self._events = list(events)
        self._need = min(count, len(self._events))
        self._done = 0
        if self._need == 0:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done >= self._need:
            self.succeed({
                ev: ev._value
                for ev in self._events
                if ev.callbacks is None and ev._ok
            })


class QueueFull(SimulationError):
    """Raised by :meth:`Queue.put_nowait` when a bounded queue is full."""


class QueueGet(Event):
    """A blocked ``get``: knows its queue so an interrupt can prune it."""

    __slots__ = ("_queue",)

    def __init__(self, env: "Environment", queue: "Queue") -> None:
        super().__init__(env)
        self._queue = queue

    def _abandon(self) -> None:
        try:
            self._queue._getters.remove(self)
        except ValueError:
            pass


class Queue:
    """FIFO queue with blocking ``get`` and optional capacity.

    This is the building block for every service queue in the system — a
    distiller's request queue, a front end's accept queue, the manager's
    report inbox.  Queue length is the paper's load metric (Section 4.5),
    so :attr:`length` is cheap and always current.

    Items and blocked getters live in :class:`collections.deque`\\ s, so
    every queue operation is O(1) no matter how deep the backlog — a
    saturated worker queue holding tens of thousands of requests costs
    the same per hand-off as an empty one.  Getters whose process was
    interrupted are pruned eagerly by the kernel (via
    :meth:`QueueGet._abandon`) and skipped lazily on delivery as a
    backstop, so ``_getters`` stays bounded under chaos kill loops.
    """

    __slots__ = ("env", "capacity", "_items", "_getters")

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()

    @property
    def length(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put_nowait(self, item: Any) -> None:
        """Enqueue ``item``; raise :class:`QueueFull` if at capacity."""
        items = self._items
        if self.capacity is not None and len(items) >= self.capacity:
            raise QueueFull(f"queue at capacity {self.capacity}")
        # hand directly to a waiting getter if any
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._value is not PENDING or not getter.callbacks:
                # Getter already resolved, or its process was interrupted
                # (the kernel detaches the resume callback on interrupt):
                # delivering here would lose the item.
                continue
            getter.succeed(item)
            return
        items.append(item)

    def try_put(self, item: Any) -> bool:
        """Enqueue ``item`` unless full; return whether it was accepted."""
        try:
            self.put_nowait(item)
        except QueueFull:
            return False
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        items = self._items
        if items:
            event = Event(self.env)
            event.succeed(items.popleft())
            return event
        event = QueueGet(self.env, self)
        self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Dequeue immediately; raise :class:`SimulationError` if empty."""
        if not self._items:
            raise SimulationError("queue is empty")
        return self._items.popleft()

    def clear(self) -> List[Any]:
        """Drop and return all queued items (used when a worker crashes)."""
        items = list(self._items)
        self._items.clear()
        return items


class PeriodicHandle:
    """One registered periodic callback (see :meth:`Environment.periodic`).

    The handle is how the owner detaches: :meth:`cancel` stops future
    ticks, :meth:`defer` skips the ticks inside a quiet window (the
    front-end watchdog sleeps out its restart tolerance this way).
    """

    __slots__ = ("env", "callback", "_cancelled", "_skip_until")

    def __init__(self, env: "Environment",
                 callback: Callable[[], None]) -> None:
        self.env = env
        self.callback = callback
        self._cancelled = False
        self._skip_until = float("-inf")

    @property
    def active(self) -> bool:
        return not self._cancelled

    def cancel(self) -> None:
        """Stop the callback permanently (idempotent)."""
        self._cancelled = True

    def defer(self, delay: float) -> None:
        """Skip any tick scheduled at a time ``<= now + delay``.

        The cadence itself is untouched — the shared bucket keeps
        firing for its other members — so after the window passes the
        callback resumes on its original phase.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._skip_until = self.env._now + delay


class _PeriodicBucket:
    """One recurring heap event driving every same-phase periodic callback.

    N maintenance loops with the same period used to cost N timeouts and
    N generator resumes per interval; a bucket costs one event, firing
    its members in registration order (which matches the order the old
    per-loop timeouts were re-armed, so within-tick event order is
    preserved for default configs).
    """

    __slots__ = ("env", "period", "handles", "next_fire")

    def __init__(self, env: "Environment", period: float,
                 first_fire: float) -> None:
        self.env = env
        self.period = period
        self.handles: List[PeriodicHandle] = []
        self.next_fire = first_fire
        event = Event(env)
        event._value = None
        event.callbacks.append(self._fire)
        env._seq = seq = env._seq + 1
        heappush(env._heap, (first_fire, NORMAL, seq, event))

    def _fire(self, _event: Event) -> None:
        env = self.env
        now = env._now
        registry = env._periodic
        old_key = (self.period, self.next_fire)
        if registry.get(old_key) is self:
            del registry[old_key]
        handles = [h for h in self.handles if not h._cancelled]
        if not handles:
            return  # every member cancelled: the bucket dies here
        self.handles = handles
        for handle in handles:
            if handle._cancelled or now <= handle._skip_until:
                continue
            handle.callback()
        # Re-arm *after* the callbacks run, exactly where a sleep-first
        # process loop re-armed its timeout — anything a callback
        # schedules at now + period keeps its old seq order relative to
        # the next tick.
        self.next_fire = next_fire = now + self.period
        key = (self.period, next_fire)
        if key not in registry:
            registry[key] = self
        event = Event(env)
        event._value = None
        event.callbacks.append(self._fire)
        env._seq = seq = env._seq + 1
        heappush(env._heap, (next_fire, NORMAL, seq, event))


class Environment:
    """The simulation world: event heap, clock, and process factory."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[Any] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: live coalesced-timer buckets, keyed (period, next_fire_time);
        #: a registration joins the bucket already firing at its phase.
        self._periodic: dict = {}
        #: opt-in span tracer (see repro.obs); None means tracing is
        #: off and every instrumentation site is a single attr check.
        self.tracer: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def queue(self, capacity: Optional[int] = None) -> Queue:
        return Queue(self, capacity)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, count=1)

    def all_of(self, events: Iterable[Event]) -> Condition:
        events = list(events)
        return Condition(self, events, count=len(events))

    # -- scheduling and execution ------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now + delay, priority, seq, event))

    def schedule_call(self, delay: float,
                      callback: Callable[[Event], None],
                      value: Any = None) -> Event:
        """Schedule ``callback(event)`` to run after ``delay``.

        The cheap alternative to spawning a whole process for a one-shot
        action (e.g. delivering a message after a network delay): one
        event and one heap entry instead of a process, its initializer,
        and a timeout.  The event fires successfully with ``value``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self)
        event._value = value
        event.callbacks.append(callback)
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now + delay, NORMAL, seq, event))
        return event

    def periodic(self, period: float, callback: Callable[[], None], *,
                 first_delay: Optional[float] = None) -> PeriodicHandle:
        """Run ``callback()`` every ``period`` seconds on a shared timer.

        All callbacks registered with the same period and phase share
        ONE recurring heap event (see :class:`_PeriodicBucket`) — the
        coalesced replacement for a fleet of ``while True: yield
        timeout(period)`` maintenance loops, each of which costs a heap
        entry and two generator resumes per node per interval.

        ``first_delay`` defaults to ``period`` (sleep-first loop
        parity).  Pass ``first_delay=0`` for a body-first loop: the
        first tick fires once at the current time with URGENT priority
        — mirroring the ``Initialize`` event that used to start the
        process — and the handle then joins the steady bucket at
        ``now + period``, so a body-first loop and a sleep-first loop
        registered right after it share one bucket in registration
        order (exactly the within-tick order the per-process timeouts
        produced).  Callbacks must not yield — spawn a process from
        inside the callback for anything that needs to block.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if first_delay is None:
            first_delay = period
        if first_delay < 0:
            raise ValueError(f"negative first_delay {first_delay}")
        handle = PeriodicHandle(self, callback)
        if first_delay == 0:
            first_fire = self._now + period

            def _first(_event: Event, _handle: PeriodicHandle = handle):
                if not _handle._cancelled \
                        and self._now > _handle._skip_until:
                    _handle.callback()

            event = Event(self)
            event._value = None
            event.callbacks.append(_first)
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self._now, URGENT, seq, event))
        else:
            first_fire = self._now + first_delay
        key = (period, first_fire)
        bucket = self._periodic.get(key)
        if bucket is None:
            bucket = _PeriodicBucket(self, period, first_fire)
            self._periodic[key] = bucket
        bucket.handles.append(handle)
        return handle

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events")
        self._now, _, _, event = heappop(self._heap)
        if event._value is PENDING:
            # a Timeout firing: its value becomes readable now
            event._value = event._pending_value
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not event._defused:
            # A failed event nobody was waiting on: a process died with an
            # unhandled exception.  Surface it rather than losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        Returns the event's value when ``until`` is an event; raises the
        event's exception if it failed (whether it fails during this run
        or had already failed before the call).
        """
        stop_at = float("inf")
        if isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past")

        # The hot loop: identical semantics to step(), inlined so a
        # million-event run pays no per-event method dispatch.
        heap = self._heap
        pop = heappop
        try:
            while heap and heap[0][0] <= stop_at:
                self._now, _, _, event = pop(heap)
                if event._value is PENDING:
                    event._value = event._pending_value
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not callbacks and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            event = stop.args[0]
            if not event._ok:
                raise event._value
            return event._value
        if stop_at != float("inf"):
            self._now = stop_at
        return None
