"""Reliable, connection-oriented channels (the simulated TCP).

Long-lived control connections — a distiller's registration with the
manager, a front end's connection to a cache node — are modelled as
:class:`Channel` objects carrying two directed message streams.  Unlike
multicast datagrams, channel messages are never dropped; instead the
channel can *break*, and both ends find out.  Broken connections are one
of the paper's failure-detection mechanisms ("if the distiller crashes
before de-registering itself, the manager detects the broken connection",
Section 3.1.3); the other is timeouts, which callers implement with
``env.any_of([endpoint.recv(), env.timeout(t)])``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.sim.kernel import PENDING, Environment, Event, Queue
from repro.sim.network import Network

#: Default connection setup + teardown cost, from the Harvest measurement
#: in Section 4.4 ("TCP connection and tear-down overhead is attributed to
#: 15 ms of this service time").
TCP_SETUP_S = 0.015


class ChannelClosed(Exception):
    """The peer closed the connection or crashed."""


class Endpoint:
    """One end of a channel: send to the peer, receive from the peer."""

    def __init__(self, channel: "Channel", name: str) -> None:
        self.channel = channel
        self.name = name
        self._inbox: Queue = channel.env.queue()
        self._waiters: Deque[Event] = deque()
        self.peer: Optional["Endpoint"] = None  # set by Channel
        # earliest time the next message may arrive: keeps the stream
        # FIFO even when the fault model jitters individual deliveries
        # (TCP delays, but never reorders)
        self._next_arrival_at = 0.0

    def send(self, message: Any, size_bytes: int = 256) -> None:
        """Queue ``message`` for delivery to the peer after the SAN delay.

        Raises :class:`ChannelClosed` if the connection is broken.
        """
        if not self.channel.open:
            raise ChannelClosed(self.channel.describe())
        partitions = self.channel.network.partitions
        if partitions is not None and not partitions.reachable(
                self.name, self.peer.name):
            # The segment is blackholed at the partitioned switch: the
            # connection stays "open" (neither side learns anything),
            # and the receiver's silence-based failure detectors — load
            # report expiry, dispatch timeouts — take over, exactly the
            # ambiguity a real partition creates.
            partitions.channel_blocked += 1
            return
        delay = self.channel.network.transfer_delay(size_bytes)
        faults = self.channel.network.faults
        if faults is not None:
            # Reliable connections never lose messages under the lossy-SAN
            # fault model; loss surfaces as retransmission delay instead
            # (plus any imposed delivery jitter), and delivery stays FIFO.
            delay += faults.channel_penalty()
            now = self.channel.env.now
            arrival = max(now + delay, self._next_arrival_at)
            self._next_arrival_at = arrival
            delay = arrival - now
        # One scheduled callback per message instead of a whole delivery
        # process (initializer + timeout + process event): channel traffic
        # is a large share of all kernel events in a cluster run.
        self.channel.env.schedule_call(delay, self._deliver, message)

    def _deliver(self, event: Event) -> None:
        if not self.channel.open:
            return  # lost in flight when the connection broke
        message = event._value
        peer = self.peer
        assert peer is not None
        waiters = peer._waiters
        while waiters:
            waiter = waiters.popleft()
            if waiter._value is not PENDING or not waiter.callbacks:
                continue
            waiter.succeed(message)
            return
        peer._inbox.put_nowait(message)

    def recv(self) -> Event:
        """Event for the next message; fails with :class:`ChannelClosed`
        when the connection breaks (after any already-delivered messages
        are drained)."""
        event = Event(self.channel.env)
        if self._inbox.length:
            event.succeed(self._inbox.get_nowait())
        elif not self.channel.open:
            event.fail(ChannelClosed(self.channel.describe()))
        else:
            self._waiters.append(event)
        return event

    def _break(self) -> None:
        for waiter in self._waiters:
            # Skip waiters whose process was interrupted (no callbacks
            # remain): failing an unobserved event would surface the
            # ChannelClosed as an unhandled simulation error.
            if not waiter.triggered and waiter.callbacks:
                waiter.fail(ChannelClosed(self.channel.describe()))
        self._waiters.clear()


class Channel:
    """A reliable duplex connection between two named parties."""

    def __init__(self, env: Environment, network: Network,
                 a_name: str, b_name: str) -> None:
        self.env = env
        self.network = network
        self.open = True
        self.a = Endpoint(self, a_name)
        self.b = Endpoint(self, b_name)
        self.a.peer = self.b
        self.b.peer = self.a

    def describe(self) -> str:
        return f"{self.a.name}<->{self.b.name}"

    def close(self) -> None:
        """Break the connection: pending and future receives on both ends
        fail, in-flight messages are lost."""
        if not self.open:
            return
        self.open = False
        self.a._break()
        self.b._break()

    @staticmethod
    def connect(env: Environment, network: Network, a_name: str,
                b_name: str, setup_s: float = TCP_SETUP_S):
        """Process generator: pay connection setup, return a Channel.

        Usage::

            channel = yield from Channel.connect(env, net, "fe0", "mgr")
        """
        yield env.timeout(setup_s)
        return Channel(env, network, a_name, b_name)


def endpoints(env: Environment, network: Network, a_name: str,
              b_name: str) -> Tuple[Endpoint, Endpoint]:
    """Convenience: create a channel and return its two endpoints."""
    channel = Channel(env, network, a_name, b_name)
    return channel.a, channel.b
