"""System-area network (SAN) and access-link models.

The paper's measurements (Section 4.6) hinge on *where bandwidth runs
out*: the 100 Mb/s Ethernet into each front end saturates at ~70-87
requests per second, while the interior SAN does not saturate at all — and
on a 10 Mb/s SAN, saturation drops the (unreliable) multicast beacons and
cripples load balancing.  This module models exactly those effects.

A :class:`Link` is a fluid-flow shared pipe: each message reserves
``size / bandwidth`` seconds of pipe time behind whatever is already
queued, plus a fixed propagation latency.  A windowed utilization meter
drives both saturation detection (for Table 2's "element that saturated"
column) and the multicast drop probability (for the 10 Mb/s experiment).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.kernel import Environment
from repro.sim.rng import Stream

#: Convenience: megabits/second to bytes/second.
MBPS = 1_000_000 / 8

#: Fault-model scope matching any traffic class.
ANY_SCOPE = "*"
#: Fault-model scope for reliable channel (TCP) traffic.
CHANNEL_SCOPE = "tcp"

#: Base retransmission timeout charged per lost channel segment.  A
#: reliable connection never *loses* a message under the fault model —
#: loss shows up as retransmit delay, doubling per consecutive loss
#: (classic RTO backoff).
CHANNEL_RTO_S = 0.2


class FaultWindow:
    """One time-bounded message-fault regime on a traffic scope.

    ``loss`` and ``duplicate`` are per-message probabilities; ``jitter_s``
    is the maximum uniform extra delivery delay.  Windows with
    ``end=None`` stay active until cleared.
    """

    def __init__(self, scope: str, start: float, end: Optional[float],
                 loss: float = 0.0, duplicate: float = 0.0,
                 jitter_s: float = 0.0) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if not 0.0 <= duplicate <= 1.0:
            raise ValueError("duplicate probability must be in [0, 1]")
        if jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if end is not None and end < start:
            raise ValueError("window ends before it starts")
        self.scope = scope
        self.start = start
        self.end = end
        self.loss = loss
        self.duplicate = duplicate
        self.jitter_s = jitter_s

    def active_at(self, now: float) -> bool:
        return self.start <= now and (self.end is None or now < self.end)

    def __repr__(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.1f}"
        return (f"<FaultWindow {self.scope} [{self.start:.1f},{end}) "
                f"loss={self.loss:.2f} dup={self.duplicate:.2f} "
                f"jitter={self.jitter_s * 1000:.0f}ms>")


class NetworkFaults:
    """The lossy-SAN fault model: scoped loss, duplication, and jitter.

    The baseline :class:`Network` drops unreliable datagrams only under
    *saturation*; this model adds the faults the paper's soft-state
    claims must survive but its testbed never produced on demand —
    independent per-message loss, duplicated delivery, and delay jitter,
    each confined to a *scope* (a multicast group name, the reliable
    channel scope :data:`CHANNEL_SCOPE`, or :data:`ANY_SCOPE`) and to a
    declared time window.  Windows are declarative: imposing one costs
    no simulation process, and messages consult the model only when it
    is installed, so a fault-free run draws no extra randomness.
    """

    def __init__(self, env: Environment, rng: Stream) -> None:
        self.env = env
        self.rng = rng
        self._windows: List[FaultWindow] = []
        # counters for chaos reports
        self.datagrams_lost = 0
        self.datagrams_duplicated = 0
        self.messages_jittered = 0
        self.channel_retransmits = 0

    # -- declaring fault regimes -------------------------------------------

    def impose(self, scope: str = ANY_SCOPE, loss: float = 0.0,
               duplicate: float = 0.0, jitter_s: float = 0.0,
               start: Optional[float] = None,
               duration_s: Optional[float] = None) -> FaultWindow:
        """Declare a fault window; defaults to starting now, forever."""
        begin = self.env.now if start is None else start
        if begin < self.env.now:
            raise ValueError(
                f"fault window start {begin} is in the past")
        end = None if duration_s is None else begin + duration_s
        window = FaultWindow(scope, begin, end, loss=loss,
                             duplicate=duplicate, jitter_s=jitter_s)
        self._windows.append(window)
        return window

    def clear(self, window: Optional[FaultWindow] = None) -> None:
        """End one window (or all of them) as of now."""
        targets = [window] if window is not None else list(self._windows)
        for target in targets:
            if target.end is None or target.end > self.env.now:
                target.end = self.env.now

    def windows(self, scope: Optional[str] = None) -> List[FaultWindow]:
        return [w for w in self._windows
                if scope is None or w.scope == scope]

    def final_heal_time(self) -> float:
        """Latest declared window end (open windows never heal)."""
        latest = 0.0
        for window in self._windows:
            if window.end is None:
                return float("inf")
            latest = max(latest, window.end)
        return latest

    def _active(self, scope: str) -> List[FaultWindow]:
        now = self.env.now
        return [
            w for w in self._windows
            if w.active_at(now) and w.scope in (scope, ANY_SCOPE)
        ]

    # -- consulted by the network layers ------------------------------------

    def datagram_fate(self, scope: str) -> Tuple[int, float]:
        """Decide one unreliable datagram's fate: (copies, extra delay).

        0 copies means the datagram is lost; 2 means duplicated
        delivery.  Loss wins over duplication when both fire.
        """
        active = self._active(scope)
        if not active:
            return 1, 0.0
        copies = 1
        extra = 0.0
        for window in active:
            if window.loss > 0 and self.rng.random() < window.loss:
                self.datagrams_lost += 1
                return 0, 0.0
            if window.duplicate > 0 and \
                    self.rng.random() < window.duplicate:
                copies = 2
            if window.jitter_s > 0:
                extra += self.rng.uniform(0.0, window.jitter_s)
        if copies > 1:
            self.datagrams_duplicated += 1
        if extra > 0:
            self.messages_jittered += 1
        return copies, extra

    def channel_penalty(self, scope: str = CHANNEL_SCOPE) -> float:
        """Extra delay for one reliable-channel message.

        Losses become retransmissions (the connection hides them but
        pays RTO, doubling per consecutive loss); jitter adds directly.
        """
        active = self._active(scope)
        if not active:
            return 0.0
        penalty = 0.0
        for window in active:
            if window.loss > 0:
                rto = CHANNEL_RTO_S
                # cap consecutive retransmissions so loss=1.0 stalls the
                # connection rather than hanging the simulation
                for _ in range(10):
                    if self.rng.random() >= window.loss:
                        break
                    self.channel_retransmits += 1
                    penalty += rto
                    rto *= 2.0
            if window.jitter_s > 0:
                penalty += self.rng.uniform(0.0, window.jitter_s)
        if penalty > 0:
            self.messages_jittered += 1
        return penalty


class SplitWindow:
    """A time-bounded split of the SAN into isolated node groups.

    ``groups`` maps node names to group labels; nodes absent from the
    map sit in the implicit default group ``""`` (the "rest of the
    cluster").  Two nodes can talk only while they share a group under
    every active split.
    """

    def __init__(self, groups: Dict[str, str], start: float,
                 end: Optional[float]) -> None:
        if end is not None and end < start:
            raise ValueError("split ends before it starts")
        self.groups = dict(groups)
        self.start = start
        self.end = end

    def active_at(self, now: float) -> bool:
        return self.start <= now and (self.end is None or now < self.end)

    def __repr__(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.1f}"
        return (f"<SplitWindow [{self.start:.1f},{end}) "
                f"{sorted(set(self.groups.values()))} vs rest>")


class CutWindow:
    """A time-bounded one-way reachability cut: ``src`` cannot reach
    ``dst``, while the reverse direction stays up (asymmetric link
    failure — the classic gray switch fault)."""

    def __init__(self, src: str, dst: str, start: float,
                 end: Optional[float]) -> None:
        if end is not None and end < start:
            raise ValueError("cut ends before it starts")
        self.src = src
        self.dst = dst
        self.start = start
        self.end = end

    def active_at(self, now: float) -> bool:
        return self.start <= now and (self.end is None or now < self.end)

    def __repr__(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.1f}"
        return (f"<CutWindow {self.src}-/->{self.dst} "
                f"[{self.start:.1f},{end})>")


class PartitionState:
    """Declarative SAN partitions: node-group splits and one-way cuts.

    The paper's testbed treated the SAN as a perfect fabric; the one
    fault class that actually breaks centralized soft state — a network
    partition that leaves both sides alive — was never modelled.  This
    object holds the partition schedule as declarative windows with
    absolute end times (no simulation processes, no randomness): the
    message layers consult :meth:`reachable` per delivery only while a
    partition object is installed, so fault-free runs pay nothing.

    Component names (``fe0``, ``worker:jpeg-distiller:3``) are resolved
    to node names through ``resolver`` (the cluster's component
    registry); unresolvable names are treated as reachable.
    """

    def __init__(self, env: Environment,
                 resolver: Optional[Callable[[str], Optional[str]]] = None
                 ) -> None:
        self.env = env
        self._resolver = resolver
        self._splits: List[SplitWindow] = []
        self._cuts: List[CutWindow] = []
        # counters for chaos reports
        self.multicast_blocked = 0
        self.channel_blocked = 0

    # -- declaring partitions ------------------------------------------------

    def split(self, groups: Dict[str, str],
              start: Optional[float] = None,
              duration_s: Optional[float] = None) -> SplitWindow:
        """Split the SAN: nodes reach each other only within a group.

        Nodes absent from ``groups`` form the implicit default group.
        Defaults to starting now and lasting until :meth:`heal`.
        """
        begin = self.env.now if start is None else start
        if begin < self.env.now:
            raise ValueError(f"partition start {begin} is in the past")
        end = None if duration_s is None else begin + duration_s
        window = SplitWindow(groups, begin, end)
        self._splits.append(window)
        return window

    def one_way(self, src_node: str, dst_node: str,
                start: Optional[float] = None,
                duration_s: Optional[float] = None) -> CutWindow:
        """Cut reachability from ``src_node`` to ``dst_node`` only."""
        begin = self.env.now if start is None else start
        if begin < self.env.now:
            raise ValueError(f"cut start {begin} is in the past")
        end = None if duration_s is None else begin + duration_s
        window = CutWindow(src_node, dst_node, begin, end)
        self._cuts.append(window)
        return window

    def heal(self) -> None:
        """End every split and cut as of now."""
        now = self.env.now
        for window in self._splits + self._cuts:
            if window.end is None or window.end > now:
                window.end = now

    def active(self) -> bool:
        now = self.env.now
        return any(w.active_at(now) for w in self._splits) or \
            any(w.active_at(now) for w in self._cuts)

    def final_heal_time(self) -> float:
        """Latest declared window end (open windows never heal)."""
        latest = 0.0
        for window in self._splits + self._cuts:
            if window.end is None:
                return float("inf")
            latest = max(latest, window.end)
        return latest

    # -- consulted by the message layers -------------------------------------

    def node_reachable(self, src_node: str, dst_node: str) -> bool:
        """Can a message flow from ``src_node`` to ``dst_node`` now?"""
        if src_node == dst_node:
            return True     # local delivery never crosses the SAN
        now = self.env._now
        for window in self._splits:
            if window.active_at(now):
                groups = window.groups
                if groups.get(src_node, "") != groups.get(dst_node, ""):
                    return False
        for window in self._cuts:
            if window.active_at(now) and window.src == src_node \
                    and window.dst == dst_node:
                return False
        return True

    def reachable(self, src_component: str, dst_component: str) -> bool:
        """Component-name reachability via the installed resolver."""
        resolver = self._resolver
        if resolver is None:
            return True
        src_node = resolver(src_component)
        dst_node = resolver(dst_component)
        if src_node is None or dst_node is None:
            return True
        return self.node_reachable(src_node, dst_node)


class UtilizationMeter:
    """Windowed byte-rate meter over fixed-size time buckets."""

    def __init__(self, env: Environment, window: float = 5.0,
                 buckets: int = 10) -> None:
        self.env = env
        self.window = window
        self.bucket_width = window / buckets
        self._span = int(window / self.bucket_width)
        self._buckets: Deque[Tuple[int, float]] = deque()  # (bucket_id, bytes)

    def record(self, nbytes: float) -> None:
        # hot path: one call per message on every link
        bucket_id = int(self.env._now / self.bucket_width)
        buckets = self._buckets
        if buckets and buckets[-1][0] == bucket_id:
            buckets[-1] = (bucket_id, buckets[-1][1] + nbytes)
        else:
            buckets.append((bucket_id, nbytes))
        horizon = bucket_id - self._span
        while buckets and buckets[0][0] < horizon:
            buckets.popleft()

    def _expire(self, current_bucket: int) -> None:
        horizon = current_bucket - self._span
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    def rate(self) -> float:
        """Bytes per second over the window ending now."""
        current_bucket = int(self.env.now / self.bucket_width)
        self._expire(current_bucket)
        total = sum(nbytes for _, nbytes in self._buckets)
        return total / self.window


class Link:
    """A shared pipe with bandwidth, latency, and a utilization meter."""

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        latency_s: float = 0.0005,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self._busy_until = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0
        self._meter = UtilizationMeter(env)

    def reserve(self, size_bytes: float) -> float:
        """Reserve pipe time for a message; return its total delay.

        The delay covers queueing behind in-flight traffic, transmission,
        and propagation.  Callers ``yield env.timeout(delay)``.
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        now = self.env._now
        busy_until = self._busy_until
        start = busy_until if busy_until > now else now
        transmission = size_bytes / self.bandwidth_bps
        self._busy_until = start + transmission
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        self._meter.record(size_bytes)
        return (start - now) + transmission + self.latency_s

    def utilization(self) -> float:
        """Recent offered load as a fraction of capacity (can exceed 1)."""
        return self._meter.rate() / self.bandwidth_bps

    @property
    def backlog_s(self) -> float:
        """Seconds of traffic currently queued on the pipe."""
        return max(0.0, self._busy_until - self.env.now)

    def is_saturated(self, threshold: float = 0.9) -> bool:
        return self.utilization() >= threshold

    def __repr__(self) -> str:
        return (f"<Link {self.name} {self.bandwidth_bps / MBPS:.0f}Mb/s "
                f"util={self.utilization():.2f}>")


class AccessLink(Link):
    """Bandwidth into the system — e.g. the Ethernet segment feeding one
    front end, or the shared 10 Mb/s segment to the modem bank."""


class Network:
    """The SAN: one interior pipe plus per-endpoint access links.

    ``transfer`` computes a message delay over the interior pipe;
    :class:`~repro.sim.multicast.MulticastGroup` consults
    :meth:`multicast_drop_probability` to decide whether an unreliable
    datagram survives (the paper observed beacon loss under SAN
    saturation, Section 4.6).
    """

    #: Utilization above which unreliable datagrams start dropping, and the
    #: utilization at which nearly all drop.  Chosen so a 100 Mb/s SAN never
    #: drops under TranSend-scale control traffic while a 10 Mb/s SAN
    #: saturated by data traffic loses most beacons — the paper's observed
    #: behaviour.
    DROP_START = 0.75
    DROP_FULL = 1.25
    MAX_DROP = 0.95

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 100 * MBPS,
        latency_s: float = 0.0005,
    ) -> None:
        self.env = env
        self.san = Link(env, "SAN", bandwidth_bps, latency_s)
        self.access_links: Dict[str, AccessLink] = {}
        #: optional lossy-SAN fault model; ``None`` keeps the baseline
        #: perfectly reliable SAN (and draws no randomness).
        self.faults: Optional[NetworkFaults] = None
        #: optional SAN-partition model; ``None`` keeps the baseline
        #: fully connected SAN (and costs nothing per message).
        self.partitions: Optional[PartitionState] = None
        #: Section 4.6's proposed fix: "the addition of a low-speed
        #: utility network to isolate control traffic from data traffic,
        #: allowing the system to more gracefully handle (and perhaps
        #: avoid) SAN saturation."  When present, control datagrams
        #: (beacons, load reports) ride here instead of the SAN.
        self.utility: Optional[Link] = None

    def install_faults(self, rng: Stream) -> NetworkFaults:
        """Attach (or return the existing) lossy-SAN fault model."""
        if self.faults is None:
            self.faults = NetworkFaults(self.env, rng)
        return self.faults

    def install_partitions(
        self,
        resolver: Optional[Callable[[str], Optional[str]]] = None,
    ) -> PartitionState:
        """Attach (or return the existing) SAN-partition model."""
        if self.partitions is None:
            self.partitions = PartitionState(self.env, resolver)
        elif resolver is not None:
            self.partitions._resolver = resolver
        return self.partitions

    def add_utility_network(self, bandwidth_bps: float = 10 * MBPS,
                            latency_s: float = 0.001) -> Link:
        """Attach the low-speed utility network for control traffic."""
        if self.utility is not None:
            raise ValueError("utility network already attached")
        self.utility = Link(self.env, "utility", bandwidth_bps,
                            latency_s)
        return self.utility

    def add_access_link(self, name: str, bandwidth_bps: float,
                        latency_s: float = 0.001) -> AccessLink:
        if name in self.access_links:
            raise ValueError(f"duplicate access link {name!r}")
        link = AccessLink(self.env, name, bandwidth_bps, latency_s)
        self.access_links[name] = link
        return link

    def transfer_delay(self, size_bytes: float,
                       access_link: Optional[str] = None,
                       control: bool = False) -> float:
        """Reserve capacity for a message and return its delivery delay.

        Interior traffic crosses only the SAN; traffic entering or leaving
        the system additionally crosses the named access link.  Control
        traffic (``control=True``) uses the utility network when one is
        attached.
        """
        if control and self.utility is not None:
            return self.utility.reserve(size_bytes)
        delay = self.san.reserve(size_bytes)
        if access_link is not None:
            delay += self.access_links[access_link].reserve(size_bytes)
        return delay

    def _control_link(self) -> Link:
        return self.utility if self.utility is not None else self.san

    def multicast_drop_probability(self) -> float:
        """Probability an unreliable datagram is dropped right now.

        Datagrams are control traffic: with a utility network attached,
        only *its* utilization matters — data-plane saturation no longer
        kills the beacons.
        """
        utilization = self._control_link().utilization()
        if utilization <= self.DROP_START:
            return 0.0
        span = self.DROP_FULL - self.DROP_START
        fraction = (utilization - self.DROP_START) / span
        return min(self.MAX_DROP, fraction * self.MAX_DROP)

    def saturated_elements(self, threshold: float = 0.9) -> Dict[str, float]:
        """Names and utilizations of all links at or above ``threshold``."""
        result = {}
        if self.san.utilization() >= threshold:
            result["SAN"] = self.san.utilization()
        for name, link in self.access_links.items():
            if link.utilization() >= threshold:
                result[name] = link.utilization()
        return result
