"""Discrete-event simulation substrate for the SNS reproduction.

The paper measured a real 15-node SPARC cluster; this package provides the
deterministic stand-in: a generator-based discrete-event kernel
(:mod:`repro.sim.kernel`), seeded random streams, simulated workstation
nodes, a system-area network with bandwidth and saturation behaviour,
unreliable IP multicast, reliable TCP-like channels, and fault injection.

All higher layers (SNS, TACC, TranSend, HotBot) are written against this
substrate, so every experiment in the paper's Section 4 replays exactly
given a seed.
"""

from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    Process,
    Queue,
    QueueFull,
    Timeout,
)
from repro.sim.rng import RandomStreams
from repro.sim.node import Node
from repro.sim.network import AccessLink, Network
from repro.sim.multicast import MulticastGroup
from repro.sim.transport import Channel, ChannelClosed
from repro.sim.cluster import Cluster
from repro.sim.failures import FaultInjector

__all__ = [
    "AccessLink",
    "Channel",
    "ChannelClosed",
    "Cluster",
    "Environment",
    "Event",
    "FaultInjector",
    "Interrupt",
    "MulticastGroup",
    "Network",
    "Node",
    "Process",
    "Queue",
    "QueueFull",
    "RandomStreams",
    "Timeout",
]
