"""The keyword filter aggregator (Section 5.1).

"The keyword filter aggregator is very simple (about 10 lines of Perl).
It allows users to specify a Perl regular expression as customization
preference.  This regular expression is then applied to all HTML before
delivery.  A simple example filter marks all occurrences of the chosen
keywords with large, bold, red typeface."

The pattern comes from the user's profile (key ``filter_pattern``) —
the canonical example of per-user mass customization reaching a worker
automatically.
"""

from __future__ import annotations

import re

from repro.distillers.base import DistillerLatencyModel, HTML_SLOPE_S_PER_KB
from repro.tacc.content import MIME_HTML, Content, zero_payload
from repro.tacc.worker import TACCRequest, Transformer, WorkerError

MARKUP = '<b style="color:red;font-size:larger">{match}</b>'

#: Guard against catastrophic patterns from user profiles.
MAX_PATTERN_LENGTH = 200


class KeywordFilter(Transformer):
    """Mark keyword matches in HTML with bold red typeface."""

    worker_type = "keyword-filter"
    accepts = (MIME_HTML,)
    produces = MIME_HTML
    latency_model = DistillerLatencyModel(HTML_SLOPE_S_PER_KB,
                                          fixed_s=0.001)

    def transform(self, content: Content, request: TACCRequest) -> Content:
        pattern_text = request.param("filter_pattern")
        if not pattern_text:
            return content  # nothing to do: pass through
        if len(pattern_text) > MAX_PATTERN_LENGTH:
            raise WorkerError("filter pattern too long")
        try:
            pattern = re.compile(pattern_text, re.IGNORECASE)
        except re.error as error:
            raise WorkerError(
                f"bad filter pattern {pattern_text!r}: {error}") from error
        try:
            html = content.data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WorkerError(f"{content.url} is not HTML") from error

        matched = 0

        def mark(match: "re.Match[str]") -> str:
            nonlocal matched
            matched += 1
            return MARKUP.format(match=match.group(0))

        filtered = pattern.sub(mark, html)
        return content.derive(
            filtered.encode("utf-8"),
            mime=MIME_HTML,
            worker=self.worker_type,
            keywords_marked=matched,
        )

    def simulate(self, request: TACCRequest) -> Content:
        content = request.content
        return content.derive(
            zero_payload(int(content.size * 1.02)),
            mime=MIME_HTML,
            worker=self.worker_type,
            simulated=True,
        )
