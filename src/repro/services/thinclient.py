"""Thin-client (PDA / smart phone) support (Section 5.1).

"We have built TranSend workers that output simplified markup and
scaled-down images ready to be 'spoon fed' to an extremely simple
browser client, given knowledge of the client's screen dimensions and
font metrics.  This greatly simplifies client-side code since no HTML
parsing, layout, or image processing is necessary."

The simplifier reduces arbitrary HTML to a line-oriented micro-markup
(one directive per line) sized to the client's screen, and rewrites
image references to pre-scaled variants.  Screen geometry arrives via
the user profile (``screen_width``/``screen_height``/``font_width``),
the mass-customization path again.
"""

from __future__ import annotations

import re
from typing import List

from repro.distillers.base import DistillerLatencyModel, HTML_SLOPE_S_PER_KB
from repro.tacc.content import (
    Content,
    MIME_HTML,
    MIME_PLAIN,
    zero_payload,
)
from repro.tacc.worker import TACCRequest, Transformer, WorkerError

_TAG = re.compile(r"<[^>]+>")
_IMG = re.compile(r"<img\b[^>]*?\bsrc\s*=\s*[\"']([^\"']+)[\"'][^>]*>",
                  re.IGNORECASE)
_HEADING = re.compile(r"<h[1-6][^>]*>(.*?)</h[1-6]>",
                      re.IGNORECASE | re.DOTALL)
_LINK = re.compile(r"<a\b[^>]*?\bhref\s*=\s*[\"']([^\"']+)[\"'][^>]*>"
                   r"(.*?)</a>", re.IGNORECASE | re.DOTALL)

#: PalmPilot-class defaults (160x160 pixels, ~5 px per character).
DEFAULT_SCREEN = {"screen_width": 160, "screen_height": 160,
                  "font_width": 5}


class ThinClientSimplifier(Transformer):
    """HTML -> line-oriented micro-markup for dumb clients."""

    worker_type = "thinclient-simplify"
    accepts = (MIME_HTML,)
    produces = MIME_PLAIN
    latency_model = DistillerLatencyModel(HTML_SLOPE_S_PER_KB,
                                          fixed_s=0.002)

    def transform(self, content: Content, request: TACCRequest) -> Content:
        try:
            html = content.data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WorkerError(f"{content.url} is not HTML") from error
        screen_width = int(request.param(
            "screen_width", DEFAULT_SCREEN["screen_width"]))
        font_width = int(request.param(
            "font_width", DEFAULT_SCREEN["font_width"]))
        columns = max(10, screen_width // font_width)

        lines: List[str] = []
        for match in _HEADING.finditer(html):
            text = _TAG.sub("", match.group(1)).strip()
            if text:
                lines.append(f"H {text[:columns]}")
        for match in _IMG.finditer(html):
            # the client never scales: reference a pre-scaled variant
            lines.append(f"I {match.group(1)}?w={screen_width}")
        for match in _LINK.finditer(html):
            text = _TAG.sub("", match.group(2)).strip() or match.group(1)
            lines.append(f"L {match.group(1)} {text[:columns]}")
        body = _TAG.sub(" ", _HEADING.sub(" ", html))
        for word_line in _wrap(" ".join(body.split()), columns):
            lines.append(f"T {word_line}")

        rendered = "\n".join(lines) + "\n"
        return content.derive(
            rendered.encode("utf-8"),
            mime=MIME_PLAIN,
            worker=self.worker_type,
            columns=columns,
        )

    def simulate(self, request: TACCRequest) -> Content:
        content = request.content
        # simplification strips markup: pages shrink substantially
        return content.derive(
            zero_payload(max(32, int(content.size * 0.4))),
            mime=MIME_PLAIN,
            worker=self.worker_type,
            simulated=True,
        )


def _wrap(text: str, columns: int) -> List[str]:
    """Pre-layout: the whole point is that the client does no layout."""
    words = text.split()
    lines: List[str] = []
    current: List[str] = []
    length = 0
    for word in words:
        if length + len(word) + (1 if current else 0) > columns and current:
            lines.append(" ".join(current))
            current = []
            length = 0
        current.append(word)
        length += len(word) + (1 if length else 0)
    if current:
        lines.append(" ".join(current))
    return lines
