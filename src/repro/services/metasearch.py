"""The TranSend metasearch service (Section 5.1).

"An aggregator accepts a search string from a user, queries a number of
popular search engines, and collates the top results from each into a
single result page.  Commercial metasearch engines already exist, but
the TranSend metasearch engine was implemented using 3 pages of Perl
code in roughly 2.5 hours, and inherits scalability, fault tolerance,
and high availability from the SNS layer."

The aggregator consumes one HTML result page per engine (each a
:class:`Content` whose metadata carries the engine name), parses the
result items, de-duplicates by URL, and interleaves by per-engine rank.
:func:`render_engine_results` renders the per-engine input pages — use
it to adapt any backend (e.g. :class:`repro.hotbot.HotBot` hits) into
metasearch input.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.distillers.base import DistillerLatencyModel, HTML_SLOPE_S_PER_KB
from repro.tacc.content import MIME_HTML, Content
from repro.tacc.worker import Aggregator, TACCRequest, WorkerError

_RESULT_RE = re.compile(
    r'<li class="result"><a href="([^"]+)">([^<]*)</a></li>')

RESULT_TEMPLATE = '<li class="result"><a href="{url}">{title}</a></li>'


def render_engine_results(engine: str,
                          results: Sequence[Tuple[str, str]]) -> Content:
    """Render (url, title) pairs as one engine's result page."""
    items = "\n".join(
        RESULT_TEMPLATE.format(url=url, title=title)
        for url, title in results
    )
    page = (f"<html><body><h1>{engine} results</h1>\n<ul>\n{items}\n"
            "</ul></body></html>")
    return Content(
        url=f"meta://{engine}/results",
        mime=MIME_HTML,
        data=page.encode("utf-8"),
        metadata={"engine": engine},
    )


class MetasearchAggregator(Aggregator):
    """Collate top results from several engines into one page."""

    worker_type = "metasearch"
    accepts = (MIME_HTML,)
    produces = MIME_HTML
    latency_model = DistillerLatencyModel(HTML_SLOPE_S_PER_KB,
                                          fixed_s=0.002)

    def aggregate(self, inputs: List[Content],
                  request: TACCRequest) -> Content:
        max_results = int(request.param("max_results", 10))
        per_engine: List[List[Tuple[str, str, str]]] = []
        for page in inputs:
            engine = page.metadata.get("engine", page.url)
            try:
                html = page.data.decode("utf-8")
            except UnicodeDecodeError as error:
                raise WorkerError(
                    f"engine page {page.url} undecodable") from error
            parsed = [(url, title, engine)
                      for url, title in _RESULT_RE.findall(html)]
            per_engine.append(parsed)

        # interleave by rank, de-duplicating by URL: rank-1 results from
        # every engine first, then rank-2, ...
        seen: Dict[str, bool] = {}
        collated: List[Tuple[str, str, str]] = []
        depth = max((len(results) for results in per_engine), default=0)
        for rank in range(depth):
            for results in per_engine:
                if rank >= len(results):
                    continue
                url, title, engine = results[rank]
                if url in seen:
                    continue
                seen[url] = True
                collated.append((url, title, engine))
        collated = collated[:max_results]

        items = "\n".join(
            f'<li class="result"><a href="{url}">{title}</a> '
            f"<small>({engine})</small></li>"
            for url, title, engine in collated
        )
        query = request.param("query", "")
        page = (f"<html><body><h1>Metasearch: {query}</h1>\n"
                f"<ul>\n{items}\n</ul></body></html>")
        return inputs[0].derive(
            page.encode("utf-8"),
            mime=MIME_HTML,
            worker=self.worker_type,
            engines=len(inputs),
            results=len(collated),
        )
