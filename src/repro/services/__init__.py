"""Extension services (Section 5.1): TACC's extensibility, demonstrated.

"One of our goals was to make the system easily extensible at the TACC
and Service layers by making it easy to create workers and chain them
together."  The paper lists five services prototyped on TranSend; all
five are implemented here as ordinary TACC workers, each registrable
with any :class:`~repro.core.fabric.SNSFabric` and therefore inheriting
"scalability, fault tolerance, and high availability from the SNS
layer":

* **keyword filter** — "about 10 lines of Perl": mark up keywords per a
  user-supplied regular expression;
* **metasearch** — collate top results from several search engines into
  one page ("3 pages of Perl ... roughly 2.5 hours");
* **Bay Area Culture Page** — layout-independent date/event scraping
  with BASE approximate answers (10-20 % spurious results are fine);
* **anonymous rewebber** — encryption/decryption workers for anonymous
  publishing (implemented in one week on the TACC architecture);
* **thin-client support** — simplified markup and scaled images
  "spoon-fed" to a PalmPilot-class browser.
"""

from repro.services.keyword_filter import KeywordFilter
from repro.services.metasearch import (
    MetasearchAggregator,
    render_engine_results,
)
from repro.services.culture_page import CulturePageAggregator
from repro.services.rewebber import (
    DecryptWorker,
    EncryptWorker,
    rewebber_keypair,
)
from repro.services.thinclient import ThinClientSimplifier

__all__ = [
    "CulturePageAggregator",
    "DecryptWorker",
    "EncryptWorker",
    "KeywordFilter",
    "MetasearchAggregator",
    "ThinClientSimplifier",
    "render_engine_results",
    "rewebber_keypair",
]
