"""The Bay Area Culture Page aggregator (Section 5.1).

"This service retrieves scheduling information from a number of cultural
pages on the web, and collates the results into a single, comprehensive
calendar of upcoming events, bounded by dates stored as part of each
user's profile ... extremely general, layout-independent heuristics are
used to extract scheduling information from the cultural pages.  About
10-20% of the time, the heuristics spuriously pick up non-date text ...
but the service is still useful and users simply ignore spurious
results."

The date heuristics here are deliberately general (several formats, no
layout assumptions) and therefore imperfect — that imperfection is the
point: it is the paper's showcase of **BASE approximate answers at the
application layer**, and the tests assert usefulness despite noise
rather than exactness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.distillers.base import DistillerLatencyModel, HTML_SLOPE_S_PER_KB
from repro.tacc.content import MIME_HTML, Content
from repro.tacc.worker import Aggregator, TACCRequest, WorkerError

_MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "jun": 6, "jul": 7,
    "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}

#: "Month DD" — e.g. "October 14" / "Oct 14".
_TEXT_DATE = re.compile(
    r"\b(" + "|".join(sorted(_MONTHS, key=len, reverse=True)) + r")\.?\s+"
    r"(\d{1,2})\b",
    re.IGNORECASE,
)
#: "MM/DD" — the second, noisier heuristic; this is the one that
#: "spuriously picks up non-date text" like fractions or version numbers.
_NUMERIC_DATE = re.compile(r"\b(\d{1,2})/(\d{1,2})\b")

_TAG_RE = re.compile(r"<[^>]+>")


@dataclass(frozen=True)
class ExtractedEvent:
    """One (possibly spurious) calendar entry."""

    month: int
    day: int
    description: str
    source_url: str

    @property
    def date_key(self) -> Tuple[int, int]:
        return (self.month, self.day)


def extract_events(content: Content) -> List[ExtractedEvent]:
    """Layout-independent extraction: any date-looking token plus its
    surrounding text becomes an event candidate."""
    try:
        html = content.data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise WorkerError(f"{content.url} undecodable") from error
    text = _TAG_RE.sub(" ", html)
    events: List[ExtractedEvent] = []

    def snippet(position: int) -> str:
        window = text[max(0, position - 60): position + 60]
        return " ".join(window.split())

    for match in _TEXT_DATE.finditer(text):
        month = _MONTHS[match.group(1).lower()]
        day = int(match.group(2))
        if 1 <= day <= 31:
            events.append(ExtractedEvent(month, day,
                                         snippet(match.start()),
                                         content.url))
    for match in _NUMERIC_DATE.finditer(text):
        month, day = int(match.group(1)), int(match.group(2))
        if 1 <= month <= 12 and 1 <= day <= 31:
            events.append(ExtractedEvent(month, day,
                                         snippet(match.start()),
                                         content.url))
    return events


class CulturePageAggregator(Aggregator):
    """Collate event candidates into one calendar page, bounded by the
    user's profile date window."""

    worker_type = "culture-page"
    accepts = (MIME_HTML,)
    produces = MIME_HTML
    latency_model = DistillerLatencyModel(HTML_SLOPE_S_PER_KB,
                                          fixed_s=0.002)

    def aggregate(self, inputs: List[Content],
                  request: TACCRequest) -> Content:
        window_start = self._window(request, "calendar_start", (1, 1))
        window_end = self._window(request, "calendar_end", (12, 31))
        events: List[ExtractedEvent] = []
        for page in inputs:
            events.extend(extract_events(page))
        selected = sorted(
            (event for event in events
             if window_start <= event.date_key <= window_end),
            key=lambda event: event.date_key,
        )
        rows = "\n".join(
            f"<li>{event.month:02d}/{event.day:02d} — "
            f"{event.description} "
            f'<small><a href="{event.source_url}">source</a></small></li>'
            for event in selected
        )
        page = ("<html><body><h1>Culture this week</h1>\n"
                f"<ul>\n{rows}\n</ul></body></html>")
        return inputs[0].derive(
            page.encode("utf-8"),
            mime=MIME_HTML,
            worker=self.worker_type,
            events=len(selected),
            pages_scraped=len(inputs),
        )

    @staticmethod
    def _window(request: TACCRequest, key: str,
                default: Tuple[int, int]) -> Tuple[int, int]:
        value = request.param(key)
        if value is None:
            return default
        month, day = value
        return (int(month), int(day))
