"""The anonymous rewebber (Section 5.1).

"Just as anonymous remailer chains allow email authors to anonymously
disseminate their content, an anonymous rewebber network allows web
authors to anonymously publish their content.  The rewebber described in
[25] was implemented in one week using our TACC architecture.  The
rewebber's workers perform encryption and decryption, its user profile
database maintains public key information for anonymous servers, and its
cache stores decrypted versions of frequently accessed pages."

The cipher is a deterministic keystream cipher (SHA-256 in counter
mode) — honest symmetric crypto built from the standard library, which
is enough to exercise the architecture: encryption/decryption are CPU-
intensive, highly parallelizable, per-request keyed from the profile
database, and chainable (onion-style) through TACC pipelines.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.distillers.base import DistillerLatencyModel
from repro.tacc.content import MIME_OCTET, Content
from repro.tacc.worker import TACCRequest, Transformer, WorkerError

#: crypto is CPU-bound: a bit cheaper than image distillation per byte.
CRYPTO_SLOPE_S_PER_KB = 0.004


def rewebber_keypair(server_name: str, secret: str = "s3cret"
                     ) -> Tuple[str, str]:
    """A (key_id, key_material) pair for one rewebber server.

    Profile databases store the key_id -> material mapping ("its user
    profile database maintains public key information").
    """
    key_id = f"rewebber:{server_name}"
    material = hashlib.sha256(
        f"{server_name}:{secret}".encode()).hexdigest()
    return key_id, material


def _keystream_xor(data: bytes, key_material: str) -> bytes:
    """XOR with a SHA-256 counter-mode keystream (self-inverse)."""
    key = key_material.encode()
    out = bytearray(len(data))
    block = 32
    for offset in range(0, len(data), block):
        counter = offset // block
        stream = hashlib.sha256(key + counter.to_bytes(8, "big")).digest()
        chunk = data[offset: offset + block]
        for index, byte in enumerate(chunk):
            out[offset + index] = byte ^ stream[index]
    return bytes(out)


class _CryptoWorker(Transformer):
    latency_model = DistillerLatencyModel(CRYPTO_SLOPE_S_PER_KB,
                                          fixed_s=0.002)
    direction = "?"

    def _key(self, request: TACCRequest) -> str:
        key_material = request.param("rewebber_key")
        if not key_material:
            raise WorkerError(
                f"no rewebber key in profile for {self.direction}")
        return key_material

    def simulate(self, request: TACCRequest) -> Content:
        content = request.content
        return content.derive(
            b"\x00" * content.size,  # crypto is size-preserving
            worker=self.worker_type,
            simulated=True,
        )


class EncryptWorker(_CryptoWorker):
    """Seal content for an anonymous server."""

    worker_type = "rewebber-encrypt"
    direction = "encrypt"

    def transform(self, content: Content, request: TACCRequest) -> Content:
        sealed = _keystream_xor(content.data, self._key(request))
        return content.derive(
            sealed,
            mime=MIME_OCTET,
            worker=self.worker_type,
            sealed_mime=content.mime,
        )


class DecryptWorker(_CryptoWorker):
    """Open sealed content on the way to the reader."""

    worker_type = "rewebber-decrypt"
    direction = "decrypt"

    def transform(self, content: Content, request: TACCRequest) -> Content:
        opened = _keystream_xor(content.data, self._key(request))
        original_mime = content.metadata.get("sealed_mime", content.mime)
        return content.derive(
            opened,
            mime=original_mime,
            worker=self.worker_type,
        )
