"""Static partitioning of the search database.

"HotBot workers statically partition the search-engine database for load
balancing.  Thus each worker handles a subset of the database
proportional to its CPU power, and every query goes to all workers in
parallel" (Section 3.2).  Documents are distributed randomly ("the
database partitioning distributes documents randomly"), which is what
makes losing a partition graceful: you lose a random ~1/N of the
database, not a topical slice.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hotbot.documents import Corpus, Document
from repro.hotbot.index import InvertedIndex
from repro.sim.rng import Stream


class PartitionMap:
    """Assignment of documents to partitions, weighted by node power."""

    def __init__(self, corpus: Corpus, weights: Sequence[float],
                 rng: Stream) -> None:
        if not weights or any(weight <= 0 for weight in weights):
            raise ValueError("weights must be positive and non-empty")
        self.corpus = corpus
        self.weights = list(weights)
        self.n_partitions = len(weights)
        self.assignment: Dict[int, int] = {}
        partition_ids = list(range(self.n_partitions))
        for document in corpus:
            partition = rng.weighted_choice(partition_ids, self.weights)
            self.assignment[document.doc_id] = partition

    def documents_in(self, partition: int) -> List[Document]:
        return [document for document in self.corpus
                if self.assignment[document.doc_id] == partition]

    def partition_sizes(self) -> List[int]:
        sizes = [0] * self.n_partitions
        for partition in self.assignment.values():
            sizes[partition] += 1
        return sizes

    def global_df(self) -> Dict[str, int]:
        """Corpus-wide document frequencies, shared with every
        partition so per-partition scores are comparable at collation."""
        if not hasattr(self, "_global_df"):
            df: Dict[str, int] = {}
            for document in self.corpus:
                for term, _ in document.terms:
                    df[term] = df.get(term, 0) + 1
            self._global_df = df
        return self._global_df

    def build_index(self, partition: int) -> InvertedIndex:
        """The partition's local index (global statistics for mergeable
        scores)."""
        index = InvertedIndex(total_corpus_size=len(self.corpus),
                              global_df=self.global_df())
        index.add_all(self.documents_in(partition))
        return index

    def coverage_without(self, failed: Sequence[int]) -> float:
        """Fraction of the database still reachable when the given
        partitions are down — the 54M -> 51M arithmetic."""
        sizes = self.partition_sizes()
        lost = sum(sizes[partition] for partition in set(failed))
        return 1.0 - lost / len(self.corpus)
