"""Inverted index with tf-idf ranking.

Each search worker holds one of these over its partition of the corpus.
The implementation is real (build, query, merge), scaled down: HotBot's
full-text index over 54M pages becomes an in-memory index over a few
thousand synthetic documents, preserving the retrieval semantics the
collation step depends on (scores are comparable across partitions, so
the front end can merge top-k lists).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.hotbot.documents import Document


@dataclass(frozen=True)
class SearchHit:
    """One result: document id, url, and its relevance score."""

    doc_id: int
    url: str
    score: float


class InvertedIndex:
    """term -> postings, with tf-idf scoring over a document set."""

    def __init__(self, total_corpus_size: int,
                 global_df: "Dict[str, int] | None" = None) -> None:
        if total_corpus_size <= 0:
            raise ValueError("corpus size must be positive")
        #: N used in idf — the *whole* corpus, not this partition, so
        #: scores merge correctly across partitions.
        self.total_corpus_size = total_corpus_size
        #: corpus-wide document frequencies, distributed to every
        #: partition at index-build time.  Without them each partition
        #: would compute its own idf and per-partition scores would not
        #: be comparable during collation.
        self.global_df = global_df
        self._postings: Dict[str, List[Tuple[int, int]]] = {}
        self._doc_urls: Dict[int, str] = {}
        self._doc_lengths: Dict[int, int] = {}

    # -- build --------------------------------------------------------------

    def add(self, document: Document) -> None:
        if document.doc_id in self._doc_urls:
            raise ValueError(f"duplicate document {document.doc_id}")
        self._doc_urls[document.doc_id] = document.url
        self._doc_lengths[document.doc_id] = document.length
        for term, frequency in document.terms:
            self._postings.setdefault(term, []).append(
                (document.doc_id, frequency))

    def add_all(self, documents: Iterable[Document]) -> "InvertedIndex":
        for document in documents:
            self.add(document)
        return self

    def remove(self, doc_id: int) -> bool:
        """Drop one document (used when repartitioning)."""
        if doc_id not in self._doc_urls:
            return False
        del self._doc_urls[doc_id]
        del self._doc_lengths[doc_id]
        for term in list(self._postings):
            filtered = [(d, f) for d, f in self._postings[term]
                        if d != doc_id]
            if filtered:
                self._postings[term] = filtered
            else:
                del self._postings[term]
        return True

    @property
    def n_documents(self) -> int:
        return len(self._doc_urls)

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    def postings_scanned(self, terms: Sequence[str]) -> int:
        """Posting entries a query touches (drives the latency model)."""
        return sum(len(self._postings.get(term, ())) for term in terms)

    # -- query ----------------------------------------------------------------

    def _idf(self, term: str) -> float:
        if self.global_df is not None:
            document_frequency = self.global_df.get(term, 0)
        else:
            document_frequency = len(self._postings.get(term, ()))
        if document_frequency == 0:
            return 0.0
        return math.log(
            1.0 + self.total_corpus_size / document_frequency)

    def query(self, terms: Sequence[str], k: int = 10) -> List[SearchHit]:
        """Top-k documents by tf-idf, ties broken by doc id (stable)."""
        if k <= 0:
            raise ValueError("k must be positive")
        scores: Dict[int, float] = {}
        for term in set(terms):
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for doc_id, frequency in self._postings.get(term, ()):
                tf = 1.0 + math.log(frequency)
                scores[doc_id] = scores.get(doc_id, 0.0) + tf * idf
        best = heapq.nsmallest(
            k, scores.items(), key=lambda item: (-item[1], item[0]))
        return [
            SearchHit(doc_id=doc_id, url=self._doc_urls[doc_id],
                      score=score)
            for doc_id, score in best
        ]


def merge_hits(partials: Iterable[List[SearchHit]],
               k: int = 10) -> List[SearchHit]:
    """Collate per-partition top-k lists into a global top-k.

    This is the front end's aggregation step ("collects search results
    from a number of database partitions and collates the results").
    Scores are comparable because every partition uses the global N in
    its idf.
    """
    everything: List[SearchHit] = []
    for partial in partials:
        everything.extend(partial)
    everything.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return everything[:k]
