"""The HotBot cluster service: scatter-gather search over partitions.

Differences from TranSend, straight from Table 1, are visible in the
code shape: there is no manager and no lottery — the front end sends
every query to *all* workers in parallel and collates; workers are bound
to their nodes (each owns a disk partition); failure management is local
(RAID + fast restart, or the original Inktomi cross-mounting); and the
ACID side is a primary/backup parallel database good for ~400 requests/s
(Section 4.6: "HotBot's ACID database (parallel Informix server) ...
can serve about 400 requests per second").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.component import Component
from repro.hotbot.documents import Corpus
from repro.hotbot.index import InvertedIndex, SearchHit, merge_hits
from repro.hotbot.partition import PartitionMap
from repro.sim.cluster import Cluster
from repro.sim.network import Link
from repro.sim.node import Node, NodeDown


@dataclass
class HotBotConfig:
    """Deployment knobs for a HotBot installation."""

    n_workers: int = 8
    n_docs: int = 2600
    top_k: int = 10
    #: per-query worker cost: fixed + per-posting-scanned.
    query_fixed_s: float = 0.008
    query_per_posting_s: float = 3e-6
    #: front end threads per node ("50-80 threads per node").
    frontend_threads: int = 64
    #: scatter-gather deadline; missing partitions => partial results.
    gather_timeout_s: float = 2.0
    #: "fast-restart" (RAID, partition offline until restart) or
    #: "cross-mount" (original Inktomi: a peer serves the partition).
    failure_mode: str = "fast-restart"
    #: node restart time under fast-restart.
    fast_restart_s: float = 10.0
    #: cross-mounted access is slower (remote disk).
    cross_mount_penalty: float = 2.0
    #: Informix capacity and failover time.
    db_capacity_rps: float = 400.0
    db_failover_s: float = 5.0


@dataclass
class QueryResult:
    """What the front end returns to the user."""

    hits: List[SearchHit]
    coverage: float              # fraction of the database consulted
    partitions_answered: int
    partitions_total: int
    served_by_replica: int = 0
    #: served from the recent-searches cache (Table 1's "integrated
    #: cache of recent searches, for incremental delivery").
    from_cache: bool = False

    @property
    def partial(self) -> bool:
        return self.partitions_answered < self.partitions_total


class InformixModel:
    """The primary/backup ACID database: a serial server with failover.

    ACID data (user profiles, ad-revenue tracking) never degrades to
    approximate answers: during failover, requests *wait*.
    """

    def __init__(self, cluster: Cluster, capacity_rps: float,
                 failover_s: float) -> None:
        self.cluster = cluster
        self.failover_s = failover_s
        self._pipe = Link(cluster.env, "informix",
                          bandwidth_bps=capacity_rps, latency_s=0.0)
        self.available = True
        self.unavailable_until = 0.0
        self.requests = 0
        self.failovers = 0

    def fail_primary(self) -> None:
        """Crash the primary; the backup takes over after failover_s."""
        self.available = False
        self.unavailable_until = self.cluster.env.now + self.failover_s
        self.failovers += 1

    def request(self):
        """Process generator: one profile read + ad-revenue write."""
        env = self.cluster.env
        while not self.available:
            wait = self.unavailable_until - env.now
            if wait <= 0:
                self.available = True
                break
            yield env.timeout(wait)
        self.requests += 1
        yield env.timeout(self._pipe.reserve(1.0))

    def utilization(self) -> float:
        return self._pipe.utilization()


class SearchWorker(Component):
    """One partition's query server, bound to its node."""

    kind = "search-worker"

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 partition: int, index: InvertedIndex,
                 config: HotBotConfig,
                 replica_index: Optional[InvertedIndex] = None,
                 replica_partition: Optional[int] = None) -> None:
        super().__init__(cluster, node, name)
        self.partition = partition
        self.index = index
        self.config = config
        #: cross-mount mode: this worker can also serve a peer's
        #: partition from the shared disk, at a penalty.
        self.replica_index = replica_index
        self.replica_partition = replica_partition
        self.queue = cluster.env.queue()
        self.queries_served = 0
        self.replica_queries_served = 0

    def _start_processes(self) -> None:
        self.spawn(self._service_loop())

    def submit(self, terms: Sequence[str], k: int, reply,
               use_replica: bool = False) -> None:
        """Accept one scatter leg; dead workers swallow it (the front
        end's gather timeout is the failure detector)."""
        if not self.alive:
            return
        self.queue.put_nowait((terms, k, reply, use_replica))

    def _service_loop(self):
        while True:
            terms, k, reply, use_replica = yield self.queue.get()
            index = self.replica_index if use_replica else self.index
            if index is None:
                continue
            scanned = index.postings_scanned(terms)
            work = (self.config.query_fixed_s
                    + self.config.query_per_posting_s * scanned)
            if use_replica:
                work *= self.config.cross_mount_penalty
            try:
                yield from self.node.compute(work)
            except NodeDown:
                return
            hits = index.query(terms, k)
            if use_replica:
                self.replica_queries_served += 1
            else:
                self.queries_served += 1
            delay = self.cluster.network.transfer_delay(64 * len(hits))
            self.spawn(self._deliver(reply, hits, delay))

    def _deliver(self, reply, hits, delay):
        yield self.env.timeout(delay)
        if self.alive and not reply.triggered:
            reply.succeed(hits)

    def _on_crash(self) -> None:
        self.queue.clear()


class HotBot:
    """A HotBot installation: corpus, partitions, workers, front end."""

    def __init__(self, config: Optional[HotBotConfig] = None,
                 seed: int = 1997,
                 node_speeds: Optional[List[float]] = None) -> None:
        self.config = config or HotBotConfig()
        self.cluster = Cluster(seed=seed)
        self.corpus = Corpus(n_docs=self.config.n_docs, seed=seed)
        speeds = node_speeds or [1.0] * self.config.n_workers
        if len(speeds) != self.config.n_workers:
            raise ValueError("node_speeds length must match n_workers")
        rng = self.cluster.streams.stream("partition")
        # "each worker handles a subset of the database proportional to
        # its CPU power"
        self.partition_map = PartitionMap(self.corpus, speeds, rng)
        self.workers: List[SearchWorker] = []
        indexes = [self.partition_map.build_index(partition)
                   for partition in range(self.config.n_workers)]
        for partition, speed in enumerate(speeds):
            node = self.cluster.add_node(f"hb{partition}", speed=speed)
            replica_index = None
            replica_partition = None
            if self.config.failure_mode == "cross-mount":
                # each node can also reach its successor's partition
                replica_partition = (partition + 1) % self.config.n_workers
                replica_index = indexes[replica_partition]
            worker = SearchWorker(
                self.cluster, node, f"search{partition}", partition,
                indexes[partition], self.config,
                replica_index=replica_index,
                replica_partition=replica_partition)
            worker.start()
            self.workers.append(worker)
        db_node = self.cluster.add_node("informix")
        self.database = InformixModel(
            self.cluster, self.config.db_capacity_rps,
            self.config.db_failover_s)
        from repro.hotbot.query_cache import QueryCache
        self.query_cache = QueryCache()
        self._threads = self.cluster.env.queue()
        for index in range(self.config.frontend_threads):
            self._threads.put_nowait(index)
        self.queries = 0
        self.partial_answers = 0
        self.cache_served = 0

    # -- failure injection hooks ----------------------------------------------------

    def crash_worker(self, partition: int,
                     auto_restart: Optional[bool] = None) -> None:
        worker = self.workers[partition]
        worker.node.crash()
        worker.kill()
        restart = (self.config.failure_mode == "fast-restart"
                   if auto_restart is None else auto_restart)
        if restart:
            self.cluster.env.process(self._fast_restart(partition))

    def _fast_restart(self, partition: int):
        """RAID keeps the disk; the node restarts and reloads its
        partition ("fast restart minimizes the impact of node failures")."""
        yield self.cluster.env.timeout(self.config.fast_restart_s)
        old = self.workers[partition]
        old.node.restart()
        replacement = SearchWorker(
            self.cluster, old.node, f"{old.name}.r", partition,
            self.partition_map.build_index(partition), self.config,
            replica_index=old.replica_index,
            replica_partition=old.replica_partition)
        replacement.start()
        self.workers[partition] = replacement

    # -- the query path ------------------------------------------------------------------

    def submit(self, terms: Sequence[str], user_id: str = "anon",
               offset: int = 0):
        """Client entry: returns an event completing with QueryResult.

        ``offset`` pages through results ("incremental delivery"):
        page 2 is ``offset=10`` with the default top_k.
        """
        reply = self.cluster.env.event()
        span = self._ingress_span()
        self.cluster.env.process(
            self._handle(terms, user_id, offset, reply, span))
        return reply

    def _ingress_span(self):
        """Front-end span for one query (HotBot has no FrontEnd
        component; the query path itself is the ingress)."""
        tracer = self.cluster.env.tracer
        if tracer is None:
            return None
        pending = tracer.take_pending()
        if tracer.was_handed_off(pending):
            if pending is None:
                return None
            return pending.child("query", "service",
                                 component="hotbot-fe")
        return tracer.open_trace("query", category="service",
                                 component="hotbot-fe")

    def _handle(self, terms, user_id, offset, reply, span=None):
        try:
            result = yield from self.query(terms, user_id, offset,
                                           trace=span)
        finally:
            if span is not None:
                span.finish()
        if span is not None:
            span.annotate(coverage=round(result.coverage, 4),
                          partial=result.partial,
                          from_cache=result.from_cache)
        if not reply.triggered:
            reply.succeed(result)

    #: service time for a recent-searches cache hit.
    CACHE_HIT_S = 0.003

    def query(self, terms: Sequence[str], user_id: str = "anon",
              offset: int = 0, trace=None):
        """Process generator: the full front-end query path."""
        env = self.cluster.env
        mark = env.now
        thread = yield self._threads.get()
        if trace is not None:
            trace.record("thread-wait", "queueing", mark)
        try:
            # ACID side first: profile + ad tracking
            mark = env.now
            yield from self.database.request()
            if trace is not None:
                trace.record("db-request", "service", mark,
                             component="informix")
            # recent-searches cache: repeated queries and later result
            # pages never touch the partitions
            page = self.query_cache.get_page(terms, offset,
                                             self.config.top_k)
            if page is not None:
                mark = env.now
                yield env.timeout(self.CACHE_HIT_S)
                if trace is not None:
                    trace.record("query-cache-hit", "cache", mark)
                self.queries += 1
                self.cache_served += 1
                return QueryResult(
                    hits=page,
                    coverage=1.0,
                    partitions_answered=self.config.n_workers,
                    partitions_total=self.config.n_workers,
                    from_cache=True,
                )
            # scatter to every reachable partition; fetch deep so the
            # cache can serve later pages incrementally
            fetch_k = max(self.config.top_k + offset,
                          self.query_cache.depth)
            legs = []  # (partition, event, used_replica)
            replica_legs = 0
            for partition in range(self.config.n_workers):
                leg = self._scatter_leg(partition, terms, fetch_k)
                if leg is None:
                    continue
                if leg[2]:
                    replica_legs += 1
                if trace is not None:
                    # one span per scatter leg, closed by the reply
                    # event's own completion callback (observation
                    # only: appending a callback perturbs nothing)
                    leg_span = trace.child(
                        f"search:p{partition}", "service",
                        component=f"search{partition}")
                    leg_span.annotate(replica=leg[2])
                    leg[1].callbacks.append(
                        lambda _event, _span=leg_span: _span.finish())
                legs.append(leg)
            if not legs:
                self.queries += 1
                self.partial_answers += 1
                return QueryResult([], 0.0, 0, self.config.n_workers)
            events = [event for _, event, _ in legs]
            timer = env.timeout(self.config.gather_timeout_s)
            yield env.any_of([env.all_of(events), timer])
            answered_partials = [
                event.value for event in events
                if event.processed and event.ok
            ]
            answered_partitions = [
                partition for partition, event, _ in legs
                if event.processed and event.ok
            ]
            coverage = self.partition_map.coverage_without([
                partition for partition in range(self.config.n_workers)
                if partition not in answered_partitions
            ])
            deep_hits = merge_hits(answered_partials, fetch_k)
            self.queries += 1
            result = QueryResult(
                hits=deep_hits[offset: offset + self.config.top_k],
                coverage=coverage,
                partitions_answered=len(answered_partials),
                partitions_total=self.config.n_workers,
                served_by_replica=replica_legs,
            )
            if result.partial:
                self.partial_answers += 1
            else:
                # cache only complete answers so paging never silently
                # serves a degraded result set
                self.query_cache.store(terms, deep_hits)
            return result
        finally:
            self._threads.put_nowait(thread)

    def _scatter_leg(self, partition: int, terms: Sequence[str],
                     k: int):
        """One (partition, event, used_replica) leg, or None if the
        partition is unreachable."""
        env = self.cluster.env
        worker = self.workers[partition]
        if worker.alive:
            reply = env.event()
            self.cluster.network.transfer_delay(128)  # scatter bytes
            worker.submit(terms, k, reply)
            return partition, reply, False
        if self.config.failure_mode == "cross-mount":
            # "there were always multiple nodes that could reach any
            # database partition"
            for peer in self.workers:
                if peer.alive and peer.replica_partition == partition:
                    reply = env.event()
                    peer.submit(terms, k, reply, use_replica=True)
                    return partition, reply, True
        return None

    def run(self, until=None):
        return self.cluster.run(until)

    def run_until(self, event):
        return self.cluster.env.run(until=event)
