"""Synthetic Web corpus for the search engine.

Stands in for HotBot's 54-million-page crawl: documents are bags of
Zipf-distributed vocabulary terms, so posting-list lengths, score
distributions, and top-k behaviour look like text retrieval rather than
uniform noise.  Everything derives from the seed — the same corpus can
be rebuilt identically on every "node".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.sim.rng import RandomStreams, Stream


@dataclass(frozen=True)
class Document:
    """One indexed page: id, url, and its term-frequency vector."""

    doc_id: int
    url: str
    terms: Tuple[Tuple[str, int], ...]   # (term, frequency), sorted

    @property
    def length(self) -> int:
        return sum(freq for _, freq in self.terms)

    def tf(self, term: str) -> int:
        for candidate, freq in self.terms:
            if candidate == term:
                return freq
        return 0


class Corpus:
    """A deterministic collection of synthetic documents."""

    def __init__(self, n_docs: int = 2000, vocabulary_size: int = 2000,
                 seed: int = 1997, mean_length: int = 80,
                 zipf_alpha: float = 1.05) -> None:
        if n_docs <= 0 or vocabulary_size <= 0:
            raise ValueError("corpus dimensions must be positive")
        self.n_docs = n_docs
        self.vocabulary_size = vocabulary_size
        self.seed = seed
        rng = RandomStreams(seed).stream("corpus")
        self.documents: List[Document] = [
            self._make_document(rng, doc_id, mean_length, zipf_alpha)
            for doc_id in range(n_docs)
        ]

    def _make_document(self, rng: Stream, doc_id: int, mean_length: int,
                       zipf_alpha: float) -> Document:
        length = max(5, int(rng.lognormal_mean(mean_length, 0.6)))
        counts: Dict[str, int] = {}
        for _ in range(length):
            rank = rng.zipf_rank(self.vocabulary_size, zipf_alpha)
            term = f"w{rank}"
            counts[term] = counts.get(term, 0) + 1
        terms = tuple(sorted(counts.items()))
        return Document(
            doc_id=doc_id,
            url=f"http://crawl.example/page{doc_id}",
            terms=terms,
        )

    def __len__(self) -> int:
        return self.n_docs

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def vocabulary_sample(self, rng: Stream, n: int,
                          alpha: float = 1.05) -> List[str]:
        """Query terms drawn with the same skew users exhibit."""
        return [f"w{rng.zipf_rank(self.vocabulary_size, alpha)}"
                for _ in range(n)]
