"""HotBot's integrated cache of recent searches (Table 1).

"Caching: integrated cache of recent searches, for incremental
delivery."  Search engines answer the same hot queries over and over,
and a user paging to results 11-20 re-issues the query they just ran;
HotBot therefore cached *deep* result lists keyed by the normalized
query and served successive pages — incremental delivery — from that
cache without touching the partitions again.

The cached result lists are BASE soft state: a lost cache only costs
recomputation, and entries may be slightly stale with respect to index
updates (eventual consistency is exactly the paper's point about search
results).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cache.lru import LRUCache
from repro.hotbot.index import SearchHit

#: how deep a result list the cache stores per query: one scatter-gather
#: can serve this many pages of incremental delivery.
DEFAULT_CACHE_DEPTH = 100
#: nominal bytes per cached hit, for the LRU byte budget.
HIT_BYTES = 96


def normalize_query(terms: Sequence[str]) -> Tuple[str, ...]:
    """Canonical cache key: lowercase, de-duplicated, sorted terms."""
    return tuple(sorted({term.lower() for term in terms}))


class QueryCache:
    """LRU of deep result lists keyed by normalized query."""

    def __init__(self, capacity_bytes: int = 4_000_000,
                 depth: int = DEFAULT_CACHE_DEPTH) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self._store = LRUCache(capacity_bytes)
        self.depth = depth
        self.incremental_hits = 0

    def get_page(self, terms: Sequence[str], offset: int,
                 k: int) -> Optional[List[SearchHit]]:
        """Results [offset, offset+k) if the cached list covers them.

        A cached list covers the page when it is deep enough *or* it is
        the complete answer (shorter than the cache depth means the
        query simply has no more results).
        """
        if offset < 0 or k < 1:
            raise ValueError("offset must be >= 0 and k >= 1")
        hits = self._store.get(normalize_query(terms))
        if hits is None:
            return None
        exhausted = len(hits) < self.depth
        if len(hits) >= offset + k or exhausted:
            if offset > 0:
                self.incremental_hits += 1
            return hits[offset: offset + k]
        return None  # cached list too shallow for this page

    def store(self, terms: Sequence[str],
              hits: List[SearchHit]) -> None:
        key = normalize_query(terms)
        size = max(HIT_BYTES, HIT_BYTES * len(hits))
        self._store.put(key, list(hits), size)

    def invalidate(self, terms: Sequence[str]) -> bool:
        return self._store.invalidate(normalize_query(terms))

    def flush(self) -> int:
        """BASE: recent-search results are disposable."""
        return self._store.flush()

    @property
    def hit_rate(self) -> float:
        return self._store.hit_rate

    @property
    def entries(self) -> int:
        return len(self._store)
