"""HotBot: the Inktomi search engine (Sections 1.1, 3.2).

HotBot is the paper's second validating service — an *aggregation*
server: "the HotBot search engine collects search results from a number
of database partitions and collates the results."  It predates the SNS
framework and differs from TranSend in exactly the ways Table 1 lists:

* **static** load balancing by read-only data partitioning (every query
  goes to all workers in parallel), not dynamic queue-based balancing;
* workers **bound to their nodes** (each owns a disk-resident partition)
  rather than interchangeable;
* failure management **distributed to each node**: RAID absorbs disk
  failures, fast restart bounds node failures, and losing a node just
  shrinks the database ("with 26 nodes the loss of one machine results
  in the database dropping from 54M to about 51M documents");
* a real parallel ACID database (Informix) for profiles and ad-revenue
  tracking, good for about 400 requests/second.

This package provides a real (small-scale) corpus + inverted index, the
partitioned cluster search service, and the failure models for both the
original cross-mounted design and the RAID/fast-restart design.
"""

from repro.hotbot.documents import Corpus, Document
from repro.hotbot.index import InvertedIndex, SearchHit
from repro.hotbot.partition import PartitionMap
from repro.hotbot.service import (
    HotBot,
    HotBotConfig,
    InformixModel,
    QueryResult,
)

__all__ = [
    "Corpus",
    "Document",
    "HotBot",
    "HotBotConfig",
    "InformixModel",
    "InvertedIndex",
    "PartitionMap",
    "QueryResult",
    "SearchHit",
]
