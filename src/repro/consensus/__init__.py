"""Consensus-replicated manager: a multi-Paxos core under the SNS
manager, trading the paper's restart-on-failure soft state for a
3-replica replicated log that survives SAN partitions.

The paper keeps the load-balancing manager centralized and soft
(Section 3.1.3): peers restart it, and its state rebuilds from beacons
and re-registrations.  That design is simple and fast — and it splits
its brain the moment the SAN partitions, because *both* sides can run a
manager that believes it is alone.  This package holds the alternative
the paper's Section 6 hints at ("the manager is a single logical point
of failure"): the same manager API, but worker membership and the load
table are entries in a majority-replicated log, and only the replica
holding the current leader lease may beacon hints or accept work.

Layers, bottom up:

* :mod:`repro.consensus.paxos` — single-decree Paxos roles (proposer /
  acceptor / learner with ballot numbers), pure state machines with no
  simulator dependency.
* :mod:`repro.consensus.log` — the multi-Paxos composition: one
  acceptor/learner per log slot behind a shared promised ballot, with
  in-order application.
* :mod:`repro.consensus.replica` — :class:`ManagerReplica`, a
  :class:`~repro.core.manager.Manager` subclass that speaks Paxos over
  the SAN multicast, plus :class:`ReplicatedManagerGroup`, the
  three-replica facade the fabric boots.
"""

from repro.consensus.log import AcceptorLog, LearnerLog
from repro.consensus.paxos import (
    Accepted,
    AcceptRequest,
    Acceptor,
    Chosen,
    Learner,
    Prepare,
    Promise,
    Proposer,
    SyncRequest,
    ballot_owner,
    ballot_round,
    make_ballot,
)
from repro.consensus.replica import ManagerReplica, ReplicatedManagerGroup

__all__ = [
    "Accepted",
    "AcceptRequest",
    "Acceptor",
    "AcceptorLog",
    "Chosen",
    "Learner",
    "LearnerLog",
    "ManagerReplica",
    "Prepare",
    "Promise",
    "Proposer",
    "ReplicatedManagerGroup",
    "SyncRequest",
    "ballot_owner",
    "ballot_round",
    "make_ballot",
]
