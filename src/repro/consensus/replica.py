"""The consensus-replicated manager: three replicas, one lease.

:class:`ManagerReplica` subclasses the soft-state
:class:`~repro.core.manager.Manager`, so workers, front ends, the
supervisor, and the chaos invariants see the exact same API — but the
decisions that must not split across a partition (worker membership,
the load table, leadership itself) are entries in a multi-Paxos
replicated log spoken over the SAN multicast
(:data:`~repro.core.messages.CONSENSUS_GROUP`).  The transport is the
same unreliable datagram fabric the beacons ride; the *protocol*
supplies the reliability, which is why the Paxos safety test can reuse
the lossy-SAN fault knobs directly.

Leadership and the lease
------------------------

Ballots encode ``round * n + replica_index``, so they are totally
ordered, owner-disjoint, and monotonic across failovers — which lets
the current leader ballot double as the beacon ``incarnation`` the SNS
stubs already understand.  The leader renews a **lease** by committing
no-op "tick" entries (which also snapshot the load table): each chosen
entry at its own ballot extends ``lease_expires_at`` by
``consensus_lease_s``.  A leader that cannot commit — it is dead, or on
the minority side of a partition — watches its lease lapse and simply
stops: no beacons, no registrations, no dispatch hints.  A follower
stands for election only after observing ``lease + election_timeout +
stagger * index`` seconds of log silence; since its view of the log is
never *older* than the deposed leader's last commit, the old lease has
provably lapsed before a new leader can be chosen.  Under the
simulator's single clock this gives at most one active leader at any
instant, hence zero wrong-decision dispatch hints by construction.
Election timeouts are deterministically staggered by replica index
instead of randomized, so campaigns never collide and runs stay
byte-identical at any fan-out.

Crash-restart keeps each replica's acceptor/learner state on the
object (the moral equivalent of Paxos's stable storage); only the soft
manager state (live registrations, endpoints) evaporates, exactly as
in the paper's restart story.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.consensus.log import AcceptorLog, LearnerLog
from repro.consensus.paxos import (
    Accepted,
    AcceptRequest,
    Chosen,
    Prepare,
    Promise,
    SyncRequest,
    ballot_owner,
    make_ballot,
)
from repro.core.config import SNSConfig
from repro.core.manager import Manager
from repro.core.messages import (
    BEACON_BYTES,
    BEACON_GROUP,
    CONSENSUS_BYTES,
    CONSENSUS_GROUP,
    MONITOR_GROUP,
    ManagerBeacon,
    MonitorReport,
    RegisterWorker,
    WorkerAdvert,
)
from repro.sim.cluster import Cluster
from repro.sim.node import Node
from repro.sim.transport import Endpoint

#: Chosen-rebroadcast window per SyncRequest (bounds catch-up traffic).
SYNC_WINDOW = 64
#: Seconds to re-fork a crashed replica (same cost as a worker spawn).
REPLICA_RESTART_S = 1.0


class ManagerReplica(Manager):
    """One of the three manager replicas.  All replicas run acceptor
    and learner roles for every log slot; the lease holder additionally
    plays proposer, beacons, and serves the manager API."""

    def __init__(self, cluster: Cluster, node: Node, name: str,
                 config: SNSConfig, fabric: Any, index: int,
                 group: "ReplicatedManagerGroup") -> None:
        super().__init__(cluster, node, name, config, fabric,
                         incarnation=0)
        self.index = index
        self.group = group
        self.n_replicas = config.consensus_replicas
        self.quorum = self.n_replicas // 2 + 1
        # -- paxos state (survives crash-restart: "stable storage") ----
        self.acceptor_log = AcceptorLog()
        self.learner_log = LearnerLog(self.quorum, self._apply)
        #: my current campaign/leadership ballot (-1: never campaigned).
        self.ballot = -1
        #: ballot of the highest-ballot chosen entry seen (the regime).
        self.leader_ballot = -1
        # -- replicated state machine (identical on every replica) -----
        #: committed worker membership: name -> registration facts.
        self.member_workers: Dict[str, Dict[str, Any]] = {}
        #: committed load table: name -> queue_avg snapshot.
        self.load_table: Dict[str, float] = {}
        # -- volatile leadership state ---------------------------------
        self.last_chosen_at = self.env.now
        self.lease_expires_at = float("-inf")
        self._campaigning = False
        self._campaign_started_at = 0.0
        self._campaign_from = 0
        self._promises: Dict[str, Dict[int, Tuple[int, Any]]] = {}
        self._inflight: Dict[int, Any] = {}
        self._next_slot = 0
        self._max_slot_seen = -1
        self._took_over_at = self.env.now
        #: committed members with no live registration, and since when
        #: (the new-leader grace before proposing their expiry).
        self._member_unseen_since: Dict[str, float] = {}
        self._subscription = None
        # counters
        self.campaigns_started = 0
        self.entries_proposed = 0

    # -- role predicates -----------------------------------------------------

    def is_active_leader(self) -> bool:
        """Leader *with a live lease*: the only state in which this
        replica beacons, registers, or hands out dispatch hints."""
        return (self.alive and self.ballot >= 0
                and self.leader_ballot == self.ballot
                and ballot_owner(self.ballot, self.n_replicas)
                == self.index
                and self.env.now < self.lease_expires_at)

    # -- processes ------------------------------------------------------------

    def _start_processes(self) -> None:
        self.last_chosen_at = self.env.now
        self._subscription = self.cluster.multicast.group(
            CONSENSUS_GROUP).subscribe(self.name)
        self.spawn(self._consensus_loop())
        self.spawn(self._steer_loop())
        self.every(self.config.beacon_interval_s, self._beacon_tick,
                   first_delay=0)
        self.every(self.config.beacon_interval_s, self._policy_tick)
        if self.index == 0 and self.leader_ballot < 0:
            # bootstrap: replica 0 campaigns immediately so the fabric
            # has a leader before the first requests arrive
            self._start_campaign()

    def _publish(self, message: Any) -> None:
        self.cluster.multicast.group(CONSENSUS_GROUP).publish(
            message, size_bytes=CONSENSUS_BYTES, sender=self.name)

    # -- the consensus message pump ------------------------------------------

    def _consensus_loop(self):
        subscription = self._subscription
        while True:
            message = yield subscription.get()
            if not self.alive:
                return
            if isinstance(message, Prepare):
                self._on_prepare(message)
            elif isinstance(message, Promise):
                self._on_promise(message)
            elif isinstance(message, AcceptRequest):
                self._on_accept_request(message)
            elif isinstance(message, Accepted):
                self._on_accepted(message)
            elif isinstance(message, Chosen):
                self._on_chosen_msg(message)
            elif isinstance(message, SyncRequest):
                self._on_sync_request(message)

    def _on_prepare(self, message: Prepare) -> None:
        if (message.sender != self.name and self.leader_ballot >= 0
                and message.ballot > self.leader_ballot
                and self.env.now - self.last_chosen_at
                < self.config.consensus_lease_s):
            # Leader stickiness (the PreVote/CheckQuorum idea): this
            # acceptor is still hearing a live leader's commits, so it
            # refuses to help depose it.  A candidate healing back from
            # the minority side therefore cannot steal leadership; it
            # catches up instead and abandons its campaign.
            return
        ok, accepted = self.acceptor_log.on_prepare(
            message.ballot, message.slot)
        if ok:
            self._publish(Promise(
                slot=message.slot, ballot=message.ballot,
                sender=self.name, to=message.sender, accepted=accepted))

    def _on_promise(self, message: Promise) -> None:
        if (message.to != self.name or not self._campaigning
                or message.ballot != self.ballot):
            return
        self._promises[message.sender] = dict(message.accepted)
        if len(self._promises) < self.quorum:
            return
        # quorum: merge the highest-ballot acceptance per slot (the
        # single-decree proposer rule, applied slot-wise)
        merged: Dict[int, Tuple[int, Any]] = {}
        for accepted in self._promises.values():
            for slot, (acc_ballot, acc_value) in accepted.items():
                best = merged.get(slot)
                if best is None or acc_ballot > best[0]:
                    merged[slot] = (acc_ballot, acc_value)
        self._campaigning = False
        top = max(merged) if merged else self._campaign_from - 1
        self._next_slot = max(self._campaign_from, top + 1,
                              self.learner_log.first_unchosen())
        # re-drive every undecided slot at my ballot: discovered values
        # verbatim, gaps as no-ops (they may have been chosen elsewhere)
        for slot in range(self._campaign_from, self._next_slot):
            if self.learner_log.is_chosen(slot):
                continue
            value = merged[slot][1] if slot in merged else ("gap",)
            self._drive(slot, value)
        # my first fresh entry: when chosen, leader_ballot becomes my
        # ballot and the lease starts — that commit IS the election win
        self._propose(("lead", self.name))

    def _on_accept_request(self, message: AcceptRequest) -> None:
        if self.acceptor_log.on_accept(message.slot, message.ballot,
                                       message.value):
            self._max_slot_seen = max(self._max_slot_seen, message.slot)
            self._publish(Accepted(
                slot=message.slot, ballot=message.ballot,
                value=message.value, sender=self.name))

    def _on_accepted(self, message: Accepted) -> None:
        if self.learner_log.is_chosen(message.slot):
            return
        self.learner_log.on_accepted(
            message.slot, message.sender, message.ballot, message.value)
        if self.learner_log.is_chosen(message.slot):
            self._note_chosen_slot(message.slot)

    def _on_chosen_msg(self, message: Chosen) -> None:
        if self.learner_log.is_chosen(message.slot):
            return
        self.learner_log.on_chosen(
            message.slot, message.ballot, message.value)
        self._note_chosen_slot(message.slot)

    def _on_sync_request(self, message: SyncRequest) -> None:
        if not self.is_active_leader() or message.sender == self.name:
            return
        first = message.first_unchosen
        for slot in range(first, first + SYNC_WINDOW):
            entry = self.learner_log.chosen.get(slot)
            if entry is not None:
                self._publish(Chosen(slot=slot, ballot=entry[0],
                                     value=entry[1], sender=self.name))

    def _note_chosen_slot(self, slot: int) -> None:
        """Bookkeeping for one newly chosen slot (whether or not it is
        applicable yet): regime tracking, lease renewal, campaign
        abandonment, and the leader's Chosen rebroadcast."""
        now = self.env.now
        ballot, value = self.learner_log.chosen[slot]
        self._max_slot_seen = max(self._max_slot_seen, slot)
        mine = ballot_owner(ballot, self.n_replicas) == self.index
        if ballot > self.leader_ballot:
            # regime change: account the leaderless gap first
            stalled = max(0.0, now - (self.last_chosen_at
                                      + self.config.consensus_lease_s))
            self.leader_ballot = ballot
            self.group.note_regime(ballot, now, stalled)
            if mine:
                self._took_over_at = now
                self.incarnation = ballot
                self._member_unseen_since.clear()
        if mine and ballot == self.ballot:
            self.lease_expires_at = max(
                self.lease_expires_at,
                now + self.config.consensus_lease_s)
        if self._campaigning and ballot != self.ballot:
            # another regime is demonstrably live: stand down rather
            # than duel (my silence evidence just expired)
            self._campaigning = False
        self._inflight.pop(slot, None)
        if self.is_active_leader():
            self._publish(Chosen(slot=slot, ballot=ballot, value=value,
                                 sender=self.name))
        self.last_chosen_at = now

    # -- the replicated state machine ----------------------------------------

    def _apply(self, slot: int, value: Tuple) -> None:
        kind = value[0]
        if kind == "reg":
            _, name, worker_type, node_name, stub = value
            self.member_workers[name] = {
                "worker_type": worker_type,
                "node_name": node_name,
                "stub": stub,
            }
            self._member_unseen_since.pop(name, None)
        elif kind == "exp":
            self.member_workers.pop(value[1], None)
            self.load_table.pop(value[1], None)
            self._member_unseen_since.pop(value[1], None)
        elif kind == "tick":
            self.load_table.update(dict(value[1]))
        # "lead" and "gap" entries carry no state-machine effect

    # -- campaigning and steering ---------------------------------------------

    def _start_campaign(self) -> None:
        floor = max(self.acceptor_log.promised, self.leader_ballot,
                    self.ballot)
        round_number = floor // self.n_replicas + 1
        self.ballot = make_ballot(round_number, self.index,
                                  self.n_replicas)
        self._campaigning = True
        self._campaign_started_at = self.env.now
        self._campaign_from = self.learner_log.applied_through + 1
        self._promises = {}
        self._inflight.clear()
        self.campaigns_started += 1
        self._publish(Prepare(slot=self._campaign_from,
                              ballot=self.ballot, sender=self.name))

    def _drive(self, slot: int, value: Any) -> None:
        self._inflight[slot] = value
        self._publish(AcceptRequest(slot=slot, ballot=self.ballot,
                                    value=value, sender=self.name))

    def _propose(self, value: Any) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self.entries_proposed += 1
        self._drive(slot, value)

    def _loads_snapshot(self) -> Tuple:
        return tuple(sorted(
            (name, round(info.queue_avg, 3))
            for name, info in self.workers.items()))

    def _steer_loop(self):
        config = self.config
        while True:
            yield self.env.timeout(config.consensus_tick_s)
            now = self.env.now
            if self.is_active_leader():
                # retransmit anything undecided, then renew the lease
                # with a tick entry snapshotting the load table
                for slot in sorted(self._inflight):
                    self._drive(slot, self._inflight[slot])
                self._propose(("tick", self._loads_snapshot()))
                continue
            if self._campaigning:
                if now - self._campaign_started_at \
                        > config.consensus_election_timeout_s:
                    self._start_campaign()   # next round, same owner
                else:
                    self._publish(Prepare(slot=self._campaign_from,
                                          ballot=self.ballot,
                                          sender=self.name))
                continue
            if self._inflight:
                # leader-elect: accepts outstanding, keep pushing
                for slot in sorted(self._inflight):
                    self._drive(slot, self._inflight[slot])
            lapse = now - self.last_chosen_at
            threshold = (config.consensus_lease_s
                         + config.consensus_election_timeout_s
                         + config.consensus_election_stagger_s
                         * self.index)
            if lapse > threshold:
                self._start_campaign()
            elif self.learner_log.first_unchosen() <= self._max_slot_seen:
                # I have gaps: ask the leader for Chosen rebroadcasts
                self._publish(SyncRequest(
                    first_unchosen=self.learner_log.first_unchosen(),
                    sender=self.name))

    # -- the manager API, gated on the lease ----------------------------------

    def _beacon_tick(self) -> None:
        if not self.is_active_leader():
            return
        beacon = ManagerBeacon(
            manager_id=self.name,
            incarnation=self.ballot,
            manager=self,
            sent_at=self.env.now,
            adverts=self._build_adverts(),
            lease_until=self.lease_expires_at,
        )
        self.cluster.multicast.group(BEACON_GROUP).publish(
            beacon, size_bytes=BEACON_BYTES, sender=self.name)
        self.cluster.multicast.group(MONITOR_GROUP).publish(MonitorReport(
            component=self.name,
            kind="manager",
            sent_at=self.env.now,
            payload={
                "workers": len(self.workers),
                "frontends": len(self.frontends),
                "incarnation": self.ballot,
                "role": "leader",
            },
        ), sender=self.name)
        self.beacons_sent += 1

    def _policy_tick(self) -> None:
        if not self.is_active_leader():
            return
        self._expire_silent_workers()
        self._expire_unseen_members()
        self._spawn_check()
        self._reap_check()

    def _build_adverts(self) -> Dict[str, WorkerAdvert]:
        """Hints from committed membership joined with live reports.

        A freshly elected leader has the log's membership and load
        table before any worker re-registers, so its very first beacon
        carries useful hints (the "fast path").  Workers on nodes the
        leader cannot currently reach are withheld: routing to them
        would be a minority-view decision.
        """
        partitions = self.cluster.network.partitions
        adverts: Dict[str, WorkerAdvert] = {}
        for name in sorted(set(self.workers) | set(self.member_workers)):
            info = self.workers.get(name)
            member = self.member_workers.get(name, {})
            node_name = (info.node_name if info is not None
                         else member["node_name"])
            if partitions is not None and not partitions.node_reachable(
                    self.node.name, node_name):
                continue
            stub = info.stub if info is not None else member["stub"]
            if stub is None or not stub.alive:
                continue
            adverts[name] = WorkerAdvert(
                worker_name=name,
                worker_type=(info.worker_type if info is not None
                             else member["worker_type"]),
                node_name=node_name,
                stub=stub,
                queue_avg=(info.queue_avg if info is not None
                           else self.load_table.get(name, 0.0)),
                last_report_at=(info.last_report_at if info is not None
                                else self._took_over_at),
                service_ewma_s=(info.service_ewma_s
                                if info is not None else 0.0),
            )
        return adverts

    def accept_worker(self, registration: RegisterWorker,
                      endpoint: Endpoint) -> bool:
        """Registration = a log entry.  Only the lease holder accepts;
        the live connection serves reports immediately, while the
        membership fact replicates underneath."""
        if not self.is_active_leader():
            return False
        if not super().accept_worker(registration, endpoint):
            return False
        if registration.worker_name not in self.member_workers:
            self._propose(("reg", registration.worker_name,
                           registration.worker_type,
                           registration.node_name, registration.stub))
        return True

    def accept_frontend(self, registration, endpoint) -> bool:
        if not self.is_active_leader():
            return False
        return super().accept_frontend(registration, endpoint)

    def request_worker(self, worker_type: str):
        if not self.is_active_leader():
            return None
        return super().request_worker(worker_type)

    # -- membership departures become log entries -----------------------------

    def _propose_expiry(self, names) -> None:
        if not self.is_active_leader():
            return
        for name in sorted(names):
            if name in self.member_workers:
                self._propose(("exp", name))

    def _worker_died(self, info) -> None:
        before = set(self.workers)
        super()._worker_died(info)
        self._propose_expiry(before - set(self.workers))

    def _expire_silent_workers(self) -> None:
        before = set(self.workers)
        super()._expire_silent_workers()
        self._propose_expiry(before - set(self.workers))

    def _expire_unseen_members(self) -> None:
        """Committed members with no live registration: give them one
        worker-timeout to re-register with this leader (they will, on
        its first beacon, if they survived), then expire them from the
        log too."""
        now = self.env.now
        expired = []
        for name in self.member_workers:
            if name in self.workers:
                self._member_unseen_since.pop(name, None)
                continue
            since = self._member_unseen_since.setdefault(name, now)
            if now - since > self.config.worker_timeout_s:
                expired.append(name)
        self._propose_expiry(expired)

    def _reap_one(self, infos) -> None:
        before = set(self.workers)
        super()._reap_one(infos)
        self._propose_expiry(before - set(self.workers))

    # -- crash ----------------------------------------------------------------

    def _on_crash(self) -> None:
        super()._on_crash()
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        # volatile proposer state dies with the process; the acceptor
        # and learner logs survive (stable storage)
        self._campaigning = False
        self._promises = {}
        self._inflight.clear()
        self.lease_expires_at = float("-inf")


class ReplicatedManagerGroup:
    """The three-replica facade the fabric boots in consensus mode.

    Owns group-level telemetry (regimes, lease handoffs, minority-stall
    seconds), keeps ``fabric.manager`` pointing at the current leader,
    and supervises replica crash-restart (a dead replica rejoins on its
    node after :data:`REPLICA_RESTART_S`, acceptor state intact)."""

    def __init__(self, cluster: Cluster, config: SNSConfig, fabric: Any,
                 nodes: List[Node]) -> None:
        if len(nodes) != config.consensus_replicas:
            raise ValueError("need one node per replica")
        if len(set(node.name for node in nodes)) != len(nodes):
            raise ValueError("replicas must sit on distinct nodes")
        self.cluster = cluster
        self.config = config
        self.fabric = fabric
        self.replicas: List[ManagerReplica] = [
            ManagerReplica(cluster, node, f"manager:r{index}", config,
                           fabric, index, self)
            for index, node in enumerate(nodes)
        ]
        #: leadership regimes in ballot order:
        #: ``{"ballot", "leader", "at", "stalled_s"}``.
        self.regimes: List[Dict[str, Any]] = []
        self.minority_stall_s = 0.0
        self._restarts_pending: set = set()

    def start(self) -> "ReplicatedManagerGroup":
        for replica in self.replicas:
            replica.start()
        self.cluster.env.process(self._supervise())
        return self

    # -- telemetry ------------------------------------------------------------

    def note_regime(self, ballot: int, at: float,
                    stalled_s: float) -> None:
        """First replica to learn a new leadership ballot reports it."""
        if self.regimes and self.regimes[-1]["ballot"] >= ballot:
            return
        owner = ballot_owner(ballot, self.config.consensus_replicas)
        leader = self.replicas[owner]
        stalled = stalled_s if self.regimes else 0.0   # bootstrap gap
        self.regimes.append({
            "ballot": ballot,
            "leader": leader.name,
            "at": round(at, 3),
            "stalled_s": round(stalled, 3),
        })
        self.minority_stall_s += stalled
        self.fabric.manager = leader

    @property
    def leader(self) -> Optional[ManagerReplica]:
        """The replica currently holding the lease, if any."""
        for replica in self.replicas:
            if replica.is_active_leader():
                return replica
        return None

    def alive_replicas(self) -> List[ManagerReplica]:
        return [replica for replica in self.replicas if replica.alive]

    def stats(self) -> Dict[str, Any]:
        """The chaos report's ``consensus`` section (plain data only)."""
        log_length = max((len(replica.learner_log.chosen)
                          for replica in self.replicas), default=0)
        return {
            "replicas": len(self.replicas),
            "elections": len(self.regimes),
            "lease_handoffs": max(0, len(self.regimes) - 1),
            "max_ballot": max((r["ballot"] for r in self.regimes),
                              default=-1),
            "log_length": log_length,
            "campaigns": sum(replica.campaigns_started
                             for replica in self.replicas),
            "minority_stall_s": round(self.minority_stall_s, 3),
            "regimes": [dict(regime) for regime in self.regimes],
        }

    def safety_violations(self) -> List[str]:
        """Cross-replica agreement: the Paxos safety invariant.

        Every slot chosen by more than one replica must carry the same
        value on all of them (ballots may differ only in that a slot is
        never chosen at two ballots with different values)."""
        problems: List[str] = []
        by_slot: Dict[int, Dict[str, Tuple[int, Any]]] = {}
        for replica in self.replicas:
            for slot, entry in replica.learner_log.chosen.items():
                by_slot.setdefault(slot, {})[replica.name] = entry
        for slot in sorted(by_slot):
            values = {repr(entry[1]) for entry
                      in by_slot[slot].values()}
            if len(values) > 1:
                problems.append(
                    f"slot {slot} chose {len(values)} distinct values: "
                    + "; ".join(
                        f"{name}={entry[1]!r}@b{entry[0]}"
                        for name, entry in sorted(by_slot[slot].items())))
        return problems

    # -- replica supervision --------------------------------------------------

    def _supervise(self):
        """Restart dead replicas on their own (up) node: the group is
        its own process peer, like the paper's mutual restarts."""
        env = self.cluster.env
        while True:
            yield env.timeout(1.0)
            for replica in self.replicas:
                if (replica.alive or not replica.node.up
                        or replica.name in self._restarts_pending):
                    continue
                self._restarts_pending.add(replica.name)
                env.process(self._restart(replica))

    def _restart(self, replica: ManagerReplica):
        env = self.cluster.env
        try:
            yield env.timeout(REPLICA_RESTART_S)
            if not replica.alive and replica.node.up:
                replica.start()
        finally:
            self._restarts_pending.discard(replica.name)
