"""Multi-Paxos: single-decree instances composed into a replicated log.

The composition is the standard one (Chandra et al., "Paxos Made
Live"): a leader runs phase 1 *once* for all slots at or above its
first unchosen slot — the acceptor side holds a single ``promised``
ballot shared by every slot — and then streams phase-2 ``accept``s, one
per log entry, until deposed.  Each slot still has its own
single-decree :class:`~repro.consensus.paxos.Acceptor` and
:class:`~repro.consensus.paxos.Learner`, so the per-decree safety
argument is untouched; the shared promise is only an optimization that
lets a stable leader skip phase 1.

Application is strictly in slot order: :class:`LearnerLog` sits on
chosen values until the prefix below them is complete, which is what
makes the replicated state machine deterministic across replicas that
learned entries in different orders.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.paxos import Acceptor, Learner

__all__ = ["AcceptorLog", "LearnerLog"]


class AcceptorLog:
    """The acceptor role across every slot of the log."""

    def __init__(self) -> None:
        #: the multi-Paxos shared promise: one ballot covers all slots.
        self.promised: int = -1
        self._slots: Dict[int, Acceptor] = {}

    def _slot(self, slot: int) -> Acceptor:
        acceptor = self._slots.get(slot)
        if acceptor is None:
            acceptor = Acceptor()
            # a fresh slot inherits the log-wide promise
            acceptor.promised = self.promised
            self._slots[slot] = acceptor
        return acceptor

    def on_prepare(self, ballot: int, from_slot: int
                   ) -> Tuple[bool, Dict[int, Tuple[int, Any]]]:
        """Handle a bulk prepare for all slots >= ``from_slot``.

        Returns ``(promised, accepted)`` where ``accepted`` maps each
        already-accepted slot at or above ``from_slot`` to its
        ``(ballot, value)`` — the payload of the Promise.
        """
        if ballot < self.promised:
            return False, {}
        self.promised = ballot
        accepted: Dict[int, Tuple[int, Any]] = {}
        for slot, acceptor in self._slots.items():
            if slot < from_slot:
                continue
            acceptor.prepare(ballot)
            if acceptor.accepted_ballot is not None:
                accepted[slot] = (acceptor.accepted_ballot,
                                  acceptor.accepted_value)
        return True, accepted

    def on_accept(self, slot: int, ballot: int, value: Any) -> bool:
        """Handle one phase-2a accept request."""
        if ballot < self.promised:
            return False
        # a higher-ballot accept implies its prepare reached a quorum
        # elsewhere; adopting it as the shared promise is safe and
        # matches the single-acceptor rule
        self.promised = ballot
        return self._slot(slot).accept(ballot, value)


class LearnerLog:
    """The learner role across the log, with in-order application.

    ``apply_fn(slot, value)`` is invoked exactly once per slot, in slot
    order, once the contiguous prefix through that slot is chosen.
    """

    def __init__(self, quorum: int,
                 apply_fn: Optional[Callable[[int, Any], None]] = None
                 ) -> None:
        self.quorum = quorum
        self.apply_fn = apply_fn
        self._slots: Dict[int, Learner] = {}
        self.chosen: Dict[int, Tuple[int, Any]] = {}
        #: highest slot such that every slot <= it has been applied.
        self.applied_through: int = -1

    def _slot(self, slot: int) -> Learner:
        learner = self._slots.get(slot)
        if learner is None:
            learner = Learner(self.quorum)
            self._slots[slot] = learner
        return learner

    def first_unchosen(self) -> int:
        slot = self.applied_through + 1
        while slot in self.chosen:
            slot += 1
        return slot

    def __len__(self) -> int:
        return len(self.chosen)

    def is_chosen(self, slot: int) -> bool:
        return slot in self.chosen

    def on_accepted(self, slot: int, sender: str, ballot: int,
                    value: Any) -> List[int]:
        """Count one acceptance; returns the slots newly *applied*."""
        if self._slot(slot).on_accepted(sender, ballot, value):
            return self._note_chosen(slot)
        return []

    def on_chosen(self, slot: int, ballot: int, value: Any) -> List[int]:
        """Adopt a leader's Chosen announcement (catch-up)."""
        if self._slot(slot).force_chosen(ballot, value):
            return self._note_chosen(slot)
        return []

    def _note_chosen(self, slot: int) -> List[int]:
        learner = self._slots[slot]
        self.chosen[slot] = (learner.chosen_ballot, learner.chosen_value)
        applied: List[int] = []
        next_slot = self.applied_through + 1
        while next_slot in self.chosen:
            if self.apply_fn is not None:
                self.apply_fn(next_slot, self.chosen[next_slot][1])
            self.applied_through = next_slot
            applied.append(next_slot)
            next_slot += 1
        return applied
