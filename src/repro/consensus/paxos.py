"""Single-decree Paxos: proposer, acceptor, and learner state machines.

These are *pure* state machines — no clocks, no network, no randomness.
Each method consumes one message and returns what (if anything) should
be sent in response; the caller owns delivery, retransmission, and
timeouts.  That split is what makes the safety property testable by
brute force: a test can deliver, drop, duplicate, and reorder the
returned messages in any schedule and assert that two different values
are never chosen for the same decree.

Ballots are integers encoding ``(round, owner)`` as
``round * n_replicas + owner_index``, which gives every replica an
infinite, disjoint, totally ordered ballot supply — and, because the
encoding is monotonic in time for any one leader succession, the
current ballot doubles as the manager *incarnation* number the SNS
beacons already carry.

The safety core is the classic two rules (Lamport, "Paxos Made
Simple"):

* an acceptor promises never to accept anything below the highest
  ballot it has seen a ``Prepare`` for, and
* a proposer that reaches a promise quorum must adopt the
  highest-ballot value any quorum member already accepted, proposing
  its own value only when the quorum is virgin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

__all__ = [
    "Accepted",
    "AcceptRequest",
    "Acceptor",
    "Chosen",
    "Learner",
    "Prepare",
    "Promise",
    "Proposer",
    "SyncRequest",
    "ballot_owner",
    "ballot_round",
    "make_ballot",
]


def make_ballot(round_number: int, owner_index: int,
                n_replicas: int) -> int:
    """Encode a ballot: totally ordered, owner-disjoint."""
    if not 0 <= owner_index < n_replicas:
        raise ValueError("owner index out of range")
    if round_number < 0:
        raise ValueError("round must be non-negative")
    return round_number * n_replicas + owner_index


def ballot_owner(ballot: int, n_replicas: int) -> int:
    """The replica index that owns ``ballot``."""
    return ballot % n_replicas


def ballot_round(ballot: int, n_replicas: int) -> int:
    return ballot // n_replicas


# -- wire messages -----------------------------------------------------------
#
# ``slot`` scopes a message to one decree of the multi-Paxos log; the
# single-decree machines below never look at it.  ``sender`` is the
# replica name, used by learners to count distinct acceptors.

@dataclass(frozen=True)
class Prepare:
    """Phase-1a: a candidate leader claims ``ballot`` for every slot
    from ``slot`` upward (the multi-Paxos bulk prepare)."""

    slot: int
    ballot: int
    sender: str


@dataclass(frozen=True)
class Promise:
    """Phase-1b: the acceptor's promise, carrying everything it already
    accepted at or above the prepared slot."""

    slot: int
    ballot: int
    sender: str
    #: the candidate the promise answers (others ignore the message).
    to: str
    #: ``{slot: (accepted_ballot, accepted_value)}`` for slots >= slot.
    accepted: Dict[int, Tuple[int, Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class AcceptRequest:
    """Phase-2a: the leader asks acceptors to accept ``value``."""

    slot: int
    ballot: int
    value: Any
    sender: str


@dataclass(frozen=True)
class Accepted:
    """Phase-2b: broadcast so every learner counts the quorum."""

    slot: int
    ballot: int
    value: Any
    sender: str


@dataclass(frozen=True)
class Chosen:
    """Leader's post-quorum announcement: lets replicas that missed the
    ``Accepted`` quorum catch up without re-running the protocol.  Not
    needed for safety — a learner believes it only because a chosen
    value can never change."""

    slot: int
    ballot: int
    value: Any
    sender: str


@dataclass(frozen=True)
class SyncRequest:
    """A lagging replica advertises its first unchosen slot; the leader
    answers with :class:`Chosen` rebroadcasts from there."""

    first_unchosen: int
    sender: str


# -- the three roles ---------------------------------------------------------

class Acceptor:
    """One decree's acceptor: the promise/accept safety rules."""

    def __init__(self) -> None:
        self.promised: int = -1
        self.accepted_ballot: Optional[int] = None
        self.accepted_value: Any = None

    def prepare(self, ballot: int) -> bool:
        """Phase 1: promise ``ballot`` unless already past it.  Returns
        whether the promise was made; the caller reads
        ``accepted_ballot``/``accepted_value`` to build the Promise."""
        if ballot < self.promised:
            return False
        self.promised = ballot
        return True

    def accept(self, ballot: int, value: Any) -> bool:
        """Phase 2: accept unless promised to someone higher."""
        if ballot < self.promised:
            return False
        self.promised = ballot
        self.accepted_ballot = ballot
        self.accepted_value = value
        return True


class Proposer:
    """One decree's proposer attempt at a fixed ballot."""

    def __init__(self, ballot: int, value: Any, quorum: int) -> None:
        self.ballot = ballot
        self.value = value
        self.quorum = quorum
        self._promised_by: Set[str] = set()
        self._best_accepted: Optional[Tuple[int, Any]] = None
        self.ready = False

    def on_promise(self, sender: str,
                   accepted_ballot: Optional[int],
                   accepted_value: Any) -> bool:
        """Fold in one promise; True once the quorum is first reached.

        On quorum, ``value`` holds what MUST be proposed: the value of
        the highest-ballot acceptance any quorum member reported, or the
        proposer's own candidate if none reported any.
        """
        if self.ready:
            return False
        self._promised_by.add(sender)
        if accepted_ballot is not None:
            best = self._best_accepted
            if best is None or accepted_ballot > best[0]:
                self._best_accepted = (accepted_ballot, accepted_value)
        if len(self._promised_by) < self.quorum:
            return False
        if self._best_accepted is not None:
            self.value = self._best_accepted[1]
        self.ready = True
        return True


class Learner:
    """One decree's learner: a value is chosen once a quorum of
    distinct acceptors accepted it at the same ballot."""

    def __init__(self, quorum: int) -> None:
        self.quorum = quorum
        self._accepts: Dict[int, Set[str]] = {}
        self.chosen_ballot: Optional[int] = None
        self.chosen_value: Any = None

    @property
    def decided(self) -> bool:
        return self.chosen_ballot is not None

    def on_accepted(self, sender: str, ballot: int, value: Any) -> bool:
        """Count one acceptance; True when this message decides it."""
        if self.decided:
            return False
        voters = self._accepts.setdefault(ballot, set())
        voters.add(sender)
        if len(voters) < self.quorum:
            return False
        self.chosen_ballot = ballot
        self.chosen_value = value
        return True

    def force_chosen(self, ballot: int, value: Any) -> bool:
        """Adopt a :class:`Chosen` announcement (catch-up path)."""
        if self.decided:
            return False
        self.chosen_ballot = ballot
        self.chosen_value = value
        return True
