"""Process-level tracing opt-in for experiments that build their own
clusters.

``install_tracer`` works when the caller owns the :class:`Cluster`,
but the CLI's experiments (``run endtoend`` etc.) construct clusters
internally — sometimes several, one per experiment arm.  The
:func:`capture_traces` context manager arms a process-global hook that
:class:`~repro.sim.cluster.Cluster` consults at construction time:
while the context is active, every new cluster gets a tracer installed
(with the requested sampling rate) and the tracer is collected so the
caller can export or attribute all arms afterwards.

Outside the context manager the hook is ``None`` and cluster
construction is untouched — this is the same strictly-opt-in guarantee
as the rest of the package.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.trace import Tracer, install_tracer

#: labels attach_to_new_cluster assigned automatically ("cluster-3");
#: rebuilt fan-out tracers with such labels get renumbered to their
#: position in the parent's capture list.
_AUTO_LABEL = re.compile(r"cluster-\d+\Z")

#: while non-None: ``{"sample_every": int, "max_traces": Optional[int],
#: "tracers": list}`` — consulted by Cluster.__init__ via
#: :func:`attach_to_new_cluster`.
_ACTIVE: Optional[Dict[str, Any]] = None


def tracing_settings() -> Optional[Dict[str, Any]]:
    """The active capture settings, or None when tracing is off."""
    if _ACTIVE is None:
        return None
    return {"sample_every": _ACTIVE["sample_every"],
            "max_traces": _ACTIVE["max_traces"]}


def attach_to_new_cluster(cluster: Any, label: str = "") -> \
        Optional[Tracer]:
    """Called by ``Cluster.__init__``; installs and records a tracer
    iff a :func:`capture_traces` context is active."""
    if _ACTIVE is None:
        return None
    index = len(_ACTIVE["tracers"]) + 1
    tracer = install_tracer(
        cluster,
        sample_every=_ACTIVE["sample_every"],
        max_traces=_ACTIVE["max_traces"],
        label=label or f"cluster-{index}")
    _ACTIVE["tracers"].append(tracer)
    return tracer


def reset_capture() -> None:
    """Forget any inherited capture state.

    Fan-out worker processes forked mid-``capture_traces`` inherit the
    parent's hook *and* its accumulated tracer list; they must start
    from a clean slate (and open their own capture) so shipped spans
    are exactly the shard's own.
    """
    global _ACTIVE
    _ACTIVE = None


def absorb_tracer_states(states: List[Dict[str, Any]]) -> List[Tracer]:
    """Merge serialized shard tracers into the active capture.

    ``states`` must already be in deterministic (shard) order.  Each is
    rebuilt detached (:meth:`Tracer.from_state`); automatically assigned
    ``cluster-N`` labels are renumbered to the tracer's position in the
    parent's list, which makes the merged capture — and hence the
    exported trace file — byte-identical to a serial in-process run.
    Returns the rebuilt tracers (also appended to the capture when one
    is active).
    """
    rebuilt = []
    for state in states:
        tracer = Tracer.from_state(state)
        if _ACTIVE is not None:
            if tracer.label and _AUTO_LABEL.fullmatch(tracer.label):
                tracer.label = f"cluster-{len(_ACTIVE['tracers']) + 1}"
            _ACTIVE["tracers"].append(tracer)
        rebuilt.append(tracer)
    return rebuilt


def capture_active() -> bool:
    """True while a :func:`capture_traces` context is armed."""
    return _ACTIVE is not None


@contextmanager
def capture_traces(sample_every: int = 1,
                   max_traces: Optional[int] = None
                   ) -> Iterator[List[Tracer]]:
    """Trace every cluster built inside the ``with`` block.

    Yields the (initially empty) list that accumulates one tracer per
    cluster; read it after the block finishes::

        with capture_traces(sample_every=10) as tracers:
            run_endtoend(config)
        export_chrome_trace(tracers, "trace.json")

    Nesting is rejected — nested captures would silently steal each
    other's tracers.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("capture_traces() does not nest")
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    state: Dict[str, Any] = {
        "sample_every": sample_every,
        "max_traces": max_traces,
        "tracers": [],
    }
    _ACTIVE = state
    try:
        yield state["tracers"]
    finally:
        _ACTIVE = None
