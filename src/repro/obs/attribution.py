"""Critical-path extraction and latency attribution over span trees.

This is the machine-checked version of the paper's Figure 7 / the
TranSend end-to-end study: instead of eyeballing a scatter plot, every
sampled request's end-to-end latency is decomposed *exactly* into
category components (queueing / service / network / cache / origin /
client / other) and the per-category stats are aggregated into one
report.

The decomposition is an interval sweep: within the root span's
interval, each instant is attributed to the **deepest** span covering
it (a worker-service span inside a dispatch span inside the front end's
service span wins over all three ancestors); instants covered only by
the root fall into ``other``.  Because the sweep partitions the root
interval, the components sum to the measured end-to-end latency by
construction — the acceptance criterion ("within 1%") holds with
equality up to float rounding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import LatencyStats
from repro.obs.trace import (
    CACHE,
    CLIENT,
    NETWORK,
    ORIGIN,
    OTHER,
    QUEUEING,
    SERVICE,
    Span,
)

#: report ordering for category breakdowns.
CATEGORIES: Tuple[str, ...] = (
    QUEUEING, SERVICE, NETWORK, CACHE, ORIGIN, CLIENT, OTHER)

_EPS = 1e-12


def find_root(spans: Sequence[Span]) -> Optional[Span]:
    """The trace's root span (first finished parentless span)."""
    for span in spans:
        if span.parent_id is None and span.finished:
            return span
    return None


def _children_map(spans: Sequence[Span]) -> Dict[Optional[int],
                                                 List[Span]]:
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        if span.finished:
            children.setdefault(span.parent_id, []).append(span)
    return children


def _depths(spans: Sequence[Span]) -> Dict[int, int]:
    by_id = {span.span_id: span for span in spans}
    depths: Dict[int, int] = {}

    def depth(span: Span) -> int:
        if span.span_id in depths:
            return depths[span.span_id]
        if span.parent_id is None or span.parent_id not in by_id:
            depths[span.span_id] = 0
        else:
            depths[span.span_id] = 1 + depth(by_id[span.parent_id])
        return depths[span.span_id]

    for span in spans:
        depth(span)
    return depths


def attribute_trace(spans: Sequence[Span]) -> Dict[str, float]:
    """Decompose one trace's end-to-end latency by span category.

    Returns ``{category: seconds}`` whose values sum to the root span's
    duration exactly (up to float rounding).  Unfinished spans are
    ignored; an unfinished or missing root yields an empty dict.
    """
    root = find_root(spans)
    if root is None or root.end is None:
        return {}
    finished = [span for span in spans if span.finished]
    depths = _depths(finished)
    # sweep boundaries: every span edge clipped to the root interval
    cuts = {root.start, root.end}
    for span in finished:
        cuts.add(min(max(span.start, root.start), root.end))
        cuts.add(min(max(span.end, root.start), root.end))
    boundaries = sorted(cuts)
    components: Dict[str, float] = {}
    for left, right in zip(boundaries, boundaries[1:]):
        if right - left <= _EPS:
            continue
        midpoint = (left + right) / 2.0
        # deepest covering span wins; ties break toward the later,
        # higher-id span for determinism
        best = root
        best_key = (-1, -1.0, -1)
        for span in finished:
            if span.start - _EPS <= midpoint <= span.end + _EPS:
                key = (depths[span.span_id], span.start, span.span_id)
                if key > best_key:
                    best_key = key
                    best = span
        category = best.category if best is not root else OTHER
        components[category] = components.get(category, 0.0) + \
            (right - left)
    return components


def critical_path(spans: Sequence[Span]) -> List[Tuple[Span, float,
                                                       float]]:
    """The chain of span segments that determined the root's end time.

    Walks backward from the root's end: at each cursor position the
    latest-ending child that finished at or before the cursor takes
    over; gaps between children are the parent's own (self) time.
    Returns ``[(span, seg_start, seg_end), ...]`` ordered by time.
    """
    root = find_root(spans)
    if root is None:
        return []
    children = _children_map(spans)
    segments: List[Tuple[Span, float, float]] = []

    def walk(span: Span, cursor: float) -> None:
        # zero-duration children carry no critical-path time, and
        # keeping them would stall the cursor (infinite hand-off loop)
        kids = [child for child in children.get(span.span_id, [])
                if child.end is not None
                and child.end > child.start + _EPS
                and child.end > span.start + _EPS]
        while cursor > span.start + _EPS:
            eligible = [child for child in kids
                        if child.end <= cursor + _EPS]
            if not eligible:
                segments.append((span, span.start, cursor))
                return
            handoff = max(eligible,
                          key=lambda child: (child.end, child.span_id))
            if handoff.end < cursor - _EPS:
                segments.append((span, handoff.end, cursor))
            walk(handoff, min(cursor, handoff.end))
            cursor = max(span.start, handoff.start)
            kids = [child for child in kids
                    if child.end <= cursor + _EPS]
        # cursor reached span.start: nothing more to attribute here

    walk(root, root.end)
    segments.reverse()
    return segments


def render_span_tree(spans: Sequence[Span],
                     clock_origin: Optional[float] = None) -> str:
    """ASCII rendering of one trace's span tree (for reports)."""
    root = find_root(spans)
    if root is None:
        unfinished = [span for span in spans if span.parent_id is None]
        if not unfinished:
            return "(empty trace)"
        root = unfinished[0]
    origin = root.start if clock_origin is None else clock_origin
    children = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.start, span.span_id))
    lines: List[str] = []

    def emit(span: Span, indent: int) -> None:
        if span.end is None:
            timing = f"{span.start - origin:8.4f}s ..unfinished"
        else:
            timing = (f"{span.start - origin:8.4f}s "
                      f"+{span.duration * 1000.0:9.3f}ms")
        note = ""
        if span.annotations:
            note = "  " + ", ".join(
                f"{key}={value}" for key, value
                in sorted(span.annotations.items()))
        lines.append(f"{timing}  {'  ' * indent}{span.name} "
                     f"[{span.category}] @{span.component}{note}")
        for child in children.get(span.span_id, []):
            emit(child, indent + 1)

    emit(root, 0)
    return "\n".join(lines)


class AttributionReport:
    """Aggregated latency attribution over many sampled traces."""

    def __init__(self) -> None:
        self.n_traces = 0
        self.end_to_end = LatencyStats()
        self.by_category: Dict[str, LatencyStats] = {}
        #: worst |sum(components) - end_to_end| / end_to_end seen.
        self.worst_residual = 0.0
        #: (end_to_end_s, trace_id, components) for the slowest traces.
        self._slowest: List[Tuple[float, str, Dict[str, float]]] = []

    def add_trace(self, trace_id: str, spans: Sequence[Span]) -> bool:
        """Fold one finished trace in; returns False if it had no
        usable root."""
        components = attribute_trace(spans)
        root = find_root(spans)
        if root is None or not components:
            return False
        total = root.duration
        self.n_traces += 1
        self.end_to_end.add(total)
        for category, seconds in components.items():
            self.by_category.setdefault(
                category, LatencyStats()).add(seconds)
        if total > 0:
            residual = abs(sum(components.values()) - total) / total
            self.worst_residual = max(self.worst_residual, residual)
        self._slowest.append((total, trace_id, components))
        self._slowest.sort(key=lambda row: -row[0])
        del self._slowest[8:]
        return True

    def merge(self, other: "AttributionReport") -> "AttributionReport":
        """Fold another report in (e.g. the second experiment arm)."""
        self.n_traces += other.n_traces
        self.end_to_end.merge(other.end_to_end)
        for category, stats in other.by_category.items():
            self.by_category.setdefault(
                category, LatencyStats()).merge(stats)
        self.worst_residual = max(self.worst_residual,
                                  other.worst_residual)
        self._slowest.extend(other._slowest)
        self._slowest.sort(key=lambda row: -row[0])
        del self._slowest[8:]
        return self

    def mean_components(self) -> Dict[str, float]:
        """Mean seconds per category, scaled by how often it appears
        (absent categories count as zero for the mean)."""
        if not self.n_traces:
            return {}
        return {
            category: stats.total / self.n_traces
            for category, stats in self.by_category.items()
        }

    def render(self) -> str:
        if not self.n_traces:
            return "latency attribution: no sampled traces"
        lines = [
            f"latency attribution over {self.n_traces} sampled "
            f"request(s)",
            f"  end-to-end  p50 {self.end_to_end.p50 * 1000:9.1f}ms   "
            f"p95 {self.end_to_end.p95 * 1000:9.1f}ms   "
            f"p99 {self.end_to_end.p99 * 1000:9.1f}ms",
        ]
        means = self.mean_components()
        total_mean = self.end_to_end.mean or 1.0
        for category in CATEGORIES:
            if category not in means:
                continue
            stats = self.by_category[category]
            share = means[category] / total_mean
            lines.append(
                f"  {category:<10}  mean {means[category] * 1000:9.1f}ms"
                f"  ({share:6.1%} of e2e)   "
                f"p95 {stats.p95 * 1000:9.1f}ms")
        lines.append(
            f"  components sum to e2e within "
            f"{max(self.worst_residual, 0.0):.2%} "
            f"(worst sampled request)")
        if self._slowest:
            total, trace_id, components = self._slowest[0]
            top = sorted(components.items(),
                         key=lambda item: -item[1])[:3]
            breakdown = ", ".join(
                f"{category} {seconds * 1000:.1f}ms"
                for category, seconds in top)
            lines.append(
                f"  slowest     {trace_id}: {total * 1000:.1f}ms "
                f"({breakdown})")
        return "\n".join(lines)


def build_attribution_report(tracers) -> AttributionReport:
    """One report over the finished traces of one or many tracers."""
    report = AttributionReport()
    try:
        iter(tracers)
    except TypeError:
        tracers = [tracers]
    for tracer in tracers:
        for trace_id, spans in sorted(tracer.finished_traces().items()):
            report.add_trace(trace_id, spans)
    return report
