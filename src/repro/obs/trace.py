"""Spans, trace contexts, and the tracer.

A **span** is one timed hop of one request: the front end's netstack
reservation, the wait in a worker stub's queue, a SAN transfer, the
worker's service time, an origin fetch.  Spans form a tree per request
(the root is opened at ingress — by the playback engine when one is
driving, else by the front end) and carry a *category* that the
attribution report later sums into the paper-style queueing / service /
network / cache-miss decomposition.

Design constraints, in order:

1. **Zero cost when disabled.**  Every instrumentation site guards on
   ``span is not None`` (or ``env.tracer is None``); a disabled run
   makes no allocations, schedules no events, and draws no RNG.
2. **Zero perturbation when enabled.**  The tracer only reads
   ``env.now``.  Head-based sampling is a deterministic counter (every
   Nth root), not a random draw, so traced runs reproduce untraced
   measurements bit-for-bit.
3. **Causality is explicit.**  Contexts cross component boundaries
   inside the messages that already cross them (``WorkEnvelope.trace``)
   or via the synchronous hand-off protocol (:meth:`Tracer.hand_off` /
   :meth:`Tracer.take_pending`), which is safe because the simulator is
   cooperative: between a hand-off and the pick-up there is no yield
   point, hence no interleaving.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.sim.kernel import Environment

#: Span categories, in the order the attribution report lists them.
#: ``queueing``  — time spent waiting for a resource (thread pool,
#:                 worker queue, dispatch retries/backoff);
#: ``service``   — time a component actively worked the request;
#: ``network``   — SAN transfers, access links, the FE netstack;
#: ``cache``     — cache-subsystem probe time (hits and misses);
#: ``origin``    — the wide-area cache-miss penalty (Section 4.4);
#: ``client``    — the client-side delivery leg (modem bank);
#: ``other``     — root-covered time no child span accounts for.
QUEUEING = "queueing"
SERVICE = "service"
NETWORK = "network"
CACHE = "cache"
ORIGIN = "origin"
CLIENT = "client"
OTHER = "other"


class Span:
    """One timed, named hop in a request's causal tree."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "category", "component", "start", "end", "annotations")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 component: str, start: float,
                 end: Optional[float] = None,
                 annotations: Optional[Dict[str, Any]] = None) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.component = component
        self.start = start
        self.end = end
        self.annotations = annotations or {}

    # -- tree construction --------------------------------------------------

    def child(self, name: str, category: str,
              component: Optional[str] = None,
              start: Optional[float] = None) -> "Span":
        """Open a child span (finish it with :meth:`finish`)."""
        return self.tracer._open_span(
            self.trace_id, self.span_id, name, category,
            component if component is not None else self.component,
            self.tracer.env.now if start is None else start)

    def record(self, name: str, category: str, start: float,
               end: Optional[float] = None,
               component: Optional[str] = None,
               **annotations: Any) -> "Span":
        """Record an already-elapsed child span in one call."""
        span = self.child(name, category, component, start=start)
        if annotations:
            span.annotations.update(annotations)
        span.finish(end)
        return span

    def finish(self, end: Optional[float] = None) -> "Span":
        """Close the span at ``end`` (default: the current sim time)."""
        if self.end is None:
            self.end = self.tracer.env.now if end is None else end
        return self

    def annotate(self, **kv: Any) -> "Span":
        self.annotations.update(kv)
        return self

    # -- queries ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.4f}" if self.end is not None else "..."
        return (f"<Span {self.trace_id}/{self.span_id} {self.name} "
                f"[{self.category}] @{self.component} "
                f"{self.start:.4f}-{end}>")


#: sentinel distinguishing "no pending hand-off" from "hand-off of an
#: unsampled (None) context".
_NO_PENDING = object()


class Tracer:
    """Per-environment span store with deterministic head sampling.

    ``sample_every=N`` keeps one request in N (the first of each block):
    the sampling decision happens once, at root creation, and the
    context simply does not exist for unsampled requests — no
    downstream site pays anything for them.  ``max_traces`` bounds
    memory at trace-replay scale; once reached, new roots stop being
    sampled (existing traces still complete).
    """

    def __init__(self, env: Environment, sample_every: int = 1,
                 max_traces: Optional[int] = None,
                 label: str = "") -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.env = env
        self.sample_every = sample_every
        self.max_traces = max_traces
        #: free-form label ("arm=distilled") used by exporters.
        self.label = label
        self.spans: Dict[str, List[Span]] = {}
        self.requests_seen = 0
        self.requests_sampled = 0
        self._next_span_id = 0
        self._pending: Any = _NO_PENDING

    # -- root creation and sampling -----------------------------------------

    def open_trace(self, name: str, category: str = OTHER,
                   component: str = "client",
                   **annotations: Any) -> Optional[Span]:
        """Start a new trace; returns None when head sampling skips it."""
        index = self.requests_seen
        self.requests_seen += 1
        if index % self.sample_every != 0:
            return None
        if self.max_traces is not None \
                and len(self.spans) >= self.max_traces:
            return None
        self.requests_sampled += 1
        trace_id = f"t{index:07d}"
        span = self._open_span(trace_id, None, name, category,
                               component, self.env.now)
        if annotations:
            span.annotations.update(annotations)
        return span

    def open_aux_trace(self, key: str, name: str, category: str = OTHER,
                       component: str = "system",
                       **annotations: Any) -> Optional[Span]:
        """Start an auxiliary (non-request) trace, e.g. one recovery
        case.  Unlike :meth:`open_trace` this neither consumes a head
        -sampling slot nor bumps ``requests_seen`` — attaching system
        activity to the store must not shift which *requests* get
        sampled.  ``key`` must be unique per trace; it is namespaced
        with an ``aux-`` prefix so ids never collide with request roots.
        """
        trace_id = f"aux-{key}"
        if trace_id in self.spans:
            raise ValueError(f"aux trace {trace_id!r} already open")
        if self.max_traces is not None \
                and len(self.spans) >= self.max_traces:
            return None
        span = self._open_span(trace_id, None, name, category,
                               component, self.env.now)
        if annotations:
            span.annotations.update(annotations)
        return span

    def _open_span(self, trace_id: str, parent_id: Optional[int],
                   name: str, category: str, component: str,
                   start: float) -> Span:
        self._next_span_id += 1
        span = Span(self, trace_id, self._next_span_id, parent_id,
                    name, category, component, start)
        self.spans.setdefault(trace_id, []).append(span)
        return span

    # -- the synchronous hand-off protocol ----------------------------------

    def hand_off(self, span: Optional[Span]) -> None:
        """Offer ``span`` (possibly None: sampled-out) to the next
        ingress point down the current synchronous call chain."""
        self._pending = span

    def peek_pending(self) -> Any:
        """Read the pending hand-off without consuming it — for
        pass-through adapters (e.g. the modem bank) that want to hang
        their own spans off the root while letting the real ingress
        downstream consume the context."""
        return self._pending

    def take_pending(self) -> Any:
        """Consume the pending hand-off; returns :data:`_NO_PENDING`
        when no hand-off was offered (caller should open its own root)."""
        pending = self._pending
        self._pending = _NO_PENDING
        return pending

    def drop_pending(self) -> None:
        """Clear an unconsumed hand-off (the chain never reached an
        instrumented ingress, e.g. no live front end)."""
        self._pending = _NO_PENDING

    @staticmethod
    def was_handed_off(value: Any) -> bool:
        return value is not _NO_PENDING

    # -- queries ------------------------------------------------------------

    def trace_ids(self) -> List[str]:
        return list(self.spans)

    def trace(self, trace_id: str) -> List[Span]:
        return self.spans.get(trace_id, [])

    def finished_traces(self) -> Dict[str, List[Span]]:
        """Traces whose root span has been closed."""
        finished: Dict[str, List[Span]] = {}
        for trace_id, spans in self.spans.items():
            roots = [s for s in spans if s.parent_id is None]
            if roots and all(r.finished for r in roots):
                finished[trace_id] = spans
        return finished

    def all_spans(self) -> Iterable[Span]:
        for spans in self.spans.values():
            yield from spans

    # -- cross-process transport (repro.fanout) -----------------------------

    def state(self) -> Dict[str, Any]:
        """A picklable snapshot of everything exporters read.

        A live tracer drags the whole simulation world behind it
        (``self.env``); fan-out worker processes instead ship this plain
        structure back to the parent, which rebuilds detached tracers
        with :meth:`from_state`.  Span order (per trace, and the trace
        dict's insertion order) is preserved, so exporting rebuilt
        tracers is byte-identical to exporting the originals.
        """
        return {
            "label": self.label,
            "sample_every": self.sample_every,
            "max_traces": self.max_traces,
            "requests_seen": self.requests_seen,
            "requests_sampled": self.requests_sampled,
            "traces": [
                (trace_id,
                 [(span.span_id, span.parent_id, span.name,
                   span.category, span.component, span.start, span.end,
                   dict(span.annotations) if span.annotations else None)
                  for span in spans])
                for trace_id, spans in self.spans.items()
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Tracer":
        """Rebuild a detached tracer (``env is None``) from
        :meth:`state` output — good for export and attribution, not for
        recording new spans."""
        tracer = cls.__new__(cls)
        tracer.env = None
        tracer.sample_every = state["sample_every"]
        tracer.max_traces = state["max_traces"]
        tracer.label = state["label"]
        tracer.requests_seen = state["requests_seen"]
        tracer.requests_sampled = state["requests_sampled"]
        tracer.spans = {}
        next_span_id = 0
        for trace_id, span_rows in state["traces"]:
            spans = []
            for (span_id, parent_id, name, category, component, start,
                 end, annotations) in span_rows:
                spans.append(Span(
                    tracer, trace_id, span_id, parent_id, name,
                    category, component, start, end=end,
                    annotations=annotations))
                next_span_id = max(next_span_id, span_id)
            tracer.spans[trace_id] = spans
        tracer._next_span_id = next_span_id
        tracer._pending = _NO_PENDING
        return tracer


def install_tracer(cluster_or_env: Any, sample_every: int = 1,
                   max_traces: Optional[int] = None,
                   label: str = "") -> Tracer:
    """Attach a tracer to a cluster (or bare environment) and return it.

    This is the explicit opt-in: components find the tracer at
    ``env.tracer`` and instrument only the requests it samples.
    """
    env = getattr(cluster_or_env, "env", cluster_or_env)
    tracer = Tracer(env, sample_every=sample_every,
                    max_traces=max_traces, label=label)
    env.tracer = tracer
    return tracer
