"""Chrome ``trace_event`` JSON export for span trees.

The output follows the Trace Event Format (the ``traceEvents`` array of
``"ph": "X"`` complete events) understood by ``chrome://tracing`` and
by Perfetto's legacy importer (ui.perfetto.dev → "Open trace file").
Each tracer becomes one *process* row (pid), each component within it
one *thread* row (tid), so the Perfetto timeline groups spans the same
way the cluster does: front ends, worker stubs, caches, origin, client.

Timestamps are sim-clock seconds scaled to microseconds (the format's
unit).  Every event's ``args`` carries the trace id, span id, parent
span id, and category, which is enough for :func:`load_chrome_trace`
to rebuild the span trees losslessly (round-trip is tested).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from repro.obs.trace import OTHER, Span, Tracer

_US_PER_S = 1_000_000.0


def _as_tracer_list(tracers: Union[Tracer, Iterable[Tracer]]
                    ) -> List[Tracer]:
    if isinstance(tracers, Tracer):
        return [tracers]
    return list(tracers)


def chrome_trace_events(tracers: Union[Tracer, Iterable[Tracer]],
                        include_unfinished: bool = False
                        ) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one or many tracers."""
    events: List[Dict[str, Any]] = []
    for pid, tracer in enumerate(_as_tracer_list(tracers), start=1):
        process_name = tracer.label or f"tracer-{pid}"
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })
        tids: Dict[str, int] = {}
        for trace_id in sorted(tracer.spans):
            for span in tracer.spans[trace_id]:
                if span.end is None and not include_unfinished:
                    continue
                tid = tids.get(span.component)
                if tid is None:
                    tid = len(tids) + 1
                    tids[span.component] = tid
                    events.append({
                        "ph": "M", "name": "thread_name",
                        "pid": pid, "tid": tid,
                        "args": {"name": span.component},
                    })
                end = span.end if span.end is not None else span.start
                args: Dict[str, Any] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "category": span.category,
                }
                if span.annotations:
                    args.update({
                        str(key): value for key, value
                        in span.annotations.items()})
                events.append({
                    "ph": "X",
                    "name": span.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start * _US_PER_S,
                    "dur": (end - span.start) * _US_PER_S,
                    "args": args,
                })
    return events


def export_chrome_trace(tracers: Union[Tracer, Iterable[Tracer]],
                        out: Union[str, IO[str]],
                        include_unfinished: bool = False) -> int:
    """Write a Chrome trace_event JSON file; returns the event count
    (metadata events excluded)."""
    events = chrome_trace_events(tracers,
                                 include_unfinished=include_unfinished)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "clock": "sim-seconds-as-us",
        },
    }
    if hasattr(out, "write"):
        json.dump(document, out, indent=1)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
    return sum(1 for event in events if event["ph"] == "X")


def load_chrome_trace(source: Union[str, IO[str]]
                      ) -> Dict[str, List[Span]]:
    """Rebuild ``{trace_id: [spans]}`` from an exported trace file.

    The returned spans are detached (``span.tracer is None``) — good
    for attribution and rendering, not for opening new children.

    Trace ids are per-tracer counters, so a file holding several
    tracers (e.g. the two arms of the end-to-end experiment) can carry
    the same trace id under different pids.  Grouping is by
    ``(pid, trace_id)``; when that makes an id ambiguous, the returned
    key is suffixed with the process name (``t0000005@cluster-2``).
    """
    if hasattr(source, "read"):
        document = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    events = document.get("traceEvents", document)
    thread_names: Dict[Any, str] = {}
    process_names: Dict[Any, str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event.get("name") == "thread_name":
            key = (event.get("pid"), event.get("tid"))
            thread_names[key] = str(
                event.get("args", {}).get("name", "?"))
        elif event.get("name") == "process_name":
            process_names[event.get("pid")] = str(
                event.get("args", {}).get("name", "?"))
    grouped: Dict[Any, List[Span]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        trace_id = args.pop("trace_id", None)
        if trace_id is None:
            continue
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        category = args.pop("category", event.get("cat", OTHER))
        start = event["ts"] / _US_PER_S
        component = thread_names.get(
            (event.get("pid"), event.get("tid")), "?")
        span = Span(None, trace_id, span_id, parent_id,
                    event.get("name", "?"), category, component, start,
                    end=start + event.get("dur", 0.0) / _US_PER_S,
                    annotations=args or None)
        grouped.setdefault((event.get("pid"), trace_id),
                           []).append(span)
    pids_per_id: Dict[str, int] = {}
    for pid, trace_id in grouped:
        pids_per_id[trace_id] = pids_per_id.get(trace_id, 0) + 1
    traces: Dict[str, List[Span]] = {}
    for (pid, trace_id), spans in grouped.items():
        if pids_per_id[trace_id] > 1:
            suffix = process_names.get(pid, f"pid{pid}")
            traces[f"{trace_id}@{suffix}"] = spans
        else:
            traces[trace_id] = spans
    return traces
