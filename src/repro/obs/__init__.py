"""Causal request tracing and latency attribution (``repro.obs``).

The SNS monitor (Section 3.1.7) sees component-level state — beacons,
queue averages, silences — but cannot say *why* one request took 3.5
seconds.  This package adds the missing per-request visibility: a
:class:`~repro.obs.trace.TraceContext` threaded from front-end ingress
across every hop (cache probe, dispatch, SAN transfer, worker queue and
service, origin fetch) produces a **span tree** per sampled request with
sim-clock timestamps; on top of it sit a critical-path extractor, a
latency-attribution report that decomposes end-to-end latency into
queueing / service / network / cache-miss components (the
machine-checked version of Figure 7), and a Chrome ``trace_event``
exporter so runs open in ``chrome://tracing`` / Perfetto.

Tracing is strictly opt-in.  With no tracer installed (the default)
every instrumentation site is a single ``is None`` check: no events are
scheduled, no RNG streams are touched, and all experiment outputs are
bit-identical to an untraced run.  Even when enabled, the tracer only
*reads* the simulation clock — it draws no random numbers and never
perturbs event ordering, so traced and untraced runs of the same seed
produce identical measurements.

Not to be confused with ``repro.workload.trace`` / ``python -m repro
trace``, which handle *HTTP workload traces* (request logs to replay);
this package is about *request tracing* (causal spans within one
request).
"""

from repro.obs.attribution import (
    CATEGORIES,
    AttributionReport,
    attribute_trace,
    build_attribution_report,
    critical_path,
    render_span_tree,
)
from repro.obs.export import (
    export_chrome_trace,
    load_chrome_trace,
)
from repro.obs.runtime import (
    absorb_tracer_states,
    capture_active,
    capture_traces,
    reset_capture,
    tracing_settings,
)
from repro.obs.trace import Span, Tracer, install_tracer

__all__ = [
    "AttributionReport",
    "CATEGORIES",
    "Span",
    "Tracer",
    "absorb_tracer_states",
    "attribute_trace",
    "build_attribution_report",
    "capture_active",
    "capture_traces",
    "critical_path",
    "export_chrome_trace",
    "install_tracer",
    "load_chrome_trace",
    "render_span_tree",
    "reset_capture",
    "tracing_settings",
]
