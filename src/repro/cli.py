"""Command-line interface: run any reproduced experiment by name.

::

    python -m repro list
    python -m repro run figure8 --seed 7
    python -m repro run table2
    python -m repro run all
    python -m repro chaos mixed
    python -m repro run endtoend --trace-out trace.json
    python -m repro spans trace.json --tree 2

Each experiment prints its result in the paper's shape (the same
renderers the benchmarks use).  ``--quick`` runs the reduced scales the
unit tests use; the default is full benchmark scale.

Two unrelated things are both called "trace" here, so to be precise:
``trace`` (the subcommand) generates or analyzes a synthetic *workload*
trace — a list of HTTP requests to feed the simulator.  ``--trace-out``
and the ``spans`` subcommand deal with *span* traces — per-request
causal timelines recorded by :mod:`repro.obs` during a run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import (
    run_cache_size_sweep,
    run_economics,
    run_endtoend,
    run_fault_timeline,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_flash_crowd,
    run_frontend_state,
    run_hotbot_degradation,
    run_hotbot_throughput,
    run_manager_capacity,
    run_policy_sweep,
    run_population_sweep,
    run_san_saturation,
    run_table1,
    run_table2,
)

#: name -> (description, full-scale runner, quick runner).
#: Runners take (seed, jobs) and return printable text; experiments
#: without independent inner units simply ignore ``jobs``.  Runners of
#: the experiments in :data:`POLICY_AWARE` additionally accept a
#: ``policy`` keyword (the ``--policy`` flag).
EXPERIMENTS: Dict[str, Tuple[str, Callable, Callable]] = {
    "figure5": (
        "content-size distributions (Figure 5)",
        lambda seed, jobs=1: run_figure5(100_000, seed),
        lambda seed, jobs=1: run_figure5(20_000, seed),
    ),
    "figure6": (
        "request-rate burstiness (Figure 6)",
        lambda seed, jobs=1: run_figure6(86_400.0, seed),
        lambda seed, jobs=1: run_figure6(4 * 3600.0, seed),
    ),
    "figure7": (
        "distillation latency vs size (Figure 7)",
        lambda seed, jobs=1: run_figure7(100_000, seed),
        lambda seed, jobs=1: run_figure7(20_000, seed),
    ),
    "figure8": (
        "self-tuning and fault recovery (Figure 8)",
        lambda seed, jobs=1: run_figure8(seed=seed, peak_rate_rps=60.0),
        lambda seed, jobs=1: run_figure8(duration_s=200.0,
                                         kill_at_s=120.0, seed=seed),
    ),
    "table1": (
        "TranSend vs HotBot differences (Table 1)",
        lambda seed, jobs=1: run_table1(),
        lambda seed, jobs=1: run_table1(),
    ),
    "table2": (
        "scalability sweep (Table 2)",
        lambda seed, jobs=1: run_table2(seed=seed),
        lambda seed, jobs=1: run_table2(rates=(15, 35, 55, 75, 95),
                                        step_duration_s=20.0,
                                        seed=seed),
    ),
    "cache": (
        "cache-size hit-rate sweep (Section 4.4)",
        lambda seed, jobs=1: run_cache_size_sweep(seed=seed, jobs=jobs),
        lambda seed, jobs=1: run_cache_size_sweep(
            n_users=300, n_requests=25_000, seed=seed, jobs=jobs),
    ),
    "population": (
        "population hit-rate sweep (Section 4.4)",
        lambda seed, jobs=1: run_population_sweep(seed=seed, jobs=jobs),
        lambda seed, jobs=1: run_population_sweep(
            populations=(25, 100, 400, 1600),
            requests_per_user=40, seed=seed, jobs=jobs),
    ),
    "frontend-state": (
        "front-end state accounting (Section 4.4)",
        lambda seed, jobs=1: run_frontend_state(seed=seed),
        lambda seed, jobs=1: run_frontend_state(rate_rps=10.0,
                                                duration_s=90.0,
                                                seed=seed),
    ),
    "manager": (
        "manager announcement capacity (Section 4.6)",
        lambda seed, jobs=1: run_manager_capacity(seed=seed),
        lambda seed, jobs=1: run_manager_capacity(duration_s=10.0,
                                                  seed=seed),
    ),
    "san": (
        "SAN saturation + utility-network remedy (Section 4.6)",
        lambda seed, jobs=1: run_san_saturation(seed=seed, jobs=jobs),
        lambda seed, jobs=1: run_san_saturation(duration_s=30.0,
                                                seed=seed, jobs=jobs),
    ),
    "faults": (
        "process-peer fault timeline (Section 3.1.3)",
        lambda seed, jobs=1: run_fault_timeline(seed=seed),
        lambda seed, jobs=1: run_fault_timeline(rate_rps=10.0,
                                                seed=seed),
    ),
    "hotbot": (
        "HotBot graceful degradation",
        lambda seed, jobs=1: run_hotbot_degradation(seed=seed),
        lambda seed, jobs=1: run_hotbot_degradation(n_nodes=8,
                                                    n_docs=800,
                                                    seed=seed),
    ),
    "hotbot-throughput": (
        "HotBot 'millions of queries per day'",
        lambda seed, jobs=1: run_hotbot_throughput(seed=seed),
        lambda seed, jobs=1: run_hotbot_throughput(
            offered_qps=30.0, duration_s=20.0, n_workers=8,
            n_docs=1500, seed=seed),
    ),
    "policies": (
        "routing-policy tail-latency sweep (repro.balance)",
        lambda seed, jobs=1, policy=None: run_policy_sweep(
            policies=[policy] if policy else None,
            seed=seed, jobs=jobs),
        lambda seed, jobs=1, policy=None: run_policy_sweep(
            policies=[policy] if policy else None,
            n_requests=20_000, seed=seed, jobs=jobs),
    ),
    "economics": (
        "economic feasibility (Section 5.2)",
        lambda seed, jobs=1: run_economics(seed=seed),
        lambda seed, jobs=1: run_economics(n_users=100,
                                           n_requests=5_000, seed=seed),
    ),
    "endtoend": (
        "end-to-end latency reduction (the Section 1.1 headline)",
        lambda seed, jobs=1: run_endtoend(seed=seed),
        lambda seed, jobs=1: run_endtoend(n_requests=150, seed=seed),
    ),
    "flash-crowd": (
        "brownout controller vs binary shed under a 10x burst "
        "(repro.degrade)",
        lambda seed, jobs=1: run_flash_crowd(seed=seed, jobs=jobs),
        lambda seed, jobs=1: run_flash_crowd(seed=seed, jobs=jobs),
    ),
}

#: experiments whose runners accept the ``--policy`` override.
POLICY_AWARE = frozenset({"policies"})


def _render(result) -> str:
    """Best-effort rendering: experiment results know how to render
    themselves; plain strings (Table 1, economics) already are text."""
    if isinstance(result, str):
        return result
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    return repr(result)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Cluster-Based Scalable Network "
                    "Services' (SOSP 1997) experiments.")
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment name from 'list', or 'all'")
    run_parser.add_argument("--seed", type=int, default=1997,
                            help="master RNG seed (default 1997)")
    run_parser.add_argument("--quick", action="store_true",
                            help="reduced scale for a fast look")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="fan independent simulation units "
                                 "across N worker processes (output is "
                                 "byte-identical to --jobs 1; "
                                 "default 1: serial)")
    run_parser.add_argument("--policy", default=None, metavar="SPEC",
                            help="routing-policy spec for the "
                                 "'policies' experiment: run only that "
                                 "arm (e.g. 'p2c', 'ewma+eject'; see "
                                 "repro.balance)")
    run_parser.add_argument("--export", metavar="DIR", default=None,
                            help="also write <DIR>/<name>.json with the "
                                 "raw result data")
    run_parser.add_argument("--trace-out", metavar="FILE", default=None,
                            help="record span traces during the run and "
                                 "write them to FILE as Chrome "
                                 "trace_event JSON (open in Perfetto); "
                                 "also prints a latency-attribution "
                                 "report")
    run_parser.add_argument("--sample", type=int, default=1,
                            metavar="N",
                            help="with --trace-out, sample every Nth "
                                 "request (default 1: every request)")
    chaos_parser = subparsers.add_parser(
        "chaos", help="run a chaos campaign under invariant checking")
    chaos_parser.add_argument(
        "campaign", nargs="?", default=None,
        help="campaign name (omit or 'list' to see them)")
    chaos_parser.add_argument(
        "--campaign", dest="campaign_opt", default=None, metavar="NAME",
        help="campaign name as a flag (equivalent to the positional)")
    chaos_parser.add_argument("--seed", type=int, default=1997,
                              help="master RNG seed (default 1997)")
    chaos_parser.add_argument("--runs", type=int, default=1,
                              metavar="N",
                              help="run the campaign N times with "
                                   "derived seeds and report the "
                                   "batch (default 1)")
    chaos_parser.add_argument("--jobs", type=int, default=1,
                              metavar="N",
                              help="fan batch runs across N worker "
                                   "processes (byte-identical to "
                                   "--jobs 1; default 1: serial)")
    chaos_parser.add_argument("--profile-backend", default=None,
                              choices=["single", "dstore"],
                              help="override the campaign's profile "
                                   "store: 'single' (WAL store) or "
                                   "'dstore' (replicated bricks); "
                                   "default: the campaign's own "
                                   "setting")
    chaos_parser.add_argument("--manager-backend", default=None,
                              choices=["soft", "consensus"],
                              help="override the campaign's control "
                                   "plane: 'soft' (the paper's single "
                                   "soft-state manager) or 'consensus' "
                                   "(the Paxos-replicated manager "
                                   "group); default: the campaign's "
                                   "own setting")
    chaos_parser.add_argument("--policy", default=None, metavar="SPEC",
                              help="override the campaign's "
                                   "worker-selection policy (a "
                                   "repro.balance spec, e.g. 'p2c' or "
                                   "'ewma+eject'); works under either "
                                   "--manager-backend; default: the "
                                   "config's lottery")
    chaos_parser.add_argument("--quiet", action="store_true",
                              help="suppress the per-run progress "
                                   "lines on stderr")
    chaos_parser.add_argument("--trace-out", metavar="FILE",
                              default=None,
                              help="record span traces during the "
                                   "campaign and write Chrome "
                                   "trace_event JSON to FILE; "
                                   "violations then carry the "
                                   "offending request's span tree")
    chaos_parser.add_argument("--sample", type=int, default=1,
                              metavar="N",
                              help="with --trace-out, sample every Nth "
                                   "request (default 1)")
    spans_parser = subparsers.add_parser(
        "spans", help="summarize a span-trace file written by "
                      "'run --trace-out' (per-request causal "
                      "timelines, not workload traces)")
    spans_parser.add_argument("file", help="Chrome trace_event JSON "
                                           "file from --trace-out")
    spans_parser.add_argument("--tree", type=int, default=0,
                              metavar="N",
                              help="also render the N slowest span "
                                   "trees with their critical paths")
    replay_parser = subparsers.add_parser(
        "replay", help="replay a generated trace end-to-end, "
                       "optionally time-sharded across worker "
                       "processes (--jobs N splits ONE run into "
                       "contiguous windows)")
    replay_parser.add_argument("--duration", type=float, default=60.0,
                               help="trace span in seconds "
                                    "(default 60)")
    replay_parser.add_argument("--rate", type=float, default=2000.0,
                               help="mean request rate in req/s "
                                    "(default 2000)")
    replay_parser.add_argument("--seed", type=int, default=1997,
                               help="master RNG seed (default 1997)")
    replay_parser.add_argument("--jobs", type=int, default=1,
                               metavar="N",
                               help="time-shard the single replay "
                                    "across N worker processes "
                                    "(default 1: serial)")
    replay_parser.add_argument("--windows", type=int, default=None,
                               metavar="K",
                               help="number of time windows "
                                    "(default: one per job)")
    replay_parser.add_argument("--warmup", type=float, default=2.0,
                               metavar="S",
                               help="uncounted lead-in seconds "
                                    "replayed before each non-initial "
                                    "window (default 2)")
    replay_parser.add_argument("--check", action="store_true",
                               help="also run the serial reference "
                                    "and verify the drift contract "
                                    "(exact counts, toleranced mean "
                                    "latency)")
    replay_parser.add_argument("--tolerance", type=float, default=0.05,
                               help="relative mean-latency tolerance "
                                    "for --check (default 0.05)")
    trace_parser = subparsers.add_parser(
        "trace", help="generate or analyze a synthetic workload trace "
                      "(HTTP request list; for per-request span "
                      "traces see 'run --trace-out' and 'spans')")
    trace_parser.add_argument("--duration", type=float, default=3600.0,
                              help="trace span in seconds "
                                   "(default 3600)")
    trace_parser.add_argument("--rate", type=float, default=5.8,
                              help="mean request rate (default 5.8, "
                                   "the Berkeley dialup average)")
    trace_parser.add_argument("--seed", type=int, default=1997)
    trace_parser.add_argument("--out", metavar="FILE", default=None,
                              help="write the trace to FILE "
                                   "(tab-separated)")
    trace_parser.add_argument("--analyze", metavar="FILE", default=None,
                              help="analyze an existing trace file "
                                   "instead of generating")
    return parser


def list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name in sorted(EXPERIMENTS):
        description = EXPERIMENTS[name][0]
        lines.append(f"  {name.ljust(width)}  {description}")
    lines.append(f"  {'all'.ljust(width)}  run every experiment")
    return "\n".join(lines)


def run_experiment(name: str, seed: int, quick: bool,
                   export_dir: Optional[str] = None,
                   jobs: int = 1,
                   policy: Optional[str] = None) -> str:
    description, full, fast = EXPERIMENTS[name]
    runner = fast if quick else full
    if policy is not None:
        result = runner(seed, jobs, policy=policy)
    else:
        result = runner(seed, jobs)
    header = f"=== {name}: {description} (seed {seed}) ==="
    text = header + "\n" + _render(result)
    if export_dir is not None:
        from repro.analysis.export import export_result
        path = export_result(name, result, export_dir)
        text += f"\n[exported {path}]"
    return text


def _run_names(names, args) -> bool:
    """Run the selected experiments; returns True if any shard failed.

    With ``--jobs N`` and several experiments, each experiment becomes
    one shard (the inner sweeps then stay serial so the pool is not
    nested); a single experiment instead passes ``jobs`` down to its
    own sweep.  Results print in name order either way.
    """
    jobs = getattr(args, "jobs", 1)
    policy = getattr(args, "policy", None)
    if jobs > 1 and len(names) > 1:
        from repro.fanout import ShardSpec, run_sharded

        specs = [
            ShardSpec(shard_id=f"run[{name}]", fn=run_experiment,
                      kwargs=dict(name=name, seed=args.seed,
                                  quick=args.quick,
                                  export_dir=args.export,
                                  policy=policy))
            for name in names
        ]
        sweep = run_sharded(specs, jobs=jobs)
        for result in sweep.results:
            if result.ok:
                print(result.value)
                print()
            else:
                print(f"[{result.shard_id} failed: {result.error}]",
                      file=sys.stderr)
        if not sweep.complete:
            print(f"[harvest {sweep.harvest:.0%}: "
                  f"{len(sweep.failed)} of {sweep.total} "
                  f"experiment(s) failed]", file=sys.stderr)
            return True
        return False
    for name in names:
        print(run_experiment(name, args.seed, args.quick, args.export,
                             jobs=jobs, policy=policy))
        print()
    return False


def _finish_tracing(tracers, out_path: str) -> None:
    """Write the Chrome trace file and print the attribution report."""
    from repro.obs import build_attribution_report, export_chrome_trace

    count = export_chrome_trace(tracers, out_path)
    print(build_attribution_report(tracers).render())
    print(f"[wrote {count} span event(s) to {out_path}]")


def _check_policy_spec(spec: str) -> Optional[str]:
    """Validate a ``--policy`` spec up front; returns the error text
    (with the available specs) or None when the spec parses."""
    from repro.balance import PolicyError, available_policies, \
        parse_policy_spec
    try:
        parse_policy_spec(spec)
    except PolicyError as error:
        return (f"{error}\navailable policies: "
                f"{', '.join(available_policies())} "
                f"(wrappers: +eject)")
    return None


def chaos_command(args) -> int:
    """Run a chaos campaign; nonzero exit if any invariant broke."""
    from repro.chaos import CAMPAIGNS, CampaignRunner, get_campaign

    name = args.campaign
    option = getattr(args, "campaign_opt", None)
    if name is not None and option is not None and name != option:
        print(f"conflicting campaign names {name!r} and {option!r}",
              file=sys.stderr)
        return 2
    if name is None:
        name = option
    if name is None or name == "list":
        width = max(len(name) for name in CAMPAIGNS)
        print("available campaigns:")
        for name in sorted(CAMPAIGNS):
            print(f"  {name.ljust(width)}  "
                  f"{CAMPAIGNS[name]().description}")
        return 0
    try:
        campaign = get_campaign(name)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    backend = getattr(args, "profile_backend", None)
    if backend is not None:
        campaign.profile_backend = backend
    manager_backend = getattr(args, "manager_backend", None)
    if manager_backend is not None:
        campaign.manager_backend = manager_backend
    policy = getattr(args, "policy", None)
    if policy is not None:
        error = _check_policy_spec(policy)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
        campaign.routing_policy = policy
    runs = getattr(args, "runs", 1)
    jobs = getattr(args, "jobs", 1)
    if runs > 1 or jobs > 1:
        return _chaos_batch(name, args, runs, jobs)
    if args.trace_out is not None:
        from repro.obs import capture_traces
        with capture_traces(sample_every=args.sample) as tracers:
            report = CampaignRunner(campaign, seed=args.seed).run()
        print(report.render())
        _finish_tracing(tracers, args.trace_out)
    else:
        report = CampaignRunner(campaign, seed=args.seed).run()
        print(report.render())
    return 0 if report.ok else 1


def _chaos_progress(result, n_done: int, n_total: int) -> None:
    """One line per finished run: shard id, seed, verdict."""
    if not result.ok:
        verdict = f"FAILED: {result.error}"
    elif result.value.ok:
        verdict = "ok"
    else:
        verdict = f"VIOLATIONS({len(result.value.violations)})"
    print(f"[{n_done}/{n_total}] {result.shard_id}  {verdict}",
          file=sys.stderr)


def _chaos_batch(name: str, args, runs: int, jobs: int) -> int:
    """Run a campaign batch; nonzero exit if any run failed or any
    invariant broke."""
    from repro.chaos import run_campaign_batch

    progress = None if getattr(args, "quiet", False) else _chaos_progress
    backend = getattr(args, "profile_backend", None)
    manager_backend = getattr(args, "manager_backend", None)
    policy = getattr(args, "policy", None)
    if args.trace_out is not None:
        from repro.obs import capture_traces
        with capture_traces(sample_every=args.sample) as tracers:
            batch = run_campaign_batch(name, master_seed=args.seed,
                                       runs=runs, jobs=jobs,
                                       profile_backend=backend,
                                       manager_backend=manager_backend,
                                       routing_policy=policy,
                                       progress=progress)
        print(batch.render())
        _finish_tracing(tracers, args.trace_out)
    else:
        batch = run_campaign_batch(name, master_seed=args.seed,
                                   runs=runs, jobs=jobs,
                                   profile_backend=backend,
                                   manager_backend=manager_backend,
                                   routing_policy=policy,
                                   progress=progress)
        print(batch.render())
    return 0 if batch.ok else 1


def spans_command(args) -> int:
    """Summarize a span-trace file: attribution plus slowest trees."""
    from repro.obs import (
        AttributionReport,
        critical_path,
        load_chrome_trace,
        render_span_tree,
    )
    from repro.obs.attribution import find_root

    try:
        traces = load_chrome_trace(args.file)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read {args.file!r}: {error}", file=sys.stderr)
        return 2
    report = AttributionReport()
    rows = []
    for trace_id, spans in sorted(traces.items()):
        report.add_trace(trace_id, spans)
        root = find_root(spans)
        if root is not None:
            rows.append((root.duration, trace_id, spans))
    total_spans = sum(len(spans) for spans in traces.values())
    print(f"{args.file}: {len(traces)} trace(s), "
          f"{total_spans} span(s)")
    print(report.render())
    rows.sort(key=lambda row: (-row[0], row[1]))
    for duration, trace_id, spans in rows[:max(args.tree, 0)]:
        print()
        print(f"--- {trace_id} ({duration * 1000:.1f}ms) ---")
        print(render_span_tree(spans))
        path = critical_path(spans)
        if path:
            print("critical path: " + " -> ".join(
                f"{span.name} {(right - left) * 1000:.1f}ms"
                for span, left, right in path))
    return 0


def trace_command(args) -> int:
    """Generate a synthetic trace, or analyze one from disk."""
    from repro.workload.burstiness import burstiness_report
    from repro.workload.trace import load_trace, save_trace
    from repro.workload.tracegen import TraceGenerator

    if args.analyze is not None:
        records = load_trace(args.analyze)
        source = args.analyze
    else:
        generator = TraceGenerator(seed=args.seed,
                                   mean_rate_rps=args.rate)
        records = generator.generate(args.duration)
        source = (f"generated: {args.duration:g}s at ~{args.rate:g} "
                  f"req/s, seed {args.seed}")
        if args.out is not None:
            count = save_trace(records, args.out)
            print(f"wrote {count} records to {args.out}")
    if not records:
        print("trace is empty")
        return 0
    by_mime: dict = {}
    for record in records:
        stats = by_mime.setdefault(record.mime, [0, 0])
        stats[0] += 1
        stats[1] += record.size_bytes
    clients = len({record.client_id for record in records})
    span = records[-1].timestamp - records[0].timestamp
    print(f"trace: {source}")
    print(f"  {len(records)} requests over {span:.0f}s from "
          f"{clients} clients")
    for mime in sorted(by_mime):
        count, total_bytes = by_mime[mime]
        print(f"  {mime:<26} {count / len(records):6.1%}  "
              f"mean {total_bytes / count:8.0f} B")
    for scale, stats in sorted(
            burstiness_report(records).items(), reverse=True):
        print(f"  {scale:g}s buckets: avg {stats['avg_rps']:.1f} "
              f"req/s, peak {stats['peak_rps']:.1f}, dispersion "
              f"{stats['dispersion']:.1f}")
    return 0


def replay_command(args) -> int:
    """Run one (optionally time-sharded) end-to-end trace replay."""
    import time as _time

    from repro.fanout.timeshard import (
        ReplaySpec,
        drift_check,
        replay_serial,
        replay_sharded,
    )

    spec = ReplaySpec(duration_s=args.duration,
                      seed=args.seed,
                      mean_rate_rps=args.rate,
                      warmup_s=args.warmup)
    start = _time.perf_counter()
    if args.jobs <= 1 and args.windows is None:
        merged = replay_serial(spec)
        windows = [merged]
    else:
        result = replay_sharded(spec, jobs=args.jobs,
                                n_windows=args.windows)
        merged = result.merged
        windows = result.windows
    elapsed = _time.perf_counter() - start

    mean_ms = (merged.mean_latency or 0.0) * 1e3
    print(f"replay: {merged.submitted} requests over "
          f"{spec.duration_s:g}s trace, {len(windows)} window(s), "
          f"jobs={args.jobs}")
    print(f"  completed {merged.completed}, failed {merged.failed}, "
          f"mean latency {mean_ms:.3f} ms")
    print(f"  wall {elapsed:.2f}s "
          f"({merged.submitted / elapsed:,.0f} req/s)")
    for window in windows if len(windows) > 1 else []:
        print(f"  [{window.start_s:g}, {window.end_s:g}): "
              f"{window.submitted} submitted, "
              f"max in-flight {window.max_in_flight}")
    if args.check and len(windows) > 1:
        serial = replay_serial(spec)
        report = drift_check(serial, merged,
                             latency_tolerance=args.tolerance)
        for line in report.checks:
            print(f"  drift: {line}")
        if not report.ok:
            print("drift contract VIOLATED")
            return 1
        print("drift contract ok")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command is None or args.command == "list":
            print(list_experiments())
            return 0
        if args.command == "chaos":
            return chaos_command(args)
        if args.command == "trace":
            return trace_command(args)
        if args.command == "spans":
            return spans_command(args)
        if args.command == "replay":
            return replay_command(args)
        if args.experiment == "all":
            names = sorted(EXPERIMENTS)
        elif args.experiment in EXPERIMENTS:
            names = [args.experiment]
        else:
            print(f"unknown experiment {args.experiment!r}\n",
                  file=sys.stderr)
            print(list_experiments(), file=sys.stderr)
            return 2
        if args.policy is not None:
            unsupported = [name for name in names
                           if name not in POLICY_AWARE]
            if unsupported:
                print(f"--policy only applies to: "
                      f"{', '.join(sorted(POLICY_AWARE))} "
                      f"(got {', '.join(unsupported)})",
                      file=sys.stderr)
                return 2
            error = _check_policy_spec(args.policy)
            if error is not None:
                print(error, file=sys.stderr)
                return 2
        if args.trace_out is not None:
            from repro.obs import capture_traces
            with capture_traces(sample_every=args.sample) as tracers:
                any_failed = _run_names(names, args)
            _finish_tracing(tracers, args.trace_out)
        else:
            any_failed = _run_names(names, args)
        if any_failed:
            return 1
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like a good CLI
        return 0
    return 0
