"""Section 4.6's manager-capacity experiment.

"Nine hundred distillers were created on four machines.  Each of these
distillers generated a load announcement packet for the manager every
half a second.  The manager was easily able to handle this aggregate
load of 1800 announcements per second.  With each distiller capable of
processing over 20 front end requests per second, the manager is
computationally capable of sustaining a total number of distillers
equivalent to 18000 requests per second."

We register ``n_distillers`` lightweight report sources (real worker
stubs would drown the experiment in service-loop machinery the paper's
measurement deliberately excluded) and check the manager keeps up: all
reports processed, beacons still on schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SNSConfig
from repro.core.messages import REPORT_BYTES, LoadReport, RegisterWorker
from repro.sim.transport import Channel, ChannelClosed

from repro.experiments._harness import build_bench_fabric

PAPER_ANNOUNCEMENTS_PER_S = 1800.0
PAPER_EQUIVALENT_RPS = 18_000.0


@dataclass
class ManagerCapacityResult:
    n_distillers: int
    duration_s: float
    reports_sent: int
    reports_received: int
    announcements_per_s: float
    beacon_interval_observed_s: float
    equivalent_request_rps: float

    @property
    def delivery_rate(self) -> float:
        if self.reports_sent == 0:
            return 0.0
        return self.reports_received / self.reports_sent

    def render(self) -> str:
        return (
            "Manager capacity (Section 4.6)\n"
            f"  distillers registered:      {self.n_distillers}\n"
            f"  announcement rate:          "
            f"{self.announcements_per_s:.0f}/s "
            f"(paper: {PAPER_ANNOUNCEMENTS_PER_S:.0f}/s)\n"
            f"  reports processed:          {self.delivery_rate:.1%}\n"
            f"  observed beacon interval:   "
            f"{self.beacon_interval_observed_s:.3f}s\n"
            f"  equivalent offered load:    "
            f"{self.equivalent_request_rps:.0f} req/s "
            f"(paper: {PAPER_EQUIVALENT_RPS:.0f})"
        )


class _ReportSource:
    """A minimal fake distiller: registers, then reports on schedule."""

    def __init__(self, fabric, index: int, interval_s: float) -> None:
        self.fabric = fabric
        self.name = f"fake-distiller-{index}"
        self.interval_s = interval_s
        self.sent = 0
        self.env = fabric.cluster.env
        self.env.process(self._run(index))

    def _run(self, index: int):
        # stagger start so 900 reports do not land in one instant
        yield self.env.timeout((index % 100) * self.interval_s / 100.0)
        manager = self.fabric.manager
        channel = Channel(self.env, self.fabric.cluster.network,
                          self.name, manager.name)
        registration = RegisterWorker(
            worker_name=self.name, worker_type="jpeg-distiller",
            node_name=f"loadgen{index % 4}", stub=None)
        if not manager.accept_worker(registration, channel.b):
            return
        while True:
            yield self.env.timeout(self.interval_s)
            try:
                channel.a.send(LoadReport(
                    worker_name=self.name,
                    worker_type="jpeg-distiller",
                    node_name=f"loadgen{index % 4}",
                    queue_length=1,
                    weighted_load=0.04,
                    sent_at=self.env.now,
                ), size_bytes=REPORT_BYTES)
            except ChannelClosed:
                return


def run_manager_capacity(
    n_distillers: int = 900,
    duration_s: float = 20.0,
    report_interval_s: float = 0.5,
    seed: int = 1997,
) -> ManagerCapacityResult:
    config = SNSConfig(report_interval_s=report_interval_s,
                       worker_timeout_s=duration_s * 10,
                       spawn_threshold=1e9)
    fabric = build_bench_fabric(n_nodes=6, seed=seed, config=config)
    fabric.start_manager()
    fabric.cluster.run(until=1.0)
    sources = [_ReportSource(fabric, index, report_interval_s)
               for index in range(n_distillers)]
    start_reports = fabric.manager.reports_received
    start_beacons = fabric.manager.beacons_sent
    start_time = fabric.cluster.env.now
    fabric.cluster.run(until=start_time + duration_s)
    received = fabric.manager.reports_received - start_reports
    beacons = fabric.manager.beacons_sent - start_beacons
    sent = sum(source.sent for source in sources)
    # sources do not count sends; estimate from schedule
    expected_sent = int(n_distillers * duration_s / report_interval_s)
    observed_interval = duration_s / beacons if beacons else float("inf")
    return ManagerCapacityResult(
        n_distillers=n_distillers,
        duration_s=duration_s,
        reports_sent=expected_sent,
        reports_received=received,
        announcements_per_s=received / duration_s,
        beacon_interval_observed_s=observed_interval,
        equivalent_request_rps=n_distillers * 20.0,
    )
