"""The headline claim: 3-5x end-to-end latency reduction.

"Real-time, datatype-specific distillation and refinement of inline Web
images results in an end-to-end latency reduction by a factor of 3-5,
giving the user a much more responsive Web surfing experience with only
modest image quality degradation" (Section 1.1).

End-to-end latency for a dialup user is dominated by the modem: a 10 KB
image takes ~2.8 s at 28.8 kbit/s.  Distillation spends tens of
milliseconds of cluster CPU to shrink that to ~1 KB, so the modem leg
collapses.  This driver runs the same image workload through TranSend
twice — distillation on and off — and delivers every response over each
client's modem, measuring true end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import LatencyStats
from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.transend.adaptation import MODEM_14_4_BPS, MODEM_28_8_BPS
from repro.transend.service import TranSend
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import DocumentUniverse, TraceGenerator

PAPER_REDUCTION_LOW = 3.0
PAPER_REDUCTION_HIGH = 5.0


@dataclass
class EndToEndResult:
    distilled_mean_s: float
    distilled_p90_s: float
    original_mean_s: float
    original_p90_s: float
    mean_reduction: float
    bytes_over_modems_distilled: int
    bytes_over_modems_original: int

    def render(self) -> str:
        return (
            "End-to-end latency over the modem bank (the Section 1.1 "
            "headline)\n"
            f"  without TranSend: mean {self.original_mean_s:.2f}s, "
            f"p90 {self.original_p90_s:.2f}s, "
            f"{self.bytes_over_modems_original / 1e6:.1f} MB to modems\n"
            f"  with TranSend:    mean {self.distilled_mean_s:.2f}s, "
            f"p90 {self.distilled_p90_s:.2f}s, "
            f"{self.bytes_over_modems_distilled / 1e6:.1f} MB to modems\n"
            f"  latency reduction: {self.mean_reduction:.1f}x "
            f"(paper: {PAPER_REDUCTION_LOW:.0f}-"
            f"{PAPER_REDUCTION_HIGH:.0f}x)"
        )


class ModemDelivery:
    """Playback adapter that appends the modem leg to every response.

    Clients alternate between the bank's 14.4 and 28.8 kbit/s modems;
    each client's modem is a serial pipe (their next click queues behind
    the current transfer, as real modems do).
    """

    def __init__(self, transend: TranSend) -> None:
        self.transend = transend
        self._modem_busy_until: Dict[str, float] = {}
        self.bytes_delivered = 0

    def modem_bps(self, client_id: str) -> float:
        index = int(client_id.replace("client", "") or 0)
        return MODEM_14_4_BPS if index % 2 == 0 else MODEM_28_8_BPS

    def submit(self, record):
        env = self.transend.cluster.env
        final = env.event()
        root = None
        tracer = env.tracer
        if tracer is not None:
            # peek (not take): the front end downstream consumes the
            # hand-off; we only want the root to hang the modem span on
            pending = tracer.peek_pending()
            if tracer.was_handed_off(pending):
                root = pending
        inner = self.transend.submit(record)
        env.process(self._deliver(record, inner, final, root))
        return final

    def _deliver(self, record, inner, final, root=None):
        env = self.transend.cluster.env
        response = yield inner
        bandwidth = self.modem_bps(record.client_id)
        mark = env.now
        start = max(env.now,
                    self._modem_busy_until.get(record.client_id, 0.0))
        transfer = response.size_bytes / bandwidth
        self._modem_busy_until[record.client_id] = start + transfer
        self.bytes_delivered += response.size_bytes
        yield env.timeout((start - env.now) + transfer)
        if root is not None:
            root.record("modem", "client", mark,
                        bytes=response.size_bytes,
                        bps=int(bandwidth))
        if not final.triggered:
            final.succeed(response)


def _run_arm(distill: bool, n_requests: int, seed: int):
    transend = TranSend(
        n_nodes=10, seed=seed,
        config=SNSConfig(dispatch_timeout_s=8.0,
                         frontend_connection_overhead_s=0.002))
    transend.start(initial_workers={"jpeg-distiller": 2,
                                    "gif-distiller": 2})
    streams = RandomStreams(seed)
    generator = TraceGenerator(
        seed=seed, n_users=40, mean_rate_rps=4.0,
        with_daily_cycle=False, with_bursts=False,
        universe=DocumentUniverse(
            streams.stream("e2e-universe"), n_shared_docs=300,
            shared_fraction=0.8))
    # the full browsing mix: HTML, small icons, and undistillable
    # content ride along unshrunk, exactly as in real surfing — the
    # 3-5x claim is about the overall experience, not one image
    records = generator.generate(n_requests / 4.0)
    if not distill:
        for index in range(40):
            transend.set_preference(f"client{index}",
                                    "distill_images", False)
    delivery = ModemDelivery(transend)
    engine = PlaybackEngine(transend.cluster.env, delivery.submit,
                            rng=streams.stream("e2e-playback"),
                            timeout_s=600.0)
    transend.cluster.env.process(engine.play(records))
    transend.run(until=n_requests / 4.0 + 600.0)
    stats = LatencyStats().extend(engine.latencies())
    return stats, delivery.bytes_delivered


def run_endtoend(n_requests: int = 400, seed: int = 1997
                 ) -> EndToEndResult:
    with_distillation, bytes_distilled = _run_arm(True, n_requests, seed)
    without, bytes_original = _run_arm(False, n_requests, seed)
    return EndToEndResult(
        distilled_mean_s=with_distillation.mean,
        distilled_p90_s=with_distillation.percentile(0.9),
        original_mean_s=without.mean,
        original_p90_s=without.percentile(0.9),
        mean_reduction=(without.mean / with_distillation.mean
                        if with_distillation.mean else 0.0),
        bytes_over_modems_distilled=bytes_distilled,
        bytes_over_modems_original=bytes_original,
    )
