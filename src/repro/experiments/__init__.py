"""Experiment drivers: one module per paper table or figure.

Each driver is a parameterized function returning a structured result
object with a ``render()`` method that prints the paper's shape (rows of
Table 2, the Figure 5 histogram, Figure 8 queue-length series, ...).
DESIGN.md section 4 is the index mapping each experiment to its driver
and its benchmark; EXPERIMENTS.md records paper-claimed vs measured
values from a full run.

Drivers accept scale knobs so the same code serves quick unit tests and
full benchmark runs.
"""

from repro.experiments.figure5_sizes import Figure5Result, run_figure5
from repro.experiments.figure6_burstiness import (
    Figure6Result,
    run_figure6,
)
from repro.experiments.figure7_distiller import (
    Figure7Result,
    run_figure7,
)
from repro.experiments.figure8_selftuning import (
    Figure8Result,
    run_figure8,
)
from repro.experiments.table1_comparison import run_table1
from repro.experiments.table2_scalability import (
    Table2Result,
    run_table2,
)
from repro.experiments.cache_hitrate import (
    CacheStudyResult,
    run_cache_size_sweep,
    run_population_sweep,
)
from repro.experiments.manager_capacity import (
    ManagerCapacityResult,
    run_manager_capacity,
)
from repro.experiments.san_saturation import (
    SanSaturationResult,
    run_san_saturation,
)
from repro.experiments.fault_timeline import (
    FaultTimelineResult,
    run_fault_timeline,
)
from repro.experiments.frontend_state import (
    FrontEndStateResult,
    run_frontend_state,
)
from repro.experiments.hotbot_degradation import (
    HotBotDegradationResult,
    run_hotbot_degradation,
)
from repro.experiments.hotbot_throughput import (
    HotBotThroughputResult,
    run_hotbot_throughput,
)
from repro.experiments.economics import run_economics
from repro.experiments.policy_sweep import (
    PolicySweepResult,
    run_policy_sweep,
)
from repro.experiments.endtoend_latency import (
    EndToEndResult,
    run_endtoend,
)
from repro.experiments.flash_crowd import (
    FlashCrowdResult,
    run_flash_crowd,
)

__all__ = [
    "CacheStudyResult",
    "EndToEndResult",
    "FaultTimelineResult",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "FlashCrowdResult",
    "FrontEndStateResult",
    "HotBotDegradationResult",
    "HotBotThroughputResult",
    "ManagerCapacityResult",
    "PolicySweepResult",
    "SanSaturationResult",
    "Table2Result",
    "run_cache_size_sweep",
    "run_economics",
    "run_endtoend",
    "run_fault_timeline",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_flash_crowd",
    "run_frontend_state",
    "run_hotbot_degradation",
    "run_hotbot_throughput",
    "run_manager_capacity",
    "run_policy_sweep",
    "run_population_sweep",
    "run_san_saturation",
    "run_table1",
    "run_table2",
]
