"""Routing-policy sweep: tail latency and harvest per policy, at scale.

ROADMAP item 1's measurement: replay the *same* million-request
streaming JPEG trace once per routing policy (:mod:`repro.balance`)
against a fixed worker pool, inject one gray-slow worker a quarter of
the way in, and compare p99/p99.9 tails, harvest, and how each policy
copes with the sick worker.  The paper's lottery is the baseline; the
latency-aware policies (p2c, ewma) and the outlier-ejection wrapper are
the modern candidates that should beat it on the tail.

Every arm is an independent simulation on the identical trace (same
seed), so the sweep fans out across processes via ``repro.fanout`` with
byte-identical output at any ``--jobs``.  The supervisor runs in every
arm, deliberately detuned to a slow backstop: the point of passive
outlier ejection is that the *balancer* routes around the gray worker
seconds after the slowdown, long before the supervision layer decides
to restart anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import LatencyStats
from repro.core.config import SNSConfig
from repro.recovery.ledger import RecoveryLedger
from repro.recovery.policy import RecoveryPolicy
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import iter_fixed_jpeg_trace

from repro.experiments._harness import build_bench_fabric, run_grid

#: the default sweep arms: every base policy plus the headline
#: latency-aware + ejection combination.
DEFAULT_POLICIES = (
    "lottery",
    "round-robin",
    "least-outstanding",
    "p2c",
    "ewma",
    "weighted",
    "hash-bounded",
    "ewma+eject",
)


@dataclass
class PolicyArmStats:
    """One policy's run over the shared trace."""

    policy: str
    submitted: int
    completed: int
    ok: int
    fallbacks: int
    client_timeouts: int
    harvest: float
    mean_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_s: float
    dispatch_timeouts: int
    deadline_expiries: int
    retries: int
    #: requests the gray-slow victim served after the injection — the
    #: direct measure of how much traffic the policy kept sending into
    #: the slow worker.
    victim_served_after: int
    ejections: int
    first_ejection_at: Optional[float]
    #: ejections fired before the fault was even injected — background
    #: false positives (queue-noise latency outliers over a long run).
    pre_inject_ejections: int
    #: earliest ejection of the gray-slow victim *at or after* the
    #: injection, across front ends — the "routed around before the
    #: Supervisor moved" moment.  Pre-injection ejections of the same
    #: worker are background noise and count above instead.
    victim_ejected_at: Optional[float]
    supervisor_restarts: int
    fault_detected_at: Optional[float]
    inject_at: float
    duration_s: float


@dataclass
class PolicySweepResult:
    arms: List[PolicyArmStats]
    n_requests: int
    rate_rps: float
    n_workers: int
    slow_factor: float
    seed: int

    def arm(self, policy: str) -> Optional[PolicyArmStats]:
        for arm in self.arms:
            if arm.policy == policy:
                return arm
        return None

    def render(self) -> str:
        header = (
            f"Routing-policy sweep: {self.n_requests} requests @ "
            f"{self.rate_rps:.0f} rps, {self.n_workers} workers, "
            f"one worker fail-slow x{self.slow_factor:.0f} at 25% "
            f"(seed {self.seed})")
        lines = [header, ""]
        columns = (f"  {'policy':<18} {'harvest':>7} {'p50':>7} "
                   f"{'p99':>8} {'p99.9':>8} {'max':>8} {'tmo':>5} "
                   f"{'victim':>6} {'eject':>5} {'eject@':>8} "
                   f"{'restart':>7}")
        lines.append(columns)
        for arm in self.arms:
            eject_at = (f"{arm.victim_ejected_at:8.1f}"
                        if arm.victim_ejected_at is not None
                        else f"{'-':>8}")
            lines.append(
                f"  {arm.policy:<18} {arm.harvest:7.4f} "
                f"{arm.p50_s:7.3f} {arm.p99_s:8.3f} "
                f"{arm.p999_s:8.3f} {arm.max_s:8.3f} "
                f"{arm.dispatch_timeouts:5d} "
                f"{arm.victim_served_after:6d} {arm.ejections:5d} "
                f"{eject_at} {arm.supervisor_restarts:7d}")
        lottery = self.arm("lottery")
        if lottery is not None:
            beats = [arm.policy for arm in self.arms
                     if arm.policy != "lottery"
                     and arm.p99_s < lottery.p99_s]
            lines.append("")
            lines.append(
                f"  beats lottery on p99: "
                f"{', '.join(beats) if beats else 'none'}")
        for arm in self.arms:
            if arm.victim_ejected_at is not None:
                detected = (f"{arm.fault_detected_at:.1f}s"
                            if arm.fault_detected_at is not None
                            else "never")
                noise = (f", {arm.pre_inject_ejections} background "
                         f"ejections before injection"
                         if arm.pre_inject_ejections else "")
                lines.append(
                    f"  {arm.policy}: victim injected at "
                    f"{arm.inject_at:.1f}s, ejected "
                    f"{arm.victim_ejected_at - arm.inject_at:.1f}s "
                    f"later vs supervisor detection at {detected} "
                    f"({arm.supervisor_restarts} restarts{noise})")
        return "\n".join(lines)


def _backstop_recovery_policy() -> RecoveryPolicy:
    """Supervision detuned to a slow backstop, identically in every
    arm: probes sweep rarely and need many confirmations, and the
    stub-report/load-outlier detectors are effectively off, so the
    routing policy gets first crack at the gray worker."""
    return RecoveryPolicy(
        probe_interval_s=30.0,
        probe_confirmations=4,
        rpc_timeout_confirmations=1000,
        outlier_ratio=1e9,
        outlier_floor=1e9,
    )


def run_policy_arm(policy: str, n_requests: int, rate_rps: float,
                   n_workers: int, seed: int, slow_factor: float,
                   image_bytes: int = 10240,
                   inject_fraction: float = 0.25) -> PolicyArmStats:
    """One arm: replay the seed-derived trace under ``policy``.

    Module-level and self-contained (the trace is regenerated from the
    seed inside the arm) so :func:`run_grid` can ship it to a worker
    process.
    """
    config = SNSConfig(
        routing_policy=policy,
        spawn_threshold=1e9,  # fixed pool: policies see stable peers
        dispatch_timeout_s=2.0,
        dispatch_attempts=3,
        dispatch_deadline_s=6.0,
        shed_expired_requests=True,
        frontend_threads=2000,
        frontend_connection_overhead_s=0.001,
    )
    fabric = build_bench_fabric(n_nodes=n_workers + 4, seed=seed,
                                config=config)
    ledger = RecoveryLedger(fabric.cluster.env)
    fabric.boot(n_frontends=2,
                initial_workers={"jpeg-distiller": n_workers})
    fabric.start_supervisor(policy=_backstop_recovery_policy(),
                            ledger=ledger)
    env = fabric.cluster.env
    fabric.cluster.run(until=2.0)

    expected_duration = n_requests / rate_rps
    inject_at = env.now + inject_fraction * expected_duration
    victim_name = sorted(fabric.workers)[0]

    served_at_inject: Dict[str, int] = {}

    def fail_slow():
        yield env.timeout(inject_at - env.now)
        stub = fabric.workers.get(victim_name)
        if stub is not None and stub.alive:
            served_at_inject[victim_name] = stub.served
            ledger.inject("fail-slow", victim_name)
            stub.gray.fail_slow(slow_factor, env.now)

    env.process(fail_slow())

    latency = LatencyStats()
    status_counts: Dict[str, int] = {}

    def on_success(response, latency_s: float) -> None:
        latency.add(latency_s)
        status = getattr(response, "status", "ok")
        status_counts[status] = status_counts.get(status, 0) + 1

    engine = PlaybackEngine(
        env, fabric.submit,
        rng=RandomStreams(seed).stream("policy-playback"),
        timeout_s=30.0, record_outcomes=False, on_success=on_success)
    records = iter_fixed_jpeg_trace(
        rate_rps, n_requests, image_size_bytes=image_bytes, seed=seed)
    started_at = env.now
    playback = env.process(engine.play(records, time_offset=env.now))
    fabric.cluster.run(until=playback)
    fabric.cluster.run(until=env.now + 35.0)  # drain in-flight work

    victim_stub = fabric.workers.get(victim_name)
    victim_served_after = 0
    if victim_stub is not None:
        victim_served_after = (victim_stub.served
                               - served_at_inject.get(victim_name, 0))
    ejections = 0
    pre_inject_ejections = 0
    first_ejection_at: Optional[float] = None
    victim_ejected_at: Optional[float] = None
    for frontend in fabric.frontends.values():
        stats = frontend.stub.policy.stats()
        ejections += stats.get("ejections", 0)
        at = stats.get("first_ejection_at")
        if at is not None and (first_ejection_at is None
                               or at < first_ejection_at):
            first_ejection_at = at
        for times in stats.get("ejection_times", {}).values():
            pre_inject_ejections += sum(1 for t in times
                                        if t < inject_at)
        victim_times = stats.get("ejection_times", {}).get(
            victim_name, ())
        for t in victim_times:
            if t >= inject_at and (victim_ejected_at is None
                                   or t < victim_ejected_at):
                victim_ejected_at = t
    fault_detected_at: Optional[float] = None
    for case in ledger.cases:
        if case.detected_at is not None:
            fault_detected_at = case.detected_at
            break
    stubs = [fe.stub for fe in fabric.frontends.values()]
    stats = engine.stats
    ok = status_counts.get("ok", 0)
    return PolicyArmStats(
        policy=policy,
        submitted=stats.submitted,
        completed=stats.completed,
        ok=ok,
        fallbacks=status_counts.get("fallback", 0),
        client_timeouts=stats.failed,
        harvest=ok / stats.submitted if stats.submitted else 1.0,
        mean_s=latency.mean if latency.count else 0.0,
        p50_s=latency.p50 if latency.count else 0.0,
        p99_s=latency.percentile(0.99) if latency.count else 0.0,
        p999_s=latency.percentile(0.999) if latency.count else 0.0,
        max_s=latency.maximum if latency.count else 0.0,
        dispatch_timeouts=sum(stub.timeouts for stub in stubs),
        deadline_expiries=sum(stub.deadline_expiries for stub in stubs),
        retries=sum(stub.retries for stub in stubs),
        victim_served_after=victim_served_after,
        ejections=ejections,
        first_ejection_at=first_ejection_at,
        pre_inject_ejections=pre_inject_ejections,
        victim_ejected_at=victim_ejected_at,
        supervisor_restarts=(fabric.supervisor.restarts
                             if fabric.supervisor is not None else 0),
        fault_detected_at=fault_detected_at,
        inject_at=inject_at,
        duration_s=env.now - started_at,
    )


def run_policy_sweep(policies: Optional[Sequence[str]] = None,
                     n_requests: int = 1_000_000,
                     rate_rps: float = 160.0,
                     n_workers: int = 8,
                     slow_factor: float = 8.0,
                     seed: int = 1997,
                     jobs: int = 1) -> PolicySweepResult:
    """Replay the shared trace once per policy; ``jobs > 1`` fans the
    arms across worker processes, byte-identical to serial."""
    policies = list(policies or DEFAULT_POLICIES)
    arms = [
        dict(policy=policy, n_requests=n_requests, rate_rps=rate_rps,
             n_workers=n_workers, seed=seed, slow_factor=slow_factor)
        for policy in policies
    ]
    if jobs > 1:
        stats = run_grid(run_policy_arm, arms, jobs=jobs,
                         label="policy").values()
    else:
        stats = [run_policy_arm(**arm) for arm in arms]
    return PolicySweepResult(
        arms=list(stats), n_requests=n_requests, rate_rps=rate_rps,
        n_workers=n_workers, slow_factor=slow_factor, seed=seed)
