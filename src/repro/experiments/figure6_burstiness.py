"""Figure 6: request-rate burstiness across three time scales.

The paper buckets a day of dialup traffic at 2 minutes (avg 5.8 req/s,
peak 12.6), 30 seconds (avg 5.6, peak 10.3 over a 3h20m slice), and
1 second (avg 8.1, peak 20 over 3m20s), and Section 4.2 derives the two
overflow-pool provisioning rules from the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import render_series, render_table
from repro.workload.burstiness import (
    bucket_counts,
    burstiness_report,
    overflow_line_for_fraction,
    utilization_line,
)
from repro.workload.trace import TraceRecord
from repro.workload.tracegen import TraceGenerator

#: Figure 6 caption values (scale seconds -> (avg, peak)).
PAPER_RATES = {120.0: (5.8, 12.6), 30.0: (5.6, 10.3), 1.0: (8.1, 20.0)}


@dataclass
class Figure6Result:
    duration_s: float
    report: Dict[float, Dict[str, float]]
    utilization_70pct_line: float
    overflow_5pct_line: float

    def render(self) -> str:
        rows = []
        for scale in sorted(self.report, reverse=True):
            stats = self.report[scale]
            paper = PAPER_RATES.get(scale, ("-", "-"))
            rows.append([
                f"{scale:g}s",
                paper[0], f"{stats['avg_rps']:.1f}",
                paper[1], f"{stats['peak_rps']:.1f}",
                f"{stats['dispersion']:.1f}",
            ])
        table = render_table(
            ["bucket", "paper avg", "avg req/s", "paper peak",
             "peak req/s", "dispersion"],
            rows,
            title=f"Figure 6 — burstiness over {self.duration_s / 3600:.1f}h "
                  "of synthetic dialup traffic",
        )
        notes = (
            "\nOverflow-pool provisioning (Section 4.2):\n"
            f"  dedicated pool for 70% utilization: "
            f"{self.utilization_70pct_line:.1f} tasks/s\n"
            f"  dedicated pool exceeded 5% of the time at: "
            f"{self.overflow_5pct_line:.1f} tasks/s"
        )
        return table + notes


def run_figure6(duration_s: float = 86_400.0, seed: int = 1997,
                mean_rate_rps: float = 5.8) -> Figure6Result:
    generator = TraceGenerator(seed=seed, mean_rate_rps=mean_rate_rps)
    records = generator.generate(duration_s)
    report = burstiness_report(records, scales_s=(120.0, 30.0, 1.0))
    counts = bucket_counts(records, 120.0)
    return Figure6Result(
        duration_s=duration_s,
        report=report,
        utilization_70pct_line=utilization_line(counts, 120.0, 0.70),
        overflow_5pct_line=overflow_line_for_fraction(counts, 120.0,
                                                      0.05),
    )
