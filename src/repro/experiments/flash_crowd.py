"""Flash-crowd experiment: the brownout controller vs the binary shed.

Runs the two flash-crowd chaos campaigns (:mod:`repro.chaos.campaign`)
— identical topology, identical 10x offered-load burst, identical
degradable service and cost model — differing only in whether the
brownout defenses are armed:

* **controller** — the closed-loop :class:`~repro.degrade.controller.
  DegradationController` walking the ladder, plus the per-front-end
  retry budget and the origin circuit breaker;
* **baseline** — binary admission control only, unlimited retries, no
  breaker: the overload posture the seed repo shipped with.

The comparison is the paper's harvest/yield trade made quantitative:
the controller should hold yield at or above its 0.99 SLO through the
burst by spending harvest (stale serves, low-fidelity distillation,
relaxed quorum reads), while the baseline's retry storm amplifies the
overload into a congestion collapse that outlives the burst.

Arms are independent simulations sharing a seed, so ``jobs=2`` fans
them across processes via :mod:`repro.fanout` with byte-identical
output — the CI drift gate diffs serial against parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.chaos.batch import run_campaign_shard
from repro.chaos.report import ChaosReport
from repro.experiments._harness import run_grid

#: the controller arm's yield SLO (mirrors the campaign's invariant).
CONTROLLER_YIELD_SLO = 0.99
#: the baseline must do *worse* than this for the comparison to mean
#: anything — if binary shedding survives the burst, the burst is too
#: gentle to justify a degradation ladder.
BASELINE_YIELD_CEILING = 0.90

ARMS = ("flash-crowd", "flash-crowd-baseline")


@dataclass
class FlashCrowdResult:
    """Both arms' reports plus the comparison verdict."""

    controller: ChaosReport
    baseline: ChaosReport
    seed: int

    @property
    def controller_held_slo(self) -> bool:
        return (self.controller.overall_yield
                >= CONTROLLER_YIELD_SLO - 1e-12
                and self.controller.ok)

    @property
    def baseline_collapsed(self) -> bool:
        return self.baseline.overall_yield < BASELINE_YIELD_CEILING

    @property
    def ok(self) -> bool:
        return self.controller_held_slo and self.baseline_collapsed

    def _arm_row(self, label: str, report: ChaosReport) -> str:
        return (f"  {label:<12} {report.overall_yield:7.3f} "
                f"{report.min_yield():9.3f} "
                f"{report.overall_harvest:8.3f} "
                f"{report.degraded_replies:9d} "
                f"{report.shed_replies:6d} "
                f"{report.latency.get('p50', 0.0):7.2f} "
                f"{report.latency.get('p99', 0.0):7.2f}")

    def render(self) -> str:
        controller, baseline = self.controller, self.baseline
        lines: List[str] = [
            f"Flash crowd: 10x offered-load burst, brownout controller "
            f"vs binary shed (seed {self.seed})",
            f"  {baseline.description}",
            "",
            f"  {'arm':<12} {'yield':>7} {'min-yield':>9} "
            f"{'harvest':>8} {'degraded':>9} {'shed':>6} "
            f"{'p50':>7} {'p99':>7}",
            self._arm_row("controller", controller),
            self._arm_row("baseline", baseline),
            "",
        ]
        degradation = controller.degradation
        if degradation:
            level_time = ", ".join(
                f"{name} {seconds:.1f}s"
                for name, seconds in degradation["level_time"].items())
            lines.append(
                f"  controller ladder: peak level "
                f"{degradation['peak_level']}, peak pressure "
                f"{degradation['peak_pressure']:.2f}, "
                f"{len(degradation['transitions'])} transition(s); "
                f"{level_time}")
        counters = controller.counters
        lines.append(
            f"  controller defenses: "
            f"{counters.get('stale_served', 0)} stale serves, "
            f"{counters.get('low_fidelity_served', 0)} low-fidelity, "
            f"{counters.get('relaxed_profile_reads', 0)} relaxed "
            f"reads, {counters.get('breaker_opens', 0)} breaker "
            f"open(s) short-circuiting "
            f"{counters.get('breaker_short_circuits', 0)} fetches, "
            f"{counters.get('retry_budget_denials', 0)} retry-budget "
            f"denial(s)")
        base_counters = baseline.counters
        lines.append(
            f"  baseline amplification: "
            f"{base_counters.get('dispatch_retries', 0)} retries, "
            f"{base_counters.get('worker_expired_sheds', 0)} expired "
            f"envelopes shed by workers, recovery "
            + (f"{baseline.recovery_s:.1f}s after the burst"
               if baseline.recovery_s is not None
               else "never within the run"))
        lines.append("")
        slo = (f"held its {CONTROLLER_YIELD_SLO:.2f} yield SLO"
               if self.controller_held_slo
               else f"MISSED its {CONTROLLER_YIELD_SLO:.2f} yield SLO")
        collapse = (f"collapsed below {BASELINE_YIELD_CEILING:.2f}"
                    if self.baseline_collapsed
                    else f"STAYED ABOVE {BASELINE_YIELD_CEILING:.2f} "
                         f"(burst too gentle)")
        lines.append(
            f"  verdict: controller {slo} at "
            f"{controller.overall_yield:.3f}; baseline {collapse} at "
            f"{baseline.overall_yield:.3f}"
            + ("" if self.ok else " -- COMPARISON FAILED"))
        for label, report in (("controller", controller),
                              ("baseline", baseline)):
            lines.append("")
            lines.append(f"--- {label} arm ---")
            lines.append(report.render())
        return "\n".join(lines)


def run_flash_crowd(seed: int = 1997,
                    jobs: int = 1) -> FlashCrowdResult:
    """Run both arms; ``jobs > 1`` fans them across processes,
    byte-identical to serial."""
    arms = [dict(name=name, seed=seed) for name in ARMS]
    if jobs > 1:
        reports = list(run_grid(run_campaign_shard, arms, jobs=jobs,
                                label="flash-crowd").values())
    else:
        reports = [run_campaign_shard(**arm) for arm in arms]
    return FlashCrowdResult(controller=reports[0], baseline=reports[1],
                            seed=seed)
