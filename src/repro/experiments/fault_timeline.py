"""Fault-tolerance timeline (Section 3.1.3).

A scripted run exercising every process-peer mechanism in sequence and
recording what the user would have seen: a distiller dies (routed
around, respawned), the manager dies (service continues on stale hints,
a front end restarts it, workers re-register), a front end dies (the
manager restarts it, client-side balancing masks the gap).  The result
is a timeline plus availability accounting across the whole ordeal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.metrics import summarize_outcomes
from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

from repro.experiments._harness import build_bench_fabric


@dataclass
class FaultTimelineResult:
    timeline: List[Tuple[float, str]]
    success_rate: float
    fallback_count: int
    completed: int
    failed: int
    manager_restarts: int
    frontend_restarts: int
    worker_failures_detected: int

    def render(self) -> str:
        lines = ["Fault-tolerance timeline (Section 3.1.3)"]
        for time, label in self.timeline:
            lines.append(f"  t={time:6.1f}s  {label}")
        lines.append(
            f"\navailability: {self.success_rate:.1%} of requests "
            f"answered ({self.completed} ok, {self.failed} lost, "
            f"{self.fallback_count} approximate)")
        return "\n".join(lines)


def run_fault_timeline(rate_rps: float = 20.0, seed: int = 1997
                       ) -> FaultTimelineResult:
    config = SNSConfig(dispatch_timeout_s=4.0, spawn_damping_s=5.0,
                       frontend_connection_overhead_s=0.001)
    fabric = build_bench_fabric(n_nodes=14, seed=seed, config=config)
    fabric.boot(n_frontends=2, initial_workers={"jpeg-distiller": 2})
    env = fabric.cluster.env
    timeline: List[Tuple[float, str]] = []

    def note(label: str) -> None:
        timeline.append((env.now, label))

    engine = PlaybackEngine(
        env, fabric.submit,
        rng=RandomStreams(seed).stream("fault-playback"),
        timeout_s=20.0)
    pool = [
        TraceRecord(0.0, f"client{index}",
                    f"http://bench/img{index}.jpg", "image/jpeg", 10240)
        for index in range(40)
    ]
    env.process(engine.constant_rate(rate_rps, 120.0, pool))

    def script(env):
        yield env.timeout(20.0)
        victim = fabric.alive_workers()[0]
        victim.kill()
        note(f"killed distiller {victim.name}")
        yield env.timeout(20.0)
        note(f"manager state: {len(fabric.manager.workers)} workers, "
             f"{fabric.manager.worker_failures_detected} failures seen")
        manager = fabric.manager
        manager.kill()
        note(f"killed manager {manager.name}")
        yield env.timeout(15.0)
        note(f"manager now: {fabric.manager.name} "
             f"(incarnation {fabric.manager.incarnation}, "
             f"{len(fabric.manager.workers)} workers re-registered)")
        victim_fe = fabric.alive_frontends()[0]
        victim_fe.kill()
        note(f"killed front end {victim_fe.name}")
        yield env.timeout(15.0)
        note(f"front ends alive: "
             f"{sorted(fe.name for fe in fabric.alive_frontends())}")

    env.process(script(env))
    fabric.cluster.run(until=150.0)
    summary = summarize_outcomes(engine.outcomes)
    fallbacks = sum(1 for outcome in engine.completed()
                    if getattr(outcome.response, "status", "") ==
                    "fallback")
    timeline.sort()
    return FaultTimelineResult(
        timeline=timeline,
        success_rate=summary["success_rate"],
        fallback_count=fallbacks,
        completed=int(summary["ok"]),
        failed=int(summary["failed"]),
        manager_restarts=fabric.manager_restarts,
        frontend_restarts=(fabric.manager.frontend_restarts
                           if fabric.manager else 0),
        worker_failures_detected=(
            fabric.manager.worker_failures_detected),
    )
