"""Figure 8: distiller queue lengths under self-tuning and faults.

The paper's narrative, reproduced event for event: the system boots with
one front end and the manager; the first distiller is spawned on demand
as soon as load is offered; rising load pushes the moving-average queue
length past the threshold H, spawning distillers 2 and 3, each
rebalancing queues within seconds; at t≈270 s the experimenter kills two
distillers, load on the survivor spikes, and the manager immediately
spawns replacements (Figure 8(b)), restabilizing the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import render_series
from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

from repro.experiments._harness import build_bench_fabric


@dataclass
class Figure8Result:
    series: Dict[str, List[Tuple[float, float]]]
    events: List[Tuple[float, str]]
    kill_time: float
    spawn_times: List[float]
    post_kill_recovery_s: Optional[float]
    completed_requests: int
    failed_requests: int

    def render(self) -> str:
        parts = ["Figure 8 — distiller queue lengths over time"]
        for name in sorted(self.series):
            parts.append(render_series(self.series[name], width=60,
                                       height=8, title=f"\n{name}:"))
        parts.append("\nevents:")
        for time, label in self.events:
            parts.append(f"  t={time:6.1f}s  {label}")
        if self.post_kill_recovery_s is not None:
            parts.append(f"\nrecovery after kills: "
                         f"{self.post_kill_recovery_s:.1f}s")
        return "\n".join(parts)


def run_figure8(
    duration_s: float = 400.0,
    kill_at_s: float = 270.0,
    kill_count: int = 2,
    seed: int = 1997,
    config: Optional[SNSConfig] = None,
    peak_rate_rps: float = 40.0,
) -> Figure8Result:
    config = config or SNSConfig(spawn_threshold=10.0,
                                 spawn_damping_s=15.0,
                                 dispatch_timeout_s=8.0)
    fabric = build_bench_fabric(n_nodes=16, seed=seed, config=config)
    fabric.boot(n_frontends=1, initial_workers={})
    env = fabric.cluster.env
    events: List[Tuple[float, str]] = []

    # offered load: four rising steps to the peak, as in Figure 8(a)
    steps = [(duration_s / 5.0, peak_rate_rps * factor)
             for factor in (0.25, 0.5, 0.75, 1.0, 1.0)]
    engine = PlaybackEngine(
        env, fabric.submit,
        rng=RandomStreams(seed).stream("fig8-playback"),
        timeout_s=60.0)
    pool = [
        TraceRecord(0.0, f"client{index}",
                    f"http://bench/img{index}.jpg", "image/jpeg", 10240)
        for index in range(50)
    ]
    env.process(engine.ramp(steps, pool))

    # the manual kills of Figure 8(b)
    def killer(env):
        yield env.timeout(kill_at_s)
        victims = fabric.alive_workers()[:kill_count]
        for victim in victims:
            victim.kill()
            events.append((env.now, f"killed {victim.name}"))

    env.process(killer(env))

    # sample instantaneous queue lengths (what the paper plots)
    series: Dict[str, List[Tuple[float, float]]] = {}
    seen: Dict[str, float] = {}

    def sampler(env):
        while env.now < duration_s:
            yield env.timeout(2.0)
            for stub in fabric.alive_workers():
                if stub.name not in seen:
                    seen[stub.name] = env.now
                    events.append((env.now, f"{stub.name} started"))
                series.setdefault(stub.name, []).append(
                    (env.now, float(stub.load)))

    env.process(sampler(env))
    fabric.cluster.run(until=duration_s + 60.0)

    # recovery: first time after the kills when the max live queue is
    # back under the spawn threshold
    recovery: Optional[float] = None
    times = sorted({t for points in series.values() for t, _ in points})
    for time in times:
        if time <= kill_at_s + 2.0:
            continue
        loads = [value for points in series.values()
                 for t, value in points if t == time]
        if loads and max(loads) < config.spawn_threshold:
            recovery = time - kill_at_s
            break

    events.sort()
    return Figure8Result(
        series=series,
        events=events,
        kill_time=kill_at_s,
        spawn_times=sorted(seen.values()),
        post_kill_recovery_s=recovery,
        completed_requests=len(engine.completed()),
        failed_requests=len(engine.failed()),
    )
