"""Figure 5: distribution of content lengths for HTML, GIF, and JPEG.

Paper facts reproduced: mean sizes (HTML 5131 B, GIF 3428 B, JPEG
12070 B), the bimodal GIF shape with its icon plateau below the 1 KB
distillation threshold, the JPEG fall-off under 1 KB, and the MIME mix
(GIF 50 %, HTML 22 %, JPEG 18 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import render_histogram, render_table
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG
from repro.workload.distributions import size_histogram
from repro.workload.tracegen import TraceGenerator

#: Figure 5 caption values.
PAPER_MEANS = {MIME_HTML: 5131, MIME_GIF: 3428, MIME_JPEG: 12070}
PAPER_SHARES = {MIME_GIF: 0.50, MIME_HTML: 0.22, MIME_JPEG: 0.18}


@dataclass
class Figure5Result:
    n_records: int
    means: Dict[str, float]
    shares: Dict[str, float]
    gif_fraction_below_1kb: float
    jpeg_fraction_below_1kb: float
    histograms: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict)

    def render(self) -> str:
        rows = []
        for mime in (MIME_HTML, MIME_GIF, MIME_JPEG):
            rows.append([
                mime,
                f"{PAPER_MEANS[mime]}",
                f"{self.means.get(mime, 0):.0f}",
                f"{PAPER_SHARES.get(mime, 0):.0%}",
                f"{self.shares.get(mime, 0):.0%}",
            ])
        table = render_table(
            ["MIME type", "paper mean B", "measured mean B",
             "paper share", "measured share"],
            rows,
            title=f"Figure 5 — content sizes over {self.n_records} "
                  "synthetic requests",
        )
        gif_hist = render_histogram(
            [(f"{center:8.0f}B", mass)
             for center, mass in self.histograms.get(MIME_GIF, [])
             if mass > 0],
            width=40,
            title="\nGIF size distribution (note the two plateaus "
                  "around 1 KB):",
        )
        notes = (f"\nGIF fraction under 1 KB: "
                 f"{self.gif_fraction_below_1kb:.0%} "
                 f"(the icon plateau)\n"
                 f"JPEG fraction under 1 KB: "
                 f"{self.jpeg_fraction_below_1kb:.1%} "
                 "(falls off rapidly)")
        return table + "\n" + gif_hist + notes


def run_figure5(n_records: int = 100_000, seed: int = 1997
                ) -> Figure5Result:
    """Sample the content population and measure what Figure 5 plots.

    Figure 5 is the distribution of content lengths per MIME type; we
    draw documents directly from the calibrated mix and size models
    (drawing *requests* instead would re-weight sizes by Zipf document
    popularity — realistic, but a different and noisier statistic).
    """
    from repro.sim.rng import RandomStreams
    from repro.workload.distributions import (
        default_mime_mix,
        default_size_models,
    )

    rng = RandomStreams(seed).stream("figure5")
    mime_mix = default_mime_mix()
    size_models = default_size_models()
    by_mime: Dict[str, List[int]] = {}
    for _ in range(n_records):
        mime = mime_mix.sample(rng)
        by_mime.setdefault(mime, []).append(size_models[mime].sample(rng))
    total = n_records
    means = {
        mime: sum(sizes) / len(sizes)
        for mime, sizes in by_mime.items()
    }
    shares = {mime: len(sizes) / total for mime, sizes in by_mime.items()}
    gif_sizes = by_mime.get(MIME_GIF, [])
    jpeg_sizes = by_mime.get(MIME_JPEG, [])
    return Figure5Result(
        n_records=total,
        means=means,
        shares=shares,
        gif_fraction_below_1kb=(
            sum(1 for size in gif_sizes if size < 1024)
            / max(1, len(gif_sizes))),
        jpeg_fraction_below_1kb=(
            sum(1 for size in jpeg_sizes if size < 1024)
            / max(1, len(jpeg_sizes))),
        histograms={
            mime: size_histogram(sizes)
            for mime, sizes in by_mime.items()
        },
    )
