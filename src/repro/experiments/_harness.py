"""Shared experiment harness: a minimal distillation service on the SNS
fabric, used by the Figure 8 / Table 2 / SAN-saturation drivers.

This is deliberately thinner than full TranSend: the scalability
experiments in Section 4.6 bypass cache misses by construction ("these
images would then remain resident in the cache partitions"), so the
harness charges a flat cache-hit cost instead of running cache nodes,
keeping the measured bottlenecks exactly the ones the paper varied
(distillers, front ends, SAN).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.core.config import SNSConfig
from repro.core.fabric import SNSFabric
from repro.core.frontend import Response
from repro.core.manager_stub import DispatchError
from repro.distillers.jpeg import JpegDistiller
from repro.sim.cluster import Cluster
from repro.sim.network import MBPS
from repro.tacc.content import Content, zero_payload
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest, WorkerError

#: flat per-request cache-hit cost (the resident-original lookup).
CACHE_HIT_S = 0.027


def run_grid(point_fn: Callable[..., Any],
             points: Sequence[Mapping[str, Any]],
             jobs: int = 1, *, label: str = "grid",
             timeout_s: Optional[float] = None, retries: int = 0,
             progress=None):
    """Fan the independent grid points of an experiment sweep across
    worker processes (:mod:`repro.fanout`).

    Each point is one kwargs mapping for the **module-level**
    ``point_fn``; results come back in point order regardless of
    completion order, so a sweep assembled from the returned
    :meth:`~repro.fanout.SweepResult.values` is byte-identical at any
    ``jobs``.  Grid points must be self-contained (they rebuild any
    shared input, e.g. a workload trace, from the seed inside the
    shard) — that is what makes them safe to run anywhere.
    """
    from repro.fanout import ShardSpec, run_sharded

    specs = []
    for index, point in enumerate(points):
        detail = ",".join(f"{key}={point[key]}" for key in point)
        specs.append(ShardSpec(
            shard_id=f"{label}[{index}]({detail})",
            fn=point_fn, kwargs=dict(point)))
    return run_sharded(specs, jobs=jobs, timeout_s=timeout_s,
                       retries=retries, progress=progress)


class JpegBenchService:
    """Distill every request through the JPEG distiller; fall back to
    the original on dispatch failure."""

    worker_type = JpegDistiller.worker_type

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._estimator = JpegDistiller()

    def handle(self, frontend, record):
        trace = frontend.current_trace
        mark = self.cluster.env.now
        yield self.cluster.env.timeout(CACHE_HIT_S)
        if trace is not None:
            trace.record("cache-hit", "cache", mark, hit=True)
        content = Content(record.url, record.mime,
                          zero_payload(record.size_bytes))
        request = TACCRequest(inputs=[content], params={},
                              user_id=record.client_id)
        expected = self._estimator.work_estimate(request)
        try:
            result = yield from frontend.stub.dispatch(
                request, self.worker_type, content.size,
                expected_cost_s=expected, trace=trace)
        except (DispatchError, WorkerError):
            return Response(status="fallback", path="original",
                            content=content, size_bytes=content.size)
        return Response(status="ok", path="distilled", content=result,
                        size_bytes=result.size)


def build_bench_fabric(
    n_nodes: int = 20,
    n_overflow: int = 0,
    seed: int = 1997,
    config: Optional[SNSConfig] = None,
    san_bandwidth_bps: float = 100 * MBPS,
    frontend_link_bandwidth_bps: float = 100 * MBPS,
) -> SNSFabric:
    cluster = Cluster(seed=seed, san_bandwidth_bps=san_bandwidth_bps)
    cluster.add_nodes(n_nodes)
    if n_overflow:
        cluster.add_nodes(n_overflow, prefix="ovf", overflow=True)
    registry = WorkerRegistry()
    registry.register_class(JpegDistiller)
    service = JpegBenchService(cluster)
    return SNSFabric(
        cluster, registry, (config or SNSConfig()).validate(), service,
        frontend_link_bandwidth_bps=frontend_link_bandwidth_bps)
