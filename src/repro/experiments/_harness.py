"""Shared experiment harness: a minimal distillation service on the SNS
fabric, used by the Figure 8 / Table 2 / SAN-saturation drivers.

This is deliberately thinner than full TranSend: the scalability
experiments in Section 4.6 bypass cache misses by construction ("these
images would then remain resident in the cache partitions"), so the
harness charges a flat cache-hit cost instead of running cache nodes,
keeping the measured bottlenecks exactly the ones the paper varied
(distillers, front ends, SAN).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.core.config import SNSConfig
from repro.core.fabric import SNSFabric
from repro.core.frontend import Response
from repro.core.manager_stub import DispatchError
from repro.distillers.jpeg import JpegDistiller
from repro.sim.cluster import Cluster
from repro.sim.network import MBPS
from repro.tacc.content import Content, zero_payload
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest, WorkerError

#: flat per-request cache-hit cost (the resident-original lookup).
CACHE_HIT_S = 0.027


def run_grid(point_fn: Callable[..., Any],
             points: Sequence[Mapping[str, Any]],
             jobs: int = 1, *, label: str = "grid",
             timeout_s: Optional[float] = None, retries: int = 0,
             progress=None):
    """Fan the independent grid points of an experiment sweep across
    worker processes (:mod:`repro.fanout`).

    Each point is one kwargs mapping for the **module-level**
    ``point_fn``; results come back in point order regardless of
    completion order, so a sweep assembled from the returned
    :meth:`~repro.fanout.SweepResult.values` is byte-identical at any
    ``jobs``.  Grid points must be self-contained (they rebuild any
    shared input, e.g. a workload trace, from the seed inside the
    shard) — that is what makes them safe to run anywhere.
    """
    from repro.fanout import ShardSpec, run_sharded

    specs = []
    for index, point in enumerate(points):
        detail = ",".join(f"{key}={point[key]}" for key in point)
        specs.append(ShardSpec(
            shard_id=f"{label}[{index}]({detail})",
            fn=point_fn, kwargs=dict(point)))
    return run_sharded(specs, jobs=jobs, timeout_s=timeout_s,
                       retries=retries, progress=progress)


class JpegBenchService:
    """Distill every request through the JPEG distiller; fall back to
    the original on dispatch failure."""

    worker_type = JpegDistiller.worker_type

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._estimator = JpegDistiller()

    def handle(self, frontend, record):
        trace = frontend.current_trace
        return (yield from self._distill(frontend, record, trace, {}))

    def _distill(self, frontend, record, trace, profile):
        mark = self.cluster.env.now
        yield self.cluster.env.timeout(CACHE_HIT_S)
        if trace is not None:
            trace.record("cache-hit", "cache", mark, hit=True)
        content = Content(record.url, record.mime,
                          zero_payload(record.size_bytes))
        request = TACCRequest(inputs=[content], params={},
                              profile=profile, user_id=record.client_id)
        expected = self._estimator.work_estimate(request)
        try:
            result = yield from frontend.stub.dispatch(
                request, self.worker_type, content.size,
                expected_cost_s=expected, trace=trace)
        except (DispatchError, WorkerError):
            return Response(status="fallback", path="original",
                            content=content, size_bytes=content.size)
        return Response(status="ok", path="distilled", content=result,
                        size_bytes=result.size)


#: single-backend profile-read cost on a front-end cache miss (the gdbm
#: lookup; mirrors repro.transend.service.PROFILE_READ_MISS_S).
PROFILE_READ_MISS_S = 0.005

#: single-backend recovery model when chaos kills the store: restart
#: fork plus WAL replay proportional to committed transactions — the
#: cost curve cheap recovery exists to flatten.
SINGLE_RESTART_S = 0.4
SINGLE_REPLAY_PER_TXN_S = 0.002


class ProfileBenchService(JpegBenchService):
    """The bench service with a real profile read in front of every
    distillation — the path brick chaos campaigns measure.

    Reads go through a per-front-end
    :class:`~repro.tacc.customization.WriteThroughCache` over either
    backend.  A failed read (no quorum, or the single-node store down
    for replay) degrades BASE-style to an empty profile — the request
    still completes, but the read counts against profile availability.
    """

    def __init__(self, cluster: Cluster, store: Any) -> None:
        super().__init__(cluster)
        self.store = store
        self._profile_caches: Dict[str, Any] = {}
        #: single-backend outage window (chaos adapter); the dstore
        #: backend never sets this — bricks fail individually instead.
        self.store_down_until = 0.0
        self.profile_reads = 0
        self.profile_read_failures = 0

    def profile_cache_for(self, frontend_name: str):
        from repro.tacc.customization import WriteThroughCache
        if frontend_name not in self._profile_caches:
            self._profile_caches[frontend_name] = WriteThroughCache(
                self.store)
        return self._profile_caches[frontend_name]

    @property
    def store_available(self) -> bool:
        return self.cluster.env.now >= self.store_down_until

    def handle(self, frontend, record):
        from repro.dstore.store import QuorumError, ReadUnavailable
        trace = frontend.current_trace
        env = self.cluster.env
        cache = self.profile_cache_for(frontend.name)
        cached = record.client_id in cache._cache
        self.profile_reads += 1
        profile = None
        if cached:
            profile = cache.get(record.client_id)
        elif not self.store_available:
            self.profile_read_failures += 1
        else:
            mark = env.now
            try:
                profile = cache.get(record.client_id)
            except (QuorumError, ReadUnavailable):
                self.profile_read_failures += 1
            cost = getattr(self.store, "last_op_cost_s",
                           PROFILE_READ_MISS_S) or PROFILE_READ_MISS_S
            yield env.timeout(cost)
            if trace is not None:
                trace.record(
                    "profile-read", "service", mark,
                    component=type(self.store).__name__,
                    hops=getattr(self.store, "last_op_hops", 1),
                    ok=profile is not None)
        return (yield from self._distill(frontend, record, trace,
                                         profile or {}))

    @property
    def profile_read_availability(self) -> float:
        if self.profile_reads == 0:
            return 1.0
        return 1.0 - self.profile_read_failures / self.profile_reads


def build_bench_fabric(
    n_nodes: int = 20,
    n_overflow: int = 0,
    seed: int = 1997,
    config: Optional[SNSConfig] = None,
    san_bandwidth_bps: float = 100 * MBPS,
    frontend_link_bandwidth_bps: float = 100 * MBPS,
    profile_backend: Optional[str] = None,
    n_bricks: int = 3,
    brick_replicas: int = 2,
    brick_ledger: Any = None,
    manager_backend: Optional[str] = None,
    routing_policy: Optional[str] = None,
    service_backend: Optional[str] = None,
) -> SNSFabric:
    """Assemble the bench fabric; ``manager_backend`` selects the
    control plane (``None``/``"soft"`` = the paper's single soft-state
    manager, ``"consensus"`` = the Paxos-replicated manager group),
    ``routing_policy`` overrides the worker-selection policy at the
    manager stubs (a :mod:`repro.balance` spec, e.g. ``"p2c"`` or
    ``"ewma+eject"``; ``None`` keeps the config's own setting), and
    ``profile_backend`` opts into a real profile store on the request
    path:

    * ``None`` — the classic harness: no profile reads (the scalability
      benchmarks' shape, byte-identical to before this option existed);
    * ``"single"`` — the paper's §2.3 layout: one in-memory ACID
      :class:`~repro.tacc.customization.ProfileStore`;
    * ``"dstore"`` — the replicated brick store (``n_bricks`` /
      ``brick_replicas``), hung off the fabric as
      ``fabric.profile_bricks`` for chaos and supervision to reach.

    ``service_backend`` selects the service layer: ``None`` keeps the
    classic bench services above; ``"degradable"`` installs
    :class:`~repro.degrade.service.DegradableBenchService` (freshness
    cache, capacity-limited origin with circuit breaker, brownout
    distiller) over whatever profile backend was chosen — the shape the
    flash-crowd campaigns run, with or without a controller driving it.
    """
    if routing_policy is not None:
        from dataclasses import replace
        config = replace(config or SNSConfig(),
                         routing_policy=routing_policy)
    config = (config or SNSConfig()).validate()
    cluster = Cluster(seed=seed, san_bandwidth_bps=san_bandwidth_bps)
    cluster.add_nodes(n_nodes)
    if n_overflow:
        cluster.add_nodes(n_overflow, prefix="ovf", overflow=True)
    registry = WorkerRegistry()
    if service_backend == "degradable":
        from repro.degrade.service import BrownoutJpegDistiller
        registry.register_class(BrownoutJpegDistiller)
    else:
        registry.register_class(JpegDistiller)
    if profile_backend is None:
        store = None
        bricks = None
    elif profile_backend == "single":
        from repro.tacc.customization import ProfileStore
        store = ProfileStore()
        bricks = None
    elif profile_backend == "dstore":
        from repro.dstore import BrickCluster, ReplicatedProfileStore
        bricks = BrickCluster(cluster, n_bricks=n_bricks,
                              replicas=brick_replicas,
                              ledger=brick_ledger).boot()
        store = ReplicatedProfileStore(bricks)
    else:
        raise ValueError(f"unknown profile backend {profile_backend!r}")
    if service_backend is None:
        service = (JpegBenchService(cluster) if store is None
                   else ProfileBenchService(cluster, store))
    elif service_backend == "degradable":
        from repro.degrade.service import DegradableBenchService
        service = DegradableBenchService(cluster, store, config)
    else:
        raise ValueError(f"unknown service backend {service_backend!r}")
    fabric = SNSFabric(
        cluster, registry, config, service,
        frontend_link_bandwidth_bps=frontend_link_bandwidth_bps,
        manager_backend=manager_backend or "soft")
    fabric.profile_store = store
    fabric.profile_bricks = bricks
    return fabric
