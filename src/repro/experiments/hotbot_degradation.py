"""HotBot graceful degradation (Section 3.2).

Two claims reproduced:

* "with 26 nodes the loss of one machine results in the database
  dropping from 54M to about 51M documents" — i.e. coverage falls to
  ~25/26 and recovers after the fast restart;
* the original cross-mounted design maintained "100% data availability
  with graceful degradation in performance."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hotbot.service import HotBot, HotBotConfig

PAPER_NODES = 26
PAPER_DOCS_BEFORE_M = 54.0
PAPER_DOCS_AFTER_M = 51.0


@dataclass
class HotBotDegradationResult:
    n_nodes: int
    coverage_before: float
    coverage_during: float
    coverage_after_restart: float
    scaled_docs_before_m: float
    scaled_docs_during_m: float
    cross_mount_coverage_during: float
    cross_mount_latency_penalty: float

    def render(self) -> str:
        return (
            "HotBot graceful degradation\n"
            f"  {self.n_nodes} nodes, scaled database "
            f"{self.scaled_docs_before_m:.1f}M docs\n"
            f"  fast-restart: coverage {self.coverage_before:.1%} -> "
            f"{self.coverage_during:.1%} during outage "
            f"(paper: 54M -> ~51M = "
            f"{PAPER_DOCS_AFTER_M / PAPER_DOCS_BEFORE_M:.1%}) -> "
            f"{self.coverage_after_restart:.1%} after restart\n"
            f"  cross-mount: coverage "
            f"{self.cross_mount_coverage_during:.1%} during outage, "
            f"latency x{self.cross_mount_latency_penalty:.1f} on the "
            "covering node"
        )


def run_hotbot_degradation(n_nodes: int = PAPER_NODES,
                           n_docs: int = 2600,
                           seed: int = 1997) -> HotBotDegradationResult:
    # fast-restart mode.  Distinct query terms per phase: the
    # recent-searches cache would otherwise (legitimately — BASE
    # approximate answers) serve the pre-crash snapshot during the
    # outage, hiding the coverage drop this experiment measures.
    hotbot = HotBot(config=HotBotConfig(
        n_workers=n_nodes, n_docs=n_docs, failure_mode="fast-restart",
        fast_restart_s=8.0), seed=seed)
    before = hotbot.run_until(hotbot.submit(["w2", "w5"]))
    hotbot.crash_worker(0)
    during = hotbot.run_until(hotbot.submit(["w3", "w6"]))
    hotbot.run(until=hotbot.cluster.env.now + 15.0)
    after = hotbot.run_until(hotbot.submit(["w4", "w7"]))

    # cross-mount mode
    crossmount = HotBot(config=HotBotConfig(
        n_workers=n_nodes, n_docs=n_docs, failure_mode="cross-mount"),
        seed=seed)
    crossmount.crash_worker(0, auto_restart=False)
    covered = crossmount.run_until(crossmount.submit(["w2", "w5"]))

    scale = PAPER_DOCS_BEFORE_M / 1.0
    return HotBotDegradationResult(
        n_nodes=n_nodes,
        coverage_before=before.coverage,
        coverage_during=during.coverage,
        coverage_after_restart=after.coverage,
        scaled_docs_before_m=scale * before.coverage,
        scaled_docs_during_m=scale * during.coverage,
        cross_mount_coverage_during=covered.coverage,
        cross_mount_latency_penalty=(
            crossmount.config.cross_mount_penalty),
    )
