"""Table 1: main differences between TranSend and HotBot.

Rather than a hand-written table, the rows are derived from the two
*implementations*: each cell is introspected from the corresponding
object so the table stays true to the code (e.g. if HotBot's failure
mode changes, the table changes).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.reporting import render_table
from repro.hotbot.service import HotBot, HotBotConfig
from repro.transend.service import TranSend


def run_table1(transend: Optional[TranSend] = None,
               hotbot: Optional[HotBot] = None) -> str:
    transend = transend or TranSend(n_nodes=4, n_cache_nodes=2)
    hotbot = hotbot or HotBot(config=HotBotConfig(n_workers=2,
                                                  n_docs=100))
    rows: List[List[str]] = []

    rows.append([
        "Load balancing",
        f"dynamic, by queue lengths (lottery gamma="
        f"{transend.config.lottery_gamma:g}, hints every "
        f"{transend.config.beacon_interval_s:g}s)",
        f"static partitioning of read-only data "
        f"({hotbot.config.n_workers} partitions, every query to all)",
    ])
    rows.append([
        "Application layer",
        f"composable TACC workers: "
        f"{', '.join(transend.registry.types())}",
        "fixed search service application",
    ])
    rows.append([
        "Service layer",
        "worker dispatch logic + HTML UI (toolbar munger)",
        "dynamic result-page generation, HTML UI",
    ])
    rows.append([
        "Failure management",
        "centralized but fault-tolerant manager via process-peers",
        f"distributed to each node ({hotbot.config.failure_mode}: "
        + ("RAID + fast restart"
           if hotbot.config.failure_mode == "fast-restart"
           else "cross-mounted partitions") + ")",
    ])
    rows.append([
        "Worker placement",
        "FEs and caches bound to nodes; distillers anywhere",
        "all workers bound to their nodes (local disk partitions)",
    ])
    rows.append([
        "User profile (ACID) database",
        f"WAL key-value store with FE read caches "
        f"({type(transend.profile_store).__name__})",
        f"parallel primary/backup server at "
        f"{hotbot.config.db_capacity_rps:.0f} req/s "
        f"({type(hotbot.database).__name__})",
    ])
    rows.append([
        "Caching",
        f"virtual cache over {len(transend.cachesys.nodes)} nodes, "
        "pre- and post-transformation data",
        "integrated cache of recent searches (incremental delivery)",
    ])
    return render_table(
        ["Component", "TranSend", "HotBot"],
        rows,
        title="Table 1 — main differences between TranSend and HotBot",
    )
