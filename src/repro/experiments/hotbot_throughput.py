"""HotBot query throughput: "several million queries per day".

"The commercial version, HotBot, handles several million queries per day
against a full-text database of 54 million web pages" (Section 1.1) —
an average of roughly 25-60 queries/second.  This driver offers a
realistic query stream (Zipf-popular queries, so the recent-searches
cache earns its keep; a fraction of users page to results 11-20) to a
scaled-down HotBot and measures sustained throughput, tail latency, and
cache effectiveness, then extrapolates to queries/day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.metrics import LatencyStats
from repro.hotbot.service import HotBot, HotBotConfig
from repro.sim.rng import RandomStreams

PAPER_QUERIES_PER_DAY_LOW = 2_000_000
PAPER_QUERIES_PER_DAY = 4_000_000


@dataclass
class HotBotThroughputResult:
    offered_qps: float
    served_qps: float
    p50_s: float
    p95_s: float
    cache_hit_fraction: float
    incremental_pages: int
    queries_per_day_equivalent: float

    def render(self) -> str:
        return (
            "HotBot query throughput\n"
            f"  offered {self.offered_qps:.0f} q/s, served "
            f"{self.served_qps:.1f} q/s "
            f"(= {self.queries_per_day_equivalent / 1e6:.1f}M "
            "queries/day; the paper reports 'several million')\n"
            f"  latency p50 {self.p50_s * 1000:.0f} ms, p95 "
            f"{self.p95_s * 1000:.0f} ms\n"
            f"  recent-searches cache served "
            f"{self.cache_hit_fraction:.0%} of queries "
            f"({self.incremental_pages} incremental result pages)"
        )


def _query_stream(rng, corpus_vocab: int, n: int
                  ) -> List[Tuple[List[str], int]]:
    """(terms, offset) pairs: Zipf-popular two-term queries, 20 % of
    which are a user paging to the next results."""
    queries: List[Tuple[List[str], int]] = []
    for _ in range(n):
        # popular queries repeat: draw the *query* by Zipf rank and
        # derive its terms deterministically from the rank
        rank = rng.zipf_rank(2000, 1.1)
        terms = [f"w{(rank * 7) % corpus_vocab}",
                 f"w{(rank * 13 + 1) % corpus_vocab}"]
        offset = 10 if rng.random() < 0.2 else 0
        queries.append((terms, offset))
    return queries


def run_hotbot_throughput(
    offered_qps: float = 50.0,
    duration_s: float = 60.0,
    n_workers: int = 16,
    n_docs: int = 4000,
    seed: int = 1997,
) -> HotBotThroughputResult:
    hotbot = HotBot(config=HotBotConfig(
        n_workers=n_workers, n_docs=n_docs,
        frontend_threads=128), seed=seed)
    env = hotbot.cluster.env
    rng = RandomStreams(seed).stream("hotbot-queries")
    queries = _query_stream(rng, hotbot.corpus.vocabulary_size,
                            int(offered_qps * duration_s * 1.2))
    latencies = LatencyStats()
    completions = []

    def client(env, terms, offset):
        start = env.now
        result = yield hotbot.submit(terms, f"user{len(completions)}",
                                     offset)
        latencies.add(env.now - start)
        completions.append(env.now)

    def load(env):
        index = 0
        end = env.now + duration_s
        while True:
            gap = rng.exponential(1.0 / offered_qps)
            if env.now + gap >= end:
                return
            yield env.timeout(gap)
            terms, offset = queries[index % len(queries)]
            env.process(client(env, terms, offset))
            index += 1

    env.process(load(env))
    hotbot.run(until=duration_s + 30.0)
    served_qps = len(completions) / duration_s
    cache_fraction = (hotbot.cache_served / hotbot.queries
                      if hotbot.queries else 0.0)
    return HotBotThroughputResult(
        offered_qps=offered_qps,
        served_qps=served_qps,
        p50_s=latencies.p50,
        p95_s=latencies.p95,
        cache_hit_fraction=cache_fraction,
        incremental_pages=hotbot.query_cache.incremental_hits,
        queries_per_day_equivalent=served_qps * 86_400.0,
    )
