"""The Section 4.4 cache simulations.

"We ran a number of cache simulations to explore the relationship
between user population size, cache size, and cache hit rate, using LRU
replacement."  The findings to reproduce in shape:

* hit rate rises monotonically with cache size and **plateaus** at a
  population-determined level (≈56 % at 6 GB for ~8000 users);
* for a fixed cache size, hit rate first **rises with population**
  (cross-user locality) then **falls** once the union of working sets
  exceeds the cache.

Scaling note: the paper's 8000 users / 6 GB shrink to ``n_users`` /
``capacities`` here with document counts reduced proportionally — the
shape (plateau level and crossover), not the absolute byte counts, is
the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import render_histogram
from repro.cache.simulator import CacheSimulator
from repro.sim.rng import RandomStreams
from repro.workload.tracegen import DocumentUniverse, TraceGenerator

PAPER_PLATEAU_HIT_RATE = 0.56


@dataclass
class CacheStudyResult:
    sweep: List[Tuple[float, float]]     # (x value, hit rate)
    x_label: str
    byte_hit_rates: Dict[float, float]

    def render(self, title: str = "Cache study, Section 4.4") -> str:
        return render_histogram(
            [(f"{x:g}", hit_rate) for x, hit_rate in self.sweep],
            width=40,
            title=f"{title} ({self.x_label} vs hit rate)",
        )

    def plateau(self) -> float:
        """Hit rate at the largest x (the plateau for size sweeps)."""
        return self.sweep[-1][1] if self.sweep else 0.0


def _population_trace(n_users: int, n_requests: int, seed: int,
                      n_shared_docs: int = 30_000):
    """References (key, size) from a population of the given size.

    Locality parameters (50 % shared references over a 30 k-document
    Zipf(0.7) head, 500-document private tails) are calibrated so the
    800-user sweep plateaus near the paper's 56 % hit rate.
    """
    generator = TraceGenerator(
        seed=seed,
        n_users=n_users,
        mean_rate_rps=50.0,
        with_daily_cycle=False,
        with_bursts=False,
        universe=DocumentUniverse(
            RandomStreams(seed).stream("universe"),
            n_shared_docs=n_shared_docs,
            n_private_per_user=500,
            shared_fraction=0.5,
            zipf_alpha=0.7,
        ),
    )
    records = generator.generate(n_requests / 50.0)
    return [(record.url, record.size_bytes) for record in records]


def run_cache_size_sweep(
    capacities_bytes: Sequence[int] = (
        2_000_000, 8_000_000, 32_000_000, 128_000_000, 512_000_000),
    n_users: int = 800,
    n_requests: int = 60_000,
    seed: int = 1997,
) -> CacheStudyResult:
    """Hit rate vs total cache size for a fixed population."""
    references = _population_trace(n_users, n_requests, seed)
    sweep = []
    byte_hit_rates = {}
    for capacity in capacities_bytes:
        simulator = CacheSimulator(capacity).run(references)
        sweep.append((capacity / 1e6, simulator.hit_rate))
        byte_hit_rates[capacity / 1e6] = simulator.byte_hit_rate
    return CacheStudyResult(sweep=sweep, x_label="cache MB",
                            byte_hit_rates=byte_hit_rates)


def run_population_sweep(
    populations: Sequence[int] = (25, 100, 400, 1600, 6400),
    capacity_bytes: int = 24_000_000,
    requests_per_user: int = 60,
    seed: int = 1997,
) -> CacheStudyResult:
    """Hit rate vs population for a fixed cache size.

    Requests scale with population (more users, more traffic over the
    same wall-clock window), which is exactly what makes small
    populations compulsory-miss-bound and large ones capacity-bound.
    """
    sweep = []
    byte_hit_rates = {}
    for population in populations:
        references = _population_trace(
            population, population * requests_per_user, seed)
        simulator = CacheSimulator(capacity_bytes).run(references)
        sweep.append((float(population), simulator.hit_rate))
        byte_hit_rates[float(population)] = simulator.byte_hit_rate
    return CacheStudyResult(sweep=sweep, x_label="users",
                            byte_hit_rates=byte_hit_rates)
