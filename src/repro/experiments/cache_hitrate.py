"""The Section 4.4 cache simulations.

"We ran a number of cache simulations to explore the relationship
between user population size, cache size, and cache hit rate, using LRU
replacement."  The findings to reproduce in shape:

* hit rate rises monotonically with cache size and **plateaus** at a
  population-determined level (≈56 % at 6 GB for ~8000 users);
* for a fixed cache size, hit rate first **rises with population**
  (cross-user locality) then **falls** once the union of working sets
  exceeds the cache.

Scaling note: the paper's 8000 users / 6 GB shrink to ``n_users`` /
``capacities`` here with document counts reduced proportionally — the
shape (plateau level and crossover), not the absolute byte counts, is
the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import render_histogram
from repro.cache.simulator import CacheSimulator
from repro.sim.rng import RandomStreams
from repro.workload.tracegen import DocumentUniverse, TraceGenerator

PAPER_PLATEAU_HIT_RATE = 0.56


@dataclass
class CacheStudyResult:
    sweep: List[Tuple[float, float]]     # (x value, hit rate)
    x_label: str
    byte_hit_rates: Dict[float, float]

    def render(self, title: str = "Cache study, Section 4.4") -> str:
        return render_histogram(
            [(f"{x:g}", hit_rate) for x, hit_rate in self.sweep],
            width=40,
            title=f"{title} ({self.x_label} vs hit rate)",
        )

    def plateau(self) -> float:
        """Hit rate at the largest x (the plateau for size sweeps)."""
        return self.sweep[-1][1] if self.sweep else 0.0


def _population_trace(n_users: int, n_requests: int, seed: int,
                      n_shared_docs: int = 30_000):
    """References (key, size) from a population of the given size.

    Locality parameters (50 % shared references over a 30 k-document
    Zipf(0.7) head, 500-document private tails) are calibrated so the
    800-user sweep plateaus near the paper's 56 % hit rate.
    """
    generator = TraceGenerator(
        seed=seed,
        n_users=n_users,
        mean_rate_rps=50.0,
        with_daily_cycle=False,
        with_bursts=False,
        universe=DocumentUniverse(
            RandomStreams(seed).stream("universe"),
            n_shared_docs=n_shared_docs,
            n_private_per_user=500,
            shared_fraction=0.5,
            zipf_alpha=0.7,
        ),
    )
    records = generator.generate(n_requests / 50.0)
    return [(record.url, record.size_bytes) for record in records]


def _size_sweep_point(capacity_bytes: int, n_users: int,
                      n_requests: int, seed: int
                      ) -> Tuple[float, float, float]:
    """One cache-size grid point, self-contained for fan-out: rebuild
    the (deterministic) population trace and run one capacity."""
    references = _population_trace(n_users, n_requests, seed)
    simulator = CacheSimulator(capacity_bytes).run(references)
    return (capacity_bytes / 1e6, simulator.hit_rate,
            simulator.byte_hit_rate)


def _population_sweep_point(population: int, capacity_bytes: int,
                            requests_per_user: int, seed: int
                            ) -> Tuple[float, float, float]:
    """One population grid point, self-contained for fan-out."""
    references = _population_trace(
        population, population * requests_per_user, seed)
    simulator = CacheSimulator(capacity_bytes).run(references)
    return (float(population), simulator.hit_rate,
            simulator.byte_hit_rate)


def _assemble(points: List[Tuple[float, float, float]],
              x_label: str) -> CacheStudyResult:
    return CacheStudyResult(
        sweep=[(x, hit_rate) for x, hit_rate, _ in points],
        x_label=x_label,
        byte_hit_rates={x: byte_rate for x, _, byte_rate in points},
    )


def run_cache_size_sweep(
    capacities_bytes: Sequence[int] = (
        2_000_000, 8_000_000, 32_000_000, 128_000_000, 512_000_000),
    n_users: int = 800,
    n_requests: int = 60_000,
    seed: int = 1997,
    jobs: int = 1,
) -> CacheStudyResult:
    """Hit rate vs total cache size for a fixed population.

    ``jobs > 1`` fans one shard per capacity across worker processes
    (each regenerates the deterministic trace from the seed); the
    serial path shares one trace across capacities.  Output is
    byte-identical either way.
    """
    if jobs > 1:
        from repro.experiments._harness import run_grid
        points = run_grid(
            _size_sweep_point,
            [dict(capacity_bytes=capacity, n_users=n_users,
                  n_requests=n_requests, seed=seed)
             for capacity in capacities_bytes],
            jobs=jobs, label="cache-size").values()
        return _assemble(points, "cache MB")
    references = _population_trace(n_users, n_requests, seed)
    points = []
    for capacity in capacities_bytes:
        simulator = CacheSimulator(capacity).run(references)
        points.append((capacity / 1e6, simulator.hit_rate,
                       simulator.byte_hit_rate))
    return _assemble(points, "cache MB")


def run_population_sweep(
    populations: Sequence[int] = (25, 100, 400, 1600, 6400),
    capacity_bytes: int = 24_000_000,
    requests_per_user: int = 60,
    seed: int = 1997,
    jobs: int = 1,
) -> CacheStudyResult:
    """Hit rate vs population for a fixed cache size.

    Requests scale with population (more users, more traffic over the
    same wall-clock window), which is exactly what makes small
    populations compulsory-miss-bound and large ones capacity-bound.
    Each population is an independent simulation; ``jobs > 1`` fans
    them out with byte-identical results.
    """
    points_kwargs = [
        dict(population=population, capacity_bytes=capacity_bytes,
             requests_per_user=requests_per_user, seed=seed)
        for population in populations
    ]
    if jobs > 1:
        from repro.experiments._harness import run_grid
        points = run_grid(_population_sweep_point, points_kwargs,
                          jobs=jobs, label="population").values()
    else:
        points = [_population_sweep_point(**kwargs)
                  for kwargs in points_kwargs]
    return _assemble(points, "users")
