"""Front-end state accounting (Section 4.4).

"The number of simultaneous, outstanding requests at a front end is
equal to N x T, where N is the number of requests arriving per second,
and T is the average service time of a request.  A high cache miss
penalty implies that T will be large.  Because two TCP connections ...
and one thread context are maintained in the front end for each
outstanding request ... front ends are vulnerable to state management
and context switching overhead.  As an example, for offered loads of 15
requests per second to a front end, we have observed 150-350 outstanding
requests and therefore up to 700 open TCP connections and 300 active
thread contexts."

The driver measures exactly this: offered load at a single front end,
with request residence dominated by wide-area misses and modem-side
delivery, sampled outstanding requests, the derived TCP-connection and
thread counts, and a Little's-law consistency check.  The hot-cache arm
is the contrast: with misses gone, the same offered load needs an order
of magnitude less front-end state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import LatencyStats
from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.transend.adaptation import MODEM_28_8_BPS
from repro.transend.service import TranSend
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


@dataclass
class FrontEndStateArm:
    label: str
    offered_rps: float
    mean_outstanding: float
    peak_outstanding: int
    mean_residence_s: float
    littles_law_prediction: float
    peak_tcp_connections: int
    peak_threads: int


@dataclass
class FrontEndStateResult:
    cold: FrontEndStateArm
    hot: FrontEndStateArm

    def render(self) -> str:
        def block(arm: FrontEndStateArm) -> str:
            return (
                f"  {arm.label}: outstanding mean "
                f"{arm.mean_outstanding:.0f} / peak "
                f"{arm.peak_outstanding} "
                f"(N*T predicts {arm.littles_law_prediction:.0f}); "
                f"peak TCP connections {arm.peak_tcp_connections}, "
                f"thread contexts {arm.peak_threads}"
            )

        return ("Front-end state at "
                f"{self.cold.offered_rps:.0f} req/s (Section 4.4; "
                "paper observed 150-350 outstanding, up to 700 TCP "
                "connections)\n"
                + block(self.cold) + "\n" + block(self.hot))


def _run_arm(label: str, unique_urls: bool, rate_rps: float,
             duration_s: float, seed: int,
             wan_alpha: float = 1.1,
             wan_min_s: float = 0.1) -> FrontEndStateArm:
    transend = TranSend(
        n_nodes=10, seed=seed,
        config=SNSConfig(dispatch_timeout_s=120.0,
                         frontend_connection_overhead_s=0.002,
                         frontend_threads=2000))
    transend.start(initial_workers={"jpeg-distiller": 3})
    # the cold arm models the paper's 1997 wide area: their "150-350
    # outstanding at 15 req/s" implies a 10-23 s mean residence, i.e. a
    # much heavier miss tail than a modern link
    transend.origin.latency.miss_alpha = wan_alpha
    transend.origin.latency.miss_min_s = wan_min_s
    env = transend.cluster.env
    frontend = transend.fabric.alive_frontends()[0]

    # modem-side delivery holds the front-end connection open while the
    # client drains the response
    modem_busy: Dict[str, float] = {}

    def submit(record):
        final = env.event()
        inner = transend.submit(record)

        def deliver(env):
            response = yield inner
            start = max(env.now, modem_busy.get(record.client_id, 0.0))
            transfer = response.size_bytes / MODEM_28_8_BPS
            modem_busy[record.client_id] = start + transfer
            yield env.timeout((start - env.now) + transfer)
            if not final.triggered:
                final.succeed(response)

        env.process(deliver(env))
        return final

    engine = PlaybackEngine(env, submit,
                            rng=RandomStreams(seed).stream(f"fe-{label}"),
                            timeout_s=600.0)
    n = int(rate_rps * duration_s * 1.2)
    pool = [
        TraceRecord(
            0.0, f"client{index % 400}",
            (f"http://site/u{index}.jpg" if unique_urls
             else f"http://site/hot{index % 20}.jpg"),
            "image/jpeg", 10240)
        for index in range(n)
    ]
    env.process(engine.constant_rate(rate_rps, duration_s, pool))

    samples: List[int] = []

    def sampler(env):
        while env.now < duration_s:
            yield env.timeout(1.0)
            samples.append(engine.in_flight)

    env.process(sampler(env))
    transend.run(until=duration_s + 300.0)
    latencies = LatencyStats().extend(engine.latencies())
    mean_outstanding = sum(samples) / len(samples) if samples else 0.0
    peak = max(samples) if samples else 0
    return FrontEndStateArm(
        label=label,
        offered_rps=rate_rps,
        mean_outstanding=mean_outstanding,
        peak_outstanding=peak,
        mean_residence_s=latencies.mean,
        littles_law_prediction=rate_rps * latencies.mean,
        # client<->FE plus FE<->cache partition per outstanding request
        peak_tcp_connections=2 * peak,
        peak_threads=peak,
    )


def run_frontend_state(rate_rps: float = 15.0,
                       duration_s: float = 300.0,
                       seed: int = 1997) -> FrontEndStateResult:
    return FrontEndStateResult(
        cold=_run_arm("cold cache (every request a 1997 wide-area miss)",
                      True, rate_rps, duration_s, seed,
                      wan_alpha=1.02, wan_min_s=3.0),
        hot=_run_arm("hot cache (working set resident)",
                     False, rate_rps, duration_s, seed),
    )
