"""Section 4.6's SAN-saturation exploration.

"As a preliminary exploration of how TranSend behaves as the SAN
saturates, we repeated the scalability experiments using a 10 Mb/s
switched Ethernet.  As the network was driven closer to saturation, we
noticed that most of our (unreliable) multicast traffic was being
dropped, crippling the ability of the manager to balance load and the
ability of the monitor to report system conditions."

The driver runs the same JPEG workload on a 100 Mb/s and a 10 Mb/s SAN
and reports beacon loss, dispatch health, and latency on each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import summarize_outcomes
from repro.core.config import SNSConfig
from repro.core.messages import BEACON_GROUP
from repro.sim.network import MBPS
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

from repro.experiments._harness import build_bench_fabric


@dataclass
class SanRunStats:
    bandwidth_mbps: float
    san_utilization: float
    beacon_loss_rate: float
    dispatch_timeouts: int
    completed: int
    failed: int
    p95_latency_s: float


@dataclass
class SanSaturationResult:
    fast: SanRunStats
    slow: SanRunStats
    #: the Section 4.6 remedy: same slow SAN, control traffic isolated
    #: on a low-speed utility network.
    slow_with_utility: "SanRunStats | None" = None

    def render(self) -> str:
        def block(stats: SanRunStats, suffix: str = "") -> str:
            return (
                f"  SAN {stats.bandwidth_mbps:.0f} Mb/s{suffix}: "
                f"utilization {stats.san_utilization:.0%}, "
                f"beacon loss {stats.beacon_loss_rate:.0%}, "
                f"dispatch timeouts {stats.dispatch_timeouts}, "
                f"completed {stats.completed}, failed {stats.failed}, "
                f"p95 latency {stats.p95_latency_s:.2f}s"
            )

        lines = ["SAN saturation (Section 4.6)",
                 block(self.fast), block(self.slow)]
        if self.slow_with_utility is not None:
            lines.append(block(self.slow_with_utility,
                               " + utility net"))
        return "\n".join(lines)


def _run_once(bandwidth_bps: float, rate_rps: float, duration_s: float,
              seed: int, image_bytes: int,
              with_utility_network: bool = False) -> SanRunStats:
    config = SNSConfig(spawn_threshold=1e9,  # fixed worker pool
                       dispatch_timeout_s=5.0)
    fabric = build_bench_fabric(
        n_nodes=12, seed=seed, config=config,
        san_bandwidth_bps=bandwidth_bps)
    if with_utility_network:
        fabric.cluster.network.add_utility_network()
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 8})
    env = fabric.cluster.env
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        env, fabric.submit,
        rng=RandomStreams(seed).stream("san-playback"),
        timeout_s=30.0)
    pool = [
        TraceRecord(0.0, f"client{index}",
                    f"http://bench/img{index}.jpg", "image/jpeg",
                    image_bytes)
        for index in range(50)
    ]
    env.process(engine.constant_rate(rate_rps, duration_s, pool))
    fabric.cluster.run(until=env.now + duration_s + 30.0)
    beacon_group = fabric.cluster.multicast.group(BEACON_GROUP)
    summary = summarize_outcomes(engine.outcomes)
    timeouts = sum(frontend.stub.timeouts
                   for frontend in fabric.frontends.values())
    return SanRunStats(
        bandwidth_mbps=bandwidth_bps / MBPS,
        san_utilization=min(
            1.0, fabric.cluster.network.san.utilization()),
        beacon_loss_rate=beacon_group.loss_rate,
        dispatch_timeouts=timeouts,
        completed=int(summary["ok"]),
        failed=int(summary["failed"]),
        p95_latency_s=summary["p95"],
    )


def run_san_saturation(rate_rps: float = 80.0, duration_s: float = 60.0,
                       seed: int = 1997, image_bytes: int = 20480,
                       include_utility: bool = True, jobs: int = 1
                       ) -> SanSaturationResult:
    """Drive the same data load over a fast and a slow SAN.

    The defaults put ~1.7 MB/s of content traffic on the interior
    network: 13 % of a 100 Mb/s SAN, but >130 % of a 10 Mb/s one —
    exactly the regime where the unreliable beacons start dropping.
    The third run applies the paper's own proposed remedy: the same
    saturated SAN, with beacons isolated on a utility network.

    The three arms are independent simulations; ``jobs > 1`` fans them
    across worker processes with byte-identical results.
    """
    arms = [
        dict(bandwidth_bps=100 * MBPS, rate_rps=rate_rps,
             duration_s=duration_s, seed=seed, image_bytes=image_bytes),
        dict(bandwidth_bps=10 * MBPS, rate_rps=rate_rps,
             duration_s=duration_s, seed=seed, image_bytes=image_bytes),
    ]
    if include_utility:
        arms.append(dict(arms[1], with_utility_network=True))
    if jobs > 1:
        from repro.experiments._harness import run_grid
        stats = run_grid(_run_once, arms, jobs=jobs,
                         label="san").values()
    else:
        stats = [_run_once(**arm) for arm in arms]
    return SanSaturationResult(
        fast=stats[0],
        slow=stats[1],
        slow_with_utility=stats[2] if include_utility else None,
    )
