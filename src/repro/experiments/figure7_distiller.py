"""Figure 7: average distillation latency vs GIF input size.

"For the GIF distiller, there is an approximately linear relationship
between distillation time and input size, although a large variation in
distillation time is observed for any particular data size.  The slope
of this relationship is approximately 8 milliseconds per kilobyte of
input", measured "across approximately 100,000 items from the dialup IP
trace file."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reporting import render_table
from repro.distillers.gif import GifDistiller
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, Content
from repro.tacc.worker import TACCRequest
from repro.workload.distributions import default_size_models

PAPER_SLOPE_MS_PER_KB = 8.0


@dataclass
class Figure7Result:
    n_items: int
    slope_ms_per_kb: float
    intercept_ms: float
    variation_ratio: float     # p95/p5 latency at a fixed size bucket
    bucket_means: List[Tuple[int, float]]   # (size bucket B, mean ms)

    def render(self) -> str:
        rows = [
            [f"{size}", f"{mean_ms:.1f}"]
            for size, mean_ms in self.bucket_means
        ]
        table = render_table(
            ["GIF size (bytes)", "avg distillation ms"],
            rows,
            title=f"Figure 7 — GIF distillation latency over "
                  f"{self.n_items} items",
        )
        notes = (
            f"\nfitted slope: {self.slope_ms_per_kb:.2f} ms/KB "
            f"(paper: ~{PAPER_SLOPE_MS_PER_KB:.0f} ms/KB)\n"
            f"within-size variation (p95/p5 at ~10 KB): "
            f"{self.variation_ratio:.1f}x"
        )
        return table + notes


def run_figure7(n_items: int = 100_000, seed: int = 1997
                ) -> Figure7Result:
    """Sample GIF sizes from the trace distribution and time the GIF
    distiller's (noisy, calibrated) cost model over them."""
    streams = RandomStreams(seed)
    size_rng = streams.stream("figure7-sizes")
    latency_rng = streams.stream("figure7-latency")
    gif_model = default_size_models()[MIME_GIF]
    distiller = GifDistiller()

    samples: List[Tuple[int, float]] = []
    for _ in range(n_items):
        size = gif_model.sample(size_rng)
        request = TACCRequest(
            inputs=[Content("u", MIME_GIF, b"")])
        # avoid materializing bytes: feed the latency model directly
        latency = distiller.latency_model.sample(latency_rng, size)
        samples.append((size, latency))

    # least-squares fit latency = a + b * size
    n = len(samples)
    sum_x = sum(size for size, _ in samples)
    sum_y = sum(latency for _, latency in samples)
    sum_xx = sum(size * size for size, _ in samples)
    sum_xy = sum(size * latency for size, latency in samples)
    denominator = n * sum_xx - sum_x * sum_x
    slope_per_byte = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope_per_byte * sum_x) / n

    # per-bucket means for the rendered curve
    buckets: dict = {}
    for size, latency in samples:
        bucket = (size // 5000) * 5000
        buckets.setdefault(bucket, []).append(latency)
    bucket_means = [
        (bucket, 1000.0 * sum(values) / len(values))
        for bucket, values in sorted(buckets.items())
        if len(values) >= 20
    ]

    near_10kb = sorted(latency for size, latency in samples
                       if 9000 <= size <= 11000)
    if len(near_10kb) >= 20:
        variation = (near_10kb[int(0.95 * len(near_10kb))]
                     / near_10kb[int(0.05 * len(near_10kb))])
    else:
        variation = 1.0

    return Figure7Result(
        n_items=n,
        slope_ms_per_kb=slope_per_byte * 1024.0 * 1000.0,
        intercept_ms=intercept * 1000.0,
        variation_ratio=variation,
        bucket_means=bucket_means,
    )
